#!/usr/bin/env python
"""Compare a fresh benchmark summary against the committed baseline.

Usage::

    python benchmarks/compare.py [FRESH] [--baseline PATH] [--threshold 0.30]

``FRESH`` defaults to the newest ``benchmarks/BENCH_*.json`` (the file
``benchmarks/conftest.py`` writes at session end); the baseline defaults
to ``benchmarks/baseline.json``. Exit status is 1 when any benchmark's
wall time regressed by more than ``--threshold`` (fraction, default
30%), 0 otherwise.

Missing pieces degrade to warnings, never failures:

- no baseline file → warn and exit 0 (a fresh checkout or a machine
  that has not recorded one yet must not fail CI);
- a test present on only one side → reported, not failed (benchmarks
  get added and retired).

Wall times move with the host, so the threshold is deliberately loose:
the gate exists to catch the "accidentally reintroduced an O(#radios)
scan" class of regression (multiples, not percents), while absorbing
runner-to-runner noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
DEFAULT_BASELINE = BENCH_DIR / "baseline.json"


def _load_records(path: Path) -> dict:
    """``test id -> wall_seconds`` from a BENCH/baseline summary file.

    Malformed entries (missing keys, non-numeric wall times) are skipped
    with a warning, not fatal — a truncated artifact from a crashed CI
    run must not mask the benchmarks that did complete.
    """
    payload = json.loads(path.read_text())
    entries = payload.get("benchmarks", []) if isinstance(payload, dict) else []
    if not isinstance(entries, list):
        entries = []
    records: dict = {}
    skipped = 0
    for record in entries:
        try:
            test = record["test"]
            wall = float(record["wall_seconds"])
        except (TypeError, KeyError, ValueError):
            skipped += 1
            continue
        if not isinstance(test, str) or not test:
            skipped += 1
            continue
        records[test] = wall
    if skipped:
        print(f"compare: skipped {skipped} malformed entr(y/ies) in {path.name}")
    return records


def _newest_bench(directory: Path) -> Path | None:
    candidates = sorted(directory.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh",
        nargs="?",
        type=Path,
        default=None,
        help="fresh summary (default: newest benchmarks/BENCH_*.json)",
    )
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional wall-time regression (default 0.30)",
    )
    args = parser.parse_args(argv)

    fresh_path = args.fresh or _newest_bench(BENCH_DIR)
    if fresh_path is None or not fresh_path.exists():
        print("compare: no fresh BENCH_*.json found — run `pytest benchmarks` first")
        return 1
    if not args.baseline.exists():
        print(f"compare: no baseline at {args.baseline} — skipping (warn only)")
        print(f"compare: to record one: cp {fresh_path} {args.baseline}")
        return 0

    baseline = _load_records(args.baseline)
    fresh = _load_records(fresh_path)
    print(f"compare: {fresh_path.name} vs {args.baseline.name} (threshold +{args.threshold:.0%})")

    failures = []
    for test in sorted(baseline.keys() | fresh.keys()):
        if test not in fresh:
            print(f"  MISSING  {test} (in baseline only)")
            continue
        if test not in baseline:
            print(f"  NEW      {test} (no baseline entry)")
            continue
        base, now = baseline[test], fresh[test]
        delta = (now - base) / base if base > 0 else 0.0
        status = "ok"
        if delta > args.threshold:
            status = "REGRESSED"
            failures.append((test, base, now, delta))
        print(f"  {status:9s}{test}  {base * 1000:.1f}ms -> {now * 1000:.1f}ms ({delta:+.0%})")

    if failures:
        print(f"compare: {len(failures)} benchmark(s) regressed more than {args.threshold:.0%}")
        return 1
    print("compare: no wall-time regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
