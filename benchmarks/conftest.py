"""Shared benchmark plumbing.

Each benchmark regenerates one paper artifact (scaled down so the full
suite completes in minutes) and prints the same rows/series the paper
reports. Simulations are deterministic, so a single round measures the
cost faithfully; `once()` wraps ``benchmark.pedantic`` accordingly.

``--exec-jobs N`` sets the worker count used by the ``repro.exec``
benchmarks (sequential-vs-sharded comparisons); default 2 so they are
meaningful on any CI box.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--exec-jobs",
        type=int,
        default=2,
        help="worker processes for repro.exec shard benchmarks",
    )


@pytest.fixture
def exec_jobs(request):
    return request.config.getoption("--exec-jobs")


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
