"""Shared benchmark plumbing.

Each benchmark regenerates one paper artifact (scaled down so the full
suite completes in minutes) and prints the same rows/series the paper
reports. Simulations are deterministic, so a single round measures the
cost faithfully; `once()` wraps ``benchmark.pedantic`` accordingly.

``--exec-jobs N`` sets the worker count used by the ``repro.exec``
benchmarks (sequential-vs-sharded comparisons); default 2 so they are
meaningful on any CI box.

At session end the collected measurements are aggregated into one
``BENCH_<timestamp>.json`` next to this file (wall seconds plus the
numeric scalars of each result), so CI can archive a per-run artifact
without parsing pytest-benchmark's storage format.
"""

import gc
import json
import time
from pathlib import Path

import pytest

#: One record per `once()` call: test id, wall seconds, result scalars.
_RECORDS = []


def pytest_addoption(parser):
    parser.addoption(
        "--exec-jobs",
        type=int,
        default=2,
        help="worker processes for repro.exec shard benchmarks",
    )


@pytest.fixture
def exec_jobs(request):
    return request.config.getoption("--exec-jobs")


def _result_scalars(result):
    """Top-level numeric scalars of a benchmark's return value."""
    if isinstance(result, bool) or result is None:
        return {}
    if isinstance(result, (int, float)):
        return {"value": result}
    if isinstance(result, dict):
        return {
            key: value
            for key, value in sorted(result.items())
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
    return {}


@pytest.fixture
def once(benchmark, request):
    """Run the experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        # Collect the previous tests' garbage before the clock starts:
        # late in the session the heap holds tens of millions of dead
        # objects from earlier benches, and letting their collection
        # land inside the timed region charges one test for another's
        # allocations (measured ~30% noise on the phy microbenches).
        gc.collect()
        start = time.perf_counter()
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
        _RECORDS.append(
            {
                "test": request.node.nodeid,
                "wall_seconds": round(time.perf_counter() - start, 6),
                "scalars": _result_scalars(result),
            }
        )
        return result

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Aggregate the session's measurements into BENCH_<timestamp>.json."""
    if not _RECORDS:
        return
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    path = Path(__file__).parent / f"BENCH_{stamp}.json"
    payload = {
        "created_utc": stamp,
        "exit_status": int(exitstatus),
        "benchmarks": sorted(_RECORDS, key=lambda record: record["test"]),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line(f"benchmark summary written to {path}")
