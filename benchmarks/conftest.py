"""Shared benchmark plumbing.

Each benchmark regenerates one paper artifact (scaled down so the full
suite completes in minutes) and prints the same rows/series the paper
reports. Simulations are deterministic, so a single round measures the
cost faithfully; `once()` wraps ``benchmark.pedantic`` accordingly.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
