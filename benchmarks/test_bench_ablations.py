"""Bench: ablations of Spider's design choices (DESIGN.md §5)."""

from repro.experiments import ablations as exp


def test_bench_ablations(once):
    result = once(exp.run, duration=300.0)
    exp.print_report(result)

    # Lease caching helps (or at worst is neutral) on a repeated route.
    cache = {row["lease_cache"]: row for row in result["lease_cache"]}
    assert cache[True]["throughput_kBps"] >= cache[False]["throughput_kBps"] * 0.8

    # Fake PSM is load-bearing for multi-channel schedules: without it
    # off-channel downlink is simply lost.
    psm = {row["psm"]: row for row in result["psm"]}
    assert psm[True]["throughput_kBps"] >= psm[False]["throughput_kBps"]

    # Channel-based slicing beats AP-based slicing in a mobile world.
    slicing = {row["architecture"]: row for row in result["slicing"]}
    spider = slicing["channel-based (Spider)"]
    fatvap = slicing["AP-based (FatVAP-style)"]
    assert spider["throughput_kBps"] >= fatvap["throughput_kBps"]

    # All selection policies work; the table itself is the artifact.
    assert len(result["selection_policy"]) == 3
    for row in result["selection_policy"]:
        assert row["throughput_kBps"] >= 0.0
