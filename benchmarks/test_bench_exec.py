"""Sequential vs sharded execution of the same artifact (Fig. 6).

The pair quantifies what ``repro.exec`` buys: the sequential benchmark
is the single-process baseline, the sharded one fans the same four
cases out over ``--exec-jobs`` workers (cache disabled so simulation
cost is actually measured). Results must be identical — the speedup is
the only thing allowed to differ.
"""

from repro.exec import execute_experiment
from repro.experiments import fig6_dhcp

CASE_KWARGS = dict(seeds=(1,), duration=120.0)


def test_bench_fig6_sequential(once):
    result = once(fig6_dhcp.run, **CASE_KWARGS)
    fig6_dhcp.print_report(result)


def test_bench_fig6_sharded(once, exec_jobs):
    execution = once(
        execute_experiment,
        "fig6",
        overrides=CASE_KWARGS,
        jobs=exec_jobs,
        cache=None,
    )
    fig6_dhcp.print_report(execution.result)
    print(execution.summary_line())
    assert execution.result == fig6_dhcp.run(**CASE_KWARGS)
