"""Bench (extension): contention as more clients adopt concurrent Wi-Fi.

Sec. 4.8 flags "potential problems raised by interference as more
users adopt concurrent Wi-Fi schemes" as future work: this bench sweeps
the client population over a fixed pair of APs.
"""

from repro.experiments import contention as exp


def test_bench_ext_contention(once):
    result = once(exp.run, populations=(1, 2, 4, 8), duration=40.0)
    exp.print_report(result)
    rows = {row["clients"]: row for row in result["rows"]}
    bottleneck = result["bottleneck_kBps"]

    # A single client already extracts most of the aggregate backhaul.
    assert rows[1]["aggregate_kBps"] > bottleneck * 0.7

    # Aggregate stays bounded by the bottleneck as clients multiply:
    # concurrency does not mint bandwidth.
    for row in result["rows"]:
        assert row["aggregate_kBps"] <= bottleneck * 1.05

    # Per-client share decays roughly like 1/N.
    assert rows[4]["per_client_kBps"] < rows[1]["per_client_kBps"] / 2.5
    assert rows[8]["per_client_kBps"] < rows[2]["per_client_kBps"] / 2.5
