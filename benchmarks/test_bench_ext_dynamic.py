"""Bench (extension): dynamic channel selection vs static channel 1.

The paper's Sec. 4.8 names dynamic best-channel selection as future
work. This bench runs the implemented scheme against static
single-channel Spider pinned to channel 1 on the same vehicular world.
Since the Amherst mix puts only ~28% of APs on channel 1, a correct
dynamic scheme should at least hold its own against an arbitrary static
pin while keeping single-channel join quality.
"""

from repro.core.config import SpiderConfig
from repro.core.dynamic import DynamicChannelSpider, DynamicConfig
from repro.experiments.common import ScenarioConfig, VehicularScenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def _run_static(seed: int, duration: float):
    scenario = VehicularScenario(ScenarioConfig(seed=seed))
    driver = scenario.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
    return scenario.run(driver, duration)


def _run_dynamic(seed: int, duration: float):
    scenario = VehicularScenario(ScenarioConfig(seed=seed))
    driver = DynamicChannelSpider(
        scenario.sim,
        scenario.medium,
        scenario.mobility,
        "spider",
        config=DynamicConfig(dwell_duration=6.0, **REDUCED),
        router_lookup=scenario.router_lookup(),
    )
    driver.start()
    scenario.sim.run(until=scenario.sim.now + duration)
    driver.stop()
    return driver


def test_bench_ext_dynamic_channel_selection(once):
    def experiment():
        static = _run_static(seed=3, duration=420.0)
        dynamic_driver = _run_dynamic(seed=3, duration=420.0)
        dynamic_kbps = dynamic_driver.recorder.average_throughput_kbytes_per_s()
        return {
            "static_ch1_kBps": static.throughput_kbytes_per_s,
            "dynamic_kBps": dynamic_kbps,
            "decisions": len(dynamic_driver.channel_decisions),
            "channels_chosen": sorted(
                {c for _t, c in dynamic_driver.channel_decisions}
            ),
        }

    result = once(experiment)
    print("Extension — dynamic channel selection vs static channel 1")
    for key, value in result.items():
        print(f"  {key}: {value}")

    # The scheme must actually adapt (several decisions, orthogonal
    # channels only) and stay in the same performance regime as an
    # arbitrary static pin.
    assert result["decisions"] >= 10
    assert set(result["channels_chosen"]) <= {1, 6, 11}
    assert result["dynamic_kBps"] > result["static_ch1_kBps"] * 0.35
