"""Bench (extension): energy cost of Spider's configurations.

Sec. 4.8 names energy consumption on constrained devices as future
work. This bench meters the radio across the Table 2 configurations on
the same vehicular world and reports joules per delivered megabyte.
"""

from repro.core.config import SpiderConfig
from repro.experiments.common import ScenarioConfig, VehicularScenario
from repro.metrics.energy import EnergyMeter

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)

CONFIGS = (
    ("ch1 multi-AP", lambda: SpiderConfig.single_channel_multi_ap(1, **REDUCED)),
    ("ch1 single-AP", lambda: SpiderConfig.single_channel_single_ap(1, **REDUCED)),
    ("3ch multi-AP", lambda: SpiderConfig.multi_channel_multi_ap(period=0.6, **REDUCED)),
)


def _metered(config, seed=3, duration=420.0):
    scenario = VehicularScenario(ScenarioConfig(seed=seed))
    spider = scenario.make_spider(config)
    spider.start()
    meter = EnergyMeter(spider.radio)
    scenario.sim.run(until=duration)
    report = meter.report()
    delivered = spider.recorder.total_bytes
    spider.stop()
    return report, delivered


def test_bench_ext_energy(once):
    def experiment():
        rows = []
        for name, make in CONFIGS:
            report, delivered = _metered(make())
            rows.append(
                {
                    "config": name,
                    "avg_power_w": report.average_power_w,
                    "delivered_MB": delivered / 1e6,
                    "j_per_mb": report.joules_per_megabyte(delivered),
                    "reset_j": report.reset_j,
                }
            )
        return rows

    rows = once(experiment)
    print("Extension — energy per configuration")
    print("  config          power(W)  delivered(MB)  J/MB    reset(J)")
    for row in rows:
        print(
            f"  {row['config']:14s} {row['avg_power_w']:8.3f}"
            f"  {row['delivered_MB']:12.1f}  {row['j_per_mb']:6.1f}  {row['reset_j']:7.2f}"
        )
    by_config = {row["config"]: row for row in rows}

    # Average power sits in the sub-watt Wi-Fi regime for every config.
    for row in rows:
        assert 0.5 < row["avg_power_w"] < 1.4

    # The throughput-maximising config is the most energy-efficient per
    # byte; the multi-channel config pays reset energy on top of its
    # throughput loss.
    assert (
        by_config["ch1 multi-AP"]["j_per_mb"]
        < by_config["3ch multi-AP"]["j_per_mb"]
    )
    assert by_config["3ch multi-AP"]["reset_j"] > by_config["ch1 multi-AP"]["reset_j"]
