"""Bench (extension): how optimistic is the analytical model?

Sec. 2.2: "The assumptions cause the model to be optimistic:
multi-channel switching performs better in the model than can be
expected in a real scenario." This bench measures exactly that, by
running Eq. 7 and the full simulated stack (scan + association + DHCP)
under matched parameters.
"""

from repro.experiments import model_vs_system as exp


def test_bench_ext_model_gap(once):
    result = once(exp.run, trials=30)
    exp.print_report(result)
    rows = {row["fraction"]: row for row in result["rows"]}

    # The model is optimistic for fractional schedules: it never does
    # materially worse than the system, and at f=0.25 the gap is large.
    for row in result["rows"]:
        assert row["gap"] > -0.10
    assert rows[0.25]["gap"] > 0.15

    # Dedicated to the channel, model and system agree: full-time joins
    # essentially always complete in the window.
    assert rows[1.0]["system"] > 0.9
    assert abs(rows[1.0]["gap"]) < 0.1
