"""Bench: regenerate Fig. 10 (connection/disruption/bandwidth CDFs)."""

from repro.experiments import fig10_cdfs as exp


def test_bench_fig10(once):
    result = once(exp.run, duration=600.0)
    exp.print_report(result)
    by_config = {s["config"]: s for s in result["series"]}

    ch1_multi = by_config["ch1-multi-ap"]
    mch_multi = by_config["3ch-multi-ap"]

    # Single-channel multi-AP: the longest connections and the best
    # instantaneous bandwidth (Fig. 10a / 10c).
    assert ch1_multi["median_connection"] >= mch_multi["median_connection"]
    assert ch1_multi["bw_p60"] > mch_multi["bw_p60"]
    assert ch1_multi["bw_p90"] > mch_multi["bw_p90"]

    # Instantaneous bandwidth scale: paper reports p60 ≈ 300 KB/s and
    # p90 ≈ 1000 KB/s for the single-channel multi-AP configuration.
    assert 100 < ch1_multi["bw_p60"] < 1500
    assert ch1_multi["bw_p90"] <= 1500
