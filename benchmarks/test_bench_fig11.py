"""Bench: regenerate Fig. 11 (join-time CDF vs DHCP timeout)."""

from repro.experiments import fig11_join_timeout as exp


def test_bench_fig11(once):
    result = once(exp.run, seeds=(1, 2), duration=180.0)
    exp.print_report(result)
    by_label = {s["label"]: s for s in result["series"]}

    # Reduced timers improve the median time to a lease vs default.
    assert by_label["200ms, channel 1"]["median"] <= by_label["default, channel 1"]["median"]

    # Multi-channel joins are slower than dedicated-channel joins at
    # the same timer (paper: the median roughly doubles).
    if by_label["200ms, 3 channels"]["join_times"]:
        assert (
            by_label["200ms, 3 channels"]["median"]
            >= by_label["200ms, channel 1"]["median"]
        )
