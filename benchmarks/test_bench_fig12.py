"""Bench: regenerate Fig. 12 (join delay per scheduling policy)."""

from repro.experiments import fig12_join_policies as exp


def test_bench_fig12(once):
    result = once(exp.run, seeds=(1, 2), duration=180.0)
    exp.print_report(result)
    by_label = {s["label"]: s for s in result["series"]}

    reduced_single = by_label["7 ifaces, ch1, dhcp=200ms ll=100ms"]
    default_single = by_label["7 ifaces, ch1, default TO"]
    three_chan = by_label["7 ifaces, 3 chans, default TO"]

    # The single-channel reduced-timeout policy joins fastest.
    assert reduced_single["median"] <= default_single["median"]
    # Splitting the schedule over three channels slows joins down.
    if three_chan["join_times"]:
        assert three_chan["median"] >= default_single["median"] * 0.8
    # Every policy produced joins on the dedicated-channel cases.
    assert reduced_single["join_times"] and default_single["join_times"]
