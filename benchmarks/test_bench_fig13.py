"""Bench: regenerate Fig. 13 (connection lengths: users vs Spider)."""

from repro.experiments import fig13_usability as exp


def test_bench_fig13(once):
    result = once(exp.run, duration=600.0)
    exp.print_report(result)

    # The synthetic mesh trace matches the paper's aggregates.
    summary = result["trace_summary"]
    assert abs(summary["flows"] - 128_587) / 128_587 < 0.05
    assert abs(summary["http_fraction"] - 0.68) < 0.03

    # The paper's reading: Spider's connections cover essentially all
    # the TCP flows users actually create.
    assert result["coverage"]["ch1-multi-ap"] > 0.8
