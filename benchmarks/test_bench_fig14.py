"""Bench: regenerate Fig. 14 (disruption lengths: users vs Spider)."""

from repro.experiments import fig14_usability as exp
from repro.metrics.stats import median


def test_bench_fig14(once):
    result = once(exp.run, duration=600.0)
    exp.print_report(result)
    by_label = {s["label"]: s for s in result["series"]}

    users = by_label["user inter-connection"]
    spider_multi = by_label["multiple APs (3ch-multi-ap)"]

    # Users' natural inter-connection gaps are tens of seconds.
    assert 10.0 < users["median"] < 120.0
    # The multi-channel multi-AP mode's disruptions are comparable to
    # (the same order as) what users already tolerate — the paper's
    # conclusion that Spider can complement cellular service.
    if spider_multi["values"]:
        assert spider_multi["median"] < users["median"] * 5
