"""Bench: regenerate Fig. 2 (join model vs Monte-Carlo simulation)."""

from repro.experiments import fig2_join_model as exp


def test_bench_fig2(once):
    result = once(
        exp.run,
        fractions=[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0],
        runs=40,
        trials_per_run=100,
    )
    exp.print_report(result)
    # Corroboration: the closed form and the simulation agree.
    assert exp.max_model_sim_gap(result) < 0.06
    for series in result["series"]:
        # P(join) ~0.2 at f=0.1 and near-certain at f=1 (paper text).
        assert series["model"][0] < 0.45
        assert series["model"][-1] > 0.95
