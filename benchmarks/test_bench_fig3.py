"""Bench: regenerate Fig. 3 (P(join) vs beta_max)."""

from repro.experiments import fig3_beta_sensitivity as exp


def test_bench_fig3(once):
    result = once(exp.run)
    exp.print_report(result)
    for series in result["series"]:
        values = series["values"]
        # Shorter maximum join times → higher join success.
        assert values[0] >= values[-1]
    # Removing the switching delay barely moves the curves (paper:
    # "chances of joining are not notably increased").
    assert exp.switch_delay_effect(result) < 0.15
    # Higher fractions dominate lower ones pointwise.
    by_label = {s["label"]: s["values"] for s in result["series"]}
    for low, high in zip(by_label["fi=.10"], by_label["fi=.50"]):
        assert high >= low - 1e-9
