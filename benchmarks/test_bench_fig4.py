"""Bench: regenerate Fig. 4 (optimal schedules and the dividing speed)."""

from repro.experiments import fig4_dividing_speed as exp


def test_bench_fig4(once):
    result = once(exp.run, grid_step=0.02)
    exp.print_report(result)
    for scenario in result["scenarios"]:
        # A dividing speed exists and is <= 10 m/s (paper: "less than
        # 10 m/s for most scenarios"; above it, stay on one channel).
        assert scenario["dividing_speed"] is not None
        assert scenario["dividing_speed"] <= 10.0
        # The join channel's share decays with speed to exactly zero.
        ch2 = scenario["ch2_bps"]
        assert all(b <= a + 1e-6 for a, b in zip(ch2, ch2[1:]))
        assert ch2[0] > 0 and ch2[-1] == 0.0
        # The already-joined channel keeps its offered share throughout.
        joined_cap = scenario["split"][0] * 11e6
        for value in scenario["ch1_bps"]:
            assert value <= joined_cap + 1e-6
            assert value >= joined_cap * 0.9
