"""Bench: regenerate Fig. 5 (association-time CDF vs schedule)."""

from repro.experiments import fig5_association as exp


def test_bench_fig5(once):
    result = once(exp.run, seeds=(1, 2), duration=180.0)
    exp.print_report(result)
    by_fraction = {s["fraction"]: s for s in result["series"]}
    dedicated = by_fraction[1.0]
    quarter = by_fraction[0.25]
    # Dedicated channel: associations complete fast (paper: median
    # ~200 ms, all within 400 ms).
    assert dedicated["median"] < 0.6
    # Association is robust to switching: even at f=0.25 associations
    # still complete (the paper's surprising finding).
    assert len(quarter["association_times"]) > 0
    # But switching can't *help*: dedicated is at least as fast.
    assert dedicated["median"] <= quarter["median"] * 1.5 + 0.2
