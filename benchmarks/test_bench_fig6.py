"""Bench: regenerate Fig. 6 (assoc+DHCP join CDF vs schedule/timers)."""

from repro.experiments import fig6_dhcp as exp


def test_bench_fig6(once):
    result = once(exp.run, seeds=(1, 2), duration=180.0)
    exp.print_report(result)
    by_label = {s["label"]: s for s in result["series"]}
    reduced = by_label["100% - 100ms"]
    default = by_label["100% - default"]
    quarter = by_label["25% - 100ms"]
    # Reduced timers cut the median join (paper: 2.5 s → 1.3 s).
    assert reduced["median"] < default["median"]
    # Fractional schedules degrade DHCP badly (paper: f=0.25 is where
    # "repeated failures cause the accumulated time to degrade
    # performance once again").
    assert quarter["failure_rate"] >= reduced["failure_rate"]
    if quarter["join_times"]:
        assert quarter["median"] >= reduced["median"]
