"""Bench: regenerate Fig. 7 (TCP throughput vs % on primary channel)."""

from repro.experiments import fig7_tcp_fraction as exp


def test_bench_fig7(once):
    result = once(exp.run, duration=45.0)
    exp.print_report(result)
    values = result["throughput_kbps"]
    # Monotone rise with the primary-channel share (paper: throughput
    # proportional to the percentage of time on the primary channel).
    assert exp.is_roughly_monotonic(result)
    assert values[-1] > values[0] * 3
    # Dedicated channel approaches the 4 Mbps backhaul.
    assert values[-1] > 3000
