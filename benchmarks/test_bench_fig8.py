"""Bench: regenerate Fig. 8 (TCP throughput vs absolute dwell)."""

from repro.experiments import fig8_tcp_dwell as exp


def test_bench_fig8(once):
    result = once(exp.run, duration=45.0)
    exp.print_report(result)
    # The paper's point: unlike Fig. 7, sweeping the *absolute* dwell
    # is non-monotonic — long absences cross the RTO and overflow AP
    # buffers ("throughput is very sensitive to the amount of time
    # spent by the driver on each channel").
    assert exp.is_non_monotonic(result)
    values = dict(zip(result["dwells"], result["throughput_kbps"]))
    # Short dwells (absence ≪ RTO) beat 200–300 ms dwells (absence
    # 400–600 ms, past the RTO floor).
    assert values[0.05] > values[0.2]
