"""Bench: regenerate Fig. 9 (throughput vs backhaul, five configs)."""

from repro.experiments import fig9_micro as exp


def test_bench_fig9(once):
    result = once(exp.run, backhauls=(0.5e6, 2e6, 5e6), duration=60.0)
    exp.print_report(result)
    by_config = {s["config"]: s["throughput_kBps"] for s in result["series"]}

    one = by_config["one-card-stock"]
    two = by_config["two-cards-stock"]
    spider_single = by_config["spider-100-0-0"]
    spider_fast = by_config["spider-50-0-50"]

    for i in range(len(one)):
        # Two physical cards ≈ 2× one card; Spider on one channel with
        # two APs matches the two-card node (the paper's headline
        # micro-benchmark result).
        assert two[i] > one[i] * 1.4
        assert spider_single[i] > one[i] * 1.5
        assert abs(spider_single[i] - two[i]) / two[i] < 0.4
        # Multi-channel schedules pay for switching: below the
        # single-channel configuration.
        assert spider_fast[i] <= spider_single[i] * 1.05

    # Throughput grows with offered backhaul for the aggregating configs.
    assert spider_single[-1] > spider_single[0] * 2
