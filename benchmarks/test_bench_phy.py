"""Bench: PHY medium microbenchmarks — per-frame cost vs fleet size.

Unlike the figure benches (which regenerate paper artifacts), these
target the medium hot path directly: broadcast fan-out, unicast ARQ,
and dense-downtown scenario stepping, each swept over fleet size.
Before the indexed medium, every delivery paid an O(#radios) scan, so
wall time per frame grew linearly with fleet size; the sweep makes
that visible (and `benchmarks/compare.py` keeps it from coming back).

Radios are spread over the three orthogonal channels and along a line
much longer than the radio range — the dense-downtown shape (the
preset generates ~40 APs over a multi-km loop with ~100 m cells): for
any given sender most of the fleet is off-channel or out of range,
which is exactly where a full-registry scan wastes its work.
"""

import time

import pytest

from repro.mac import frames
from repro.phy.channels import ORTHOGONAL_CHANNELS
from repro.phy.propagation import PropagationModel
from repro.phy.radio import Medium, Radio
from repro.scenario.build import build, make_fleet, run_spec
from repro.scenario.registry import scenario
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.world.geometry import Point
from repro.world.mobility import StaticMobility

#: Fleet sizes for the sweep. 8 ≈ the paper's lab, 32 ≈ the Amherst
#: loop, 128 ≈ the dense-downtown regime the ROADMAP targets.
RADIO_COUNTS = (8, 32, 128)

#: City-scale sweep (DESIGN.md §6.2): the fleet grows 10× but the
#: line geometry keeps each sender's *local* density constant, so with
#: the spatial grid the per-frame cost must stay flat — a 10× jump is
#: exactly the reintroduced-global-scan regression compare.py gates.
CITY_RADIO_COUNTS = (1000, 10000)


def _fleet(count, loss=0.0, seed=7, kernel="vector", spatial=True):
    """`count` static radios spread over channels 1/6/11 along a line.

    25 m spacing puts a handful of same-channel radios inside any
    sender's 100 m cell while the rest of the fleet sits far down the
    road — the storefront-row geometry of the dense-downtown preset.
    """
    sim = Simulator()
    medium = Medium(
        sim,
        PropagationModel(range_m=100.0, base_loss=loss, edge_start=0.9),
        RandomStreams(seed),
        kernel=kernel,
        spatial_index=spatial,
    )
    radios = [
        Radio(
            medium,
            StaticMobility(Point(index * 25.0, float(index % 5))),
            ORTHOGONAL_CHANNELS[index % 3],
            name=f"r{index}",
            address=f"r{index}",
        )
        for index in range(count)
    ]
    return sim, medium, radios


def _broadcast_fanout(count, frames_per_sender=600, kernel="vector", spatial=True):
    """Three senders (one per channel) each beacon `frames_per_sender` times.

    Each sender re-sends one pre-built beacon on a chained timer: the
    event heap stays shallow and no per-send frame allocation dilutes
    the medium cost under measurement.
    """
    sim, medium, radios = _fleet(count, kernel=kernel, spatial=spatial)
    delivered = [0]

    def bump(_frame):
        delivered[0] += 1

    for radio in radios[3:]:
        radio.on_receive = bump

    def pump(sender, frame, remaining):
        sender.transmit(frame)
        if remaining:
            sim.schedule(0.003, pump, sender, frame, remaining - 1)

    for sender_index in range(3):
        sender = radios[sender_index]
        sim.schedule(0.0, pump, sender, frames.beacon(sender.name), frames_per_sender - 1)
    sim.run()
    return {
        "radios": count,
        "frames_sent": 3 * frames_per_sender,
        "frames_delivered": delivered[0],
    }


def _unicast_arq(count, frame_count=1200):
    """A lossy unicast link with ARQ across a fleet of bystanders.

    The sender and target register *last*, as a client radio does after
    the AP fleet is wired — the representative worst case for any
    address lookup that walks the registry.
    """
    sim, medium, radios = _fleet(count, loss=0.30)
    sender = Radio(medium, StaticMobility(Point(0.0, 20.0)), 1, name="tx", address="tx")
    target = Radio(medium, StaticMobility(Point(21.0, 20.0)), 1, name="rx", address="rx")
    delivered = [0]
    target.on_receive = lambda _frame: delivered.__setitem__(0, delivered[0] + 1)

    def pump(frame, remaining):
        sender.transmit(frame)
        if remaining:
            sim.schedule(0.004, pump, frame, remaining - 1)

    sim.schedule(0.0, pump, frames.data_frame("tx", "rx", None, 600), frame_count - 1)
    sim.run()
    return {
        "radios": count,
        "frames_sent": frame_count,
        "frames_delivered": delivered[0],
    }


def _city_fanout(count, frames_per_sender=400):
    """The broadcast sweep at city scale, with per-frame cost reported.

    Setup (registering `count` radios) happens outside the timed
    region of interest conceptually, but `once()` times the whole
    call — so the delivery loop dominates by sending 3×400 frames
    against a one-off O(count) build.
    """
    setup_start = time.perf_counter()
    sim, medium, radios = _fleet(count)
    setup_s = time.perf_counter() - setup_start
    delivered = [0]

    def bump(_frame):
        delivered[0] += 1

    for radio in radios[3:]:
        radio.on_receive = bump

    def pump(sender, frame, remaining):
        sender.transmit(frame)
        if remaining:
            sim.schedule(0.003, pump, sender, frame, remaining - 1)

    for sender_index in range(3):
        sender = radios[sender_index]
        sim.schedule(0.0, pump, sender, frames.beacon(sender.name), frames_per_sender - 1)
    deliver_start = time.perf_counter()
    sim.run()
    deliver_s = time.perf_counter() - deliver_start
    sent = 3 * frames_per_sender
    return {
        "radios": count,
        "frames_sent": sent,
        "frames_delivered": delivered[0],
        "setup_s": round(setup_s, 6),
        "us_per_frame": round(deliver_s / sent * 1e6, 3),
    }


def _metro_core_step(window=1.0, kernel="vector"):
    """One step window of the metro-core city: 10k+ APs, four regions.

    The acceptance bar for the partitioned-medium tentpole: a 10k-AP
    world must *build* fast and *advance* a benchmark window in
    seconds, with the client fleet enrolled for edge handoff.
    """
    spec = scenario("metro-core", duration=window).with_phy(kernel=kernel)
    build_start = time.perf_counter()
    world = build(spec)
    build_s = time.perf_counter() - build_start
    assert len(world.aps) >= 10000, f"metro-core shrank: {len(world.aps)} APs"
    assert world.partitions is not None
    make_fleet(world, spec)
    step_start = time.perf_counter()
    world.sim.run(until=window)
    step_s = time.perf_counter() - step_start
    return {
        "aps": len(world.aps),
        "window_s": window,
        "build_s": round(build_s, 6),
        "step_s": round(step_s, 6),
        "handoffs": world.partitions.handoffs,
    }


def _dense_downtown_steps(duration=120.0, kernel="vector"):
    """Step the dense-downtown preset: the scenario the index exists for."""
    spec = scenario("dense-downtown", duration=duration, seed=3).with_phy(kernel=kernel)
    results = run_spec(spec)
    throughput = sum(result.summary()["throughput_KBps"] for result in results.values())
    return {"duration": duration, "throughput_KBps": throughput}


def _kernel_ablation(duration=120.0):
    """Dense-downtown stepped under both kernels, speedup reported.

    The scalar oracle keeps none of the vector path's machinery (no
    SoA snapshots, no sender pair cache), so this is the committed
    measurement of what ``kernel = "vector"`` buys on the scenario the
    kernel was built for. Digest identity between the two runs is
    pinned elsewhere (``tests/test_scenario_identity.py``); this bench
    only times them.
    """
    spec = scenario("dense-downtown", duration=duration, seed=3)
    walls = {}
    for kern in ("scalar", "vector"):
        start = time.perf_counter()
        run_spec(spec.with_phy(kernel=kern))
        walls[kern] = time.perf_counter() - start
    return {
        "scalar_s": round(walls["scalar"], 6),
        "vector_s": round(walls["vector"], 6),
        "speedup": round(walls["scalar"] / walls["vector"], 3),
    }


@pytest.mark.parametrize("radios", RADIO_COUNTS)
def test_bench_phy_broadcast_fanout(once, radios):
    result = once(_broadcast_fanout, radios)
    assert result["frames_delivered"] > 0


@pytest.mark.parametrize("kernel", ("scalar", "vector"))
def test_bench_phy_broadcast_fanout_kernel(once, kernel):
    """Kernel ablation on the largest spatial-grid fleet."""
    result = once(_broadcast_fanout, RADIO_COUNTS[-1], kernel=kernel)
    assert result["frames_delivered"] > 0


@pytest.mark.parametrize("kernel", ("scalar", "vector"))
def test_bench_phy_scan_fanout_kernel(once, kernel):
    """Kernel ablation on the scan path (``spatial_index=False``).

    With the grid off, every fan-out walks the full per-channel
    snapshot (~43 radios at 128 on three channels) — comfortably past
    ``KERNEL_MIN_BATCH``, so unlike the grid benches (whose local
    snapshots are small and take the scalar fallback either way) this
    is the regime where the batched SoA pre-filter itself carries the
    delivery cost.
    """
    result = once(_broadcast_fanout, RADIO_COUNTS[-1], kernel=kernel, spatial=False)
    assert result["frames_delivered"] > 0


@pytest.mark.parametrize("radios", RADIO_COUNTS)
def test_bench_phy_unicast_arq(once, radios):
    result = once(_unicast_arq, radios)
    # h=30% with 4 ARQ attempts: the vast majority must get through.
    assert result["frames_delivered"] > result["frames_sent"] * 0.9


def test_bench_phy_dense_downtown_steps(once):
    result = once(_dense_downtown_steps)
    assert result["throughput_KBps"] > 0.0


def test_bench_phy_dense_downtown_steps_scalar(once):
    """The scalar-oracle ablation of the scenario bench above."""
    result = once(_dense_downtown_steps, kernel="scalar")
    assert result["throughput_KBps"] > 0.0


def test_bench_phy_kernel_speedup(once):
    result = once(_kernel_ablation)
    assert result["speedup"] > 0.0


@pytest.mark.parametrize("radios", CITY_RADIO_COUNTS)
def test_bench_phy_city_fanout(once, radios):
    result = once(_city_fanout, radios)
    assert result["frames_delivered"] > 0


def test_bench_phy_metro_core_step(once):
    result = once(_metro_core_step)
    assert result["aps"] >= 10000
    assert result["step_s"] < 60.0  # "steps in seconds", with CI slack


def test_bench_phy_metro_core_step_scalar(once):
    """Scalar-oracle ablation of the 10k-AP step: what the vector
    kernel's pair cache saves when every AP beacons every window."""
    result = once(_metro_core_step, kernel="scalar")
    assert result["aps"] >= 10000
    assert result["step_s"] < 60.0
