"""Bench: regenerate Table 1 (switch latency vs connected interfaces)."""

from repro.experiments import tab1_switch_latency as exp


def test_bench_tab1(once):
    result = once(exp.run, max_interfaces=4, duration=25.0)
    exp.print_report(result)
    rows = result["rows"]
    # Zero interfaces: the latency is essentially the hardware reset
    # (paper: 4.94 ms).
    assert 4.0 < rows[0]["mean_ms"] < 6.5
    # Latency grows with the number of connected interfaces because a
    # separate PSM frame must be sent to each AP.
    means = [row["mean_ms"] for row in rows]
    assert all(b >= a - 0.2 for a, b in zip(means, means[1:]))
    assert means[4] > means[0]
    # And stays in the same few-millisecond regime as the paper.
    assert means[4] < 12.0
