"""Bench: regenerate Table 2 (throughput & connectivity per config)."""

from repro.experiments import tab2_throughput_connectivity as exp


def test_bench_tab2(once):
    result = once(exp.run, duration=600.0)
    exp.print_report(result)
    rows = {r["config"]: r for r in result["rows"]}

    ch1_multi = rows["ch1-multi-ap"]
    ch1_single = rows["ch1-single-ap"]
    mch_multi = rows["3ch-multi-ap"]
    stock = rows["stock-madwifi"]

    # Headline: single-channel multi-AP wins throughput, by a clear
    # factor over its single-AP counterpart and over stock Wi-Fi.
    best_throughput = max(r["throughput_kBps"] for r in rows.values())
    assert ch1_multi["throughput_kBps"] == best_throughput
    assert ch1_multi["throughput_kBps"] > ch1_single["throughput_kBps"] * 1.3
    assert ch1_multi["throughput_kBps"] > stock["throughput_kBps"] * 1.3

    # Multi-channel multi-AP trades throughput for the best connectivity.
    assert mch_multi["throughput_kBps"] < ch1_multi["throughput_kBps"] * 0.5
    assert mch_multi["connectivity_pct"] >= ch1_single["connectivity_pct"]

    # Stock Wi-Fi has the worst connectivity of the compared drivers.
    assert stock["connectivity_pct"] <= min(
        ch1_multi["connectivity_pct"], mch_multi["connectivity_pct"]
    )
