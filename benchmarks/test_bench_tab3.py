"""Bench: regenerate Table 3 (DHCP failure probabilities)."""

from repro.experiments import tab3_dhcp_failures as exp


def test_bench_tab3(once):
    result = once(exp.run, seeds=(1, 2), duration=240.0)
    exp.print_report(result)
    rows = {r["label"]: r for r in result["rows"]}

    default_ch1 = rows["ch1, default timers"]
    reduced_600 = rows["ch1, ll=100ms, dhcp=600ms"]
    reduced_400 = rows["ch1, ll=100ms, dhcp=400ms"]
    reduced_200 = rows["ch1, ll=100ms, dhcp=200ms"]
    triple = rows["3ch, ll=100ms, dhcp=200ms"]

    # Reduced timers increase the failure rate vs default timers
    # (paper: roughly a two-fold increase).
    assert reduced_200["mean_pct"] >= default_ch1["mean_pct"] * 1.3

    # And the shorter the timer, the more requests go unanswered
    # (paper: 23.0% at 600 ms < 27.1% at 400 ms < 28.2% at 200 ms).
    assert reduced_600["mean_pct"] <= reduced_400["mean_pct"] + 3.0
    assert reduced_400["mean_pct"] <= reduced_200["mean_pct"] + 3.0

    # The multi-channel row sits in the same elevated regime as the
    # reduced single-channel rows (paper: 23.6% vs 28.2%).
    assert triple["mean_pct"] >= reduced_200["mean_pct"] * 0.6

    # Rates stay in a plausible band (not 0, not certain failure on
    # the dedicated channel).
    assert 0.0 < default_ch1["mean_pct"] < 60.0
