"""Bench: regenerate Table 4 (throughput/connectivity vs #channels)."""

from repro.experiments import tab4_channels as exp


def test_bench_tab4(once):
    result = once(exp.run, duration=600.0)
    exp.print_report(result)
    rows = result["rows"]
    one, two, three = rows

    # Throughput is maximised on a single channel...
    assert one["throughput_kBps"] == max(r["throughput_kBps"] for r in rows)
    assert one["throughput_kBps"] > two["throughput_kBps"] * 1.5
    # ...and connectivity with the full three-channel schedule (the
    # larger AP pool), paper Table 4.
    assert three["connectivity_pct"] >= two["connectivity_pct"] * 0.9
    assert three["connectivity_pct"] >= one["connectivity_pct"] * 0.6
