#!/usr/bin/env python3
"""How much does Spider's join-history heuristic give up vs optimal?

The paper proves utility-maximal multi-AP selection NP-hard and opts
for a heuristic (Sec. 3). This example draws random downtown AP
environments and compares three solvers on the underlying optimisation
problem: exhaustive search (optimal, exponential), bandwidth-greedy
selection (FatVAP-ish), and Spider's join-history single-channel
heuristic — across short (vehicular) and long (strolling) encounters.

Run:  python examples/ap_selection_study.py [environments]
"""

import random
import sys

from repro.core.selection_problem import CandidateAp, optimality_gap
from repro.metrics.stats import mean


def random_environment(rng: random.Random, aps: int = 7):
    """A random cluster of candidate APs as a vehicle would see it."""
    candidates = []
    for index in range(aps):
        join_time = rng.uniform(0.8, 5.0)
        candidates.append(
            CandidateAp(
                name=f"ap{index}",
                channel=rng.choice([1, 6, 11]),
                bandwidth_bps=rng.uniform(1e6, 10e6),
                expected_join_time=join_time,
                # Spider's history approximates 1/(1+join time): it has
                # seen who answers quickly, not who has fat backhaul.
                join_history_score=1.0 / (1.0 + join_time) + rng.gauss(0, 0.05),
            )
        )
    return candidates


def study(encounter: float, environments: int, seed: int = 1):
    rng = random.Random(seed)
    greedy, history = [], []
    for _ in range(environments):
        gaps = optimality_gap(random_environment(rng), in_range_time=encounter)
        greedy.append(gaps["greedy_bandwidth"])
        history.append(gaps["join_history"])
    return mean(greedy), mean(history)


def main() -> None:
    environments = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    print(f"Average fraction of the optimal utility over {environments} random")
    print("downtown AP environments (exhaustive search = 1.00):\n")
    print("  encounter      greedy-by-bandwidth   Spider (join history)")
    for encounter, label in [(6.0, "6 s (vehicular)"), (15.0, "15 s (slow street)"),
                             (60.0, "60 s (strolling)")]:
        greedy, history = study(encounter, environments)
        print(f"  {label:17s} {greedy:12.2f} {history:21.2f}")
    print(
        "\nReading: at vehicular encounters the join-time-aware heuristic"
        "\nholds up despite ignoring bandwidth entirely — join cost, not"
        "\noffered bandwidth, decides what a moving client can extract."
    )


if __name__ == "__main__":
    main()
