#!/usr/bin/env python3
"""Find the dividing speed for your own AP environment.

The paper's analytical result: there is a speed above which a mobile
client should stop switching channels and dedicate the card to one
channel. This example sweeps node speed for a user-described two-channel
environment and prints the optimal schedule at each speed plus the
dividing speed.

Run:  python examples/dividing_speed.py [joined_fraction] [available_fraction]
e.g.  python examples/dividing_speed.py 0.5 0.5
"""

import sys

from repro.model.join_model import JoinModelParams
from repro.model.throughput_opt import (
    ChannelScenario,
    dividing_speed,
    sweep_speeds,
)


def main() -> None:
    joined = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    available = float(sys.argv[2]) if len(sys.argv) > 2 else 0.75
    params = JoinModelParams(beta_max=10.0)
    speeds = [1.0, 2.5, 5.0, 7.5, 10.0, 15.0, 20.0]

    one = ChannelScenario(joined_fraction=joined)
    two = ChannelScenario(available_fraction=available)
    print(f"Channel 1: already joined, offering {joined:.0%} of Bw")
    print(f"Channel 2: must join first, offering {available:.0%} of Bw")
    print(f"AP responsiveness: beta in [{params.beta_min}, {params.beta_max}] s\n")
    print(" speed   ch1 schedule  ch2 schedule  ch1 kbps  ch2 kbps")
    for schedule in sweep_speeds(one, two, speeds, params=params, grid_step=0.02):
        f1, f2 = schedule.fractions
        print(
            f"  {schedule.speed:4.1f}       {f1:6.0%}       {f2:6.0%}"
            f"   {schedule.per_channel_bps[0] / 1e3:7.0f}  {schedule.per_channel_bps[1] / 1e3:8.0f}"
        )

    divide = dividing_speed(one, two, speeds, params=params, grid_step=0.02)
    if divide is None:
        print("\nNo dividing speed in this sweep: channel 2 stays worthwhile.")
    else:
        print(f"\nDividing speed: {divide:.1f} m/s — above this, stay on one channel.")


if __name__ == "__main__":
    main()
