#!/usr/bin/env python3
"""Quickstart: aggregate two APs' backhauls on one channel with Spider.

Builds a static lab world (two APs on channel 1, 2 Mbps backhaul each),
runs Spider in its single-channel multi-AP configuration for a minute
of simulated time, and prints the throughput — which should land near
the 4 Mbps aggregate, roughly double what one AP could deliver.

Run:  python examples/quickstart.py
"""

from repro.core.config import SpiderConfig
from repro.experiments.common import LabScenario


def main() -> None:
    lab = LabScenario(seed=1)
    lab.add_lab_ap("coffee-shop", channel=1, backhaul_bps=2e6, index=0)
    lab.add_lab_ap("neighbour", channel=1, backhaul_bps=2e6, index=2)

    spider = lab.make_spider(
        SpiderConfig.single_channel_multi_ap(
            channel=1,
            link_timeout=0.1,  # reduced link-layer timer (paper Sec. 4.5)
            dhcp_retry_timeout=0.2,  # reduced DHCP timer
        )
    )
    result = lab.run(spider, duration=60.0)

    print("Spider quickstart — two APs, one channel, one card")
    print(f"  joined APs:        {result.join_successes}")
    print(f"  avg throughput:    {result.throughput_kbytes_per_s:.0f} KB/s "
          f"(aggregate backhaul is 500 KB/s)")
    print(f"  connectivity:      {result.connectivity:.0%} of seconds")
    for record in spider.join_log.records:
        print(f"  join {record.ap}: association {record.association_time * 1000:.0f} ms,"
              f" full join {record.join_time:.2f} s")


if __name__ == "__main__":
    main()
