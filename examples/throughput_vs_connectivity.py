#!/usr/bin/env python3
"""The throughput/connectivity trade-off across Spider configurations.

A Wi-Fi-only tablet cares about *connectivity*; a bulk sync job cares
about *throughput*. This example runs Spider's four configurations over
the same drive and shows the trade-off the paper's Table 2 captures:
single-channel multi-AP maximises throughput, multi-channel multi-AP
maximises connectivity.

Run:  python examples/throughput_vs_connectivity.py
"""

from repro.core.config import SpiderConfig
from repro.experiments.common import ScenarioConfig, VehicularScenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)

CONFIGS = [
    ("channel 1, multi-AP ", SpiderConfig.single_channel_multi_ap(1, **REDUCED)),
    ("channel 1, single-AP", SpiderConfig.single_channel_single_ap(1, **REDUCED)),
    ("3 channels, multi-AP", SpiderConfig.multi_channel_multi_ap(period=0.6, **REDUCED)),
    ("3 channels, single-AP", SpiderConfig.multi_channel_single_ap(period=0.6, **REDUCED)),
]


def main() -> None:
    print("config                  thr (KB/s)  connectivity  verdict")
    rows = []
    for name, config in CONFIGS:
        scenario = VehicularScenario(ScenarioConfig(seed=3))
        result = scenario.run(scenario.make_spider(config), duration=600.0)
        rows.append((name, result))
    best_thr = max(rows, key=lambda r: r[1].throughput_kbytes_per_s)[0]
    best_conn = max(rows, key=lambda r: r[1].connectivity)[0]
    for name, result in rows:
        verdict = []
        if name == best_thr:
            verdict.append("best for bulk transfer")
        if name == best_conn:
            verdict.append("best for staying reachable")
        print(
            f"{name:22s} {result.throughput_kbytes_per_s:10.1f}"
            f"  {result.connectivity:11.1%}  {', '.join(verdict)}"
        )


if __name__ == "__main__":
    main()
