#!/usr/bin/env python3
"""A commuter's drive: stock Wi-Fi vs Spider (static and dynamic).

Simulates a ten-minute drive around a downtown loop lined with organic
open APs (the paper's Amherst channel mix) with three drivers:

1. an unmodified stock driver (one AP at a time, any channel);
2. Spider pinned to channel 1 (the paper's throughput configuration —
   but a pin can lose if this route is poor on channel 1, the
   limitation Sec. 4.8 calls out);
3. Spider with dynamic channel selection (this repo's implementation
   of that future work), which surveys and dwells on the best channel.

Run:  python examples/vehicular_commute.py [speed_m_s]
"""

import sys

from repro.core.config import SpiderConfig
from repro.core.dynamic import DynamicChannelSpider, DynamicConfig
from repro.experiments.common import ScenarioConfig, VehicularScenario
from repro.metrics.stats import median, percentile


def drive(name, make_driver, speed):
    scenario = VehicularScenario(ScenarioConfig(seed=7, speed=speed))
    driver = make_driver(scenario)
    result = scenario.run(driver, duration=600.0)
    print(f"\n{name} @ {speed:.0f} m/s")
    print(f"  avg throughput:   {result.throughput_kbytes_per_s:7.1f} KB/s")
    print(f"  connectivity:     {result.connectivity:7.1%}")
    disruptions = result.disruption_durations
    if disruptions:
        print(f"  disruptions:      median {median(disruptions):.0f} s,"
              f" p90 {percentile(disruptions, 90):.0f} s")
    inst = result.instantaneous_kbytes
    if inst:
        print(f"  when connected:   median {median(inst):.0f} KB/s,"
              f" p90 {percentile(inst, 90):.0f} KB/s")
    return result


def make_dynamic(scenario):
    driver = DynamicChannelSpider(
        scenario.sim,
        scenario.medium,
        scenario.mobility,
        "spider",
        config=DynamicConfig(
            dwell_duration=6.0, link_timeout=0.1, dhcp_retry_timeout=0.2
        ),
        router_lookup=scenario.router_lookup(),
    )
    return driver


def main() -> None:
    speed = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    stock_result = drive("Stock Wi-Fi (MadWiFi-like)", lambda sc: sc.make_stock(), speed)
    static_result = drive(
        "Spider, pinned to channel 1",
        lambda sc: sc.make_spider(
            SpiderConfig.single_channel_multi_ap(
                channel=1, link_timeout=0.1, dhcp_retry_timeout=0.2
            )
        ),
        speed,
    )
    dynamic_result = drive("Spider, dynamic channel selection", make_dynamic, speed)

    if stock_result.throughput_kbytes_per_s > 0:
        static_gain = (
            static_result.throughput_kbytes_per_s / stock_result.throughput_kbytes_per_s
        )
        dynamic_gain = (
            dynamic_result.throughput_kbytes_per_s / stock_result.throughput_kbytes_per_s
        )
        print(f"\nvs stock: static channel-1 pin {static_gain:.1f}x,"
              f" dynamic selection {dynamic_gain:.1f}x.")
        if static_gain < 1.0 <= dynamic_gain:
            print("A fixed pin can lose on a channel-poor route; surveying first wins.")


if __name__ == "__main__":
    main()
