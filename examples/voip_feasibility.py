#!/usr/bin/env python3
"""Can you hold a VoIP call over open Wi-Fi from a moving car?

The paper's disruption analysis (Sec. 4.3/4.7) asks whether interactive
applications like VoIP can be supported. This example attaches a
G.711-style CBR stream to every AP Spider joins during a downtown drive
and reports per-connection call quality (loss, delay, E-model MOS) for
a single-channel and a multi-channel configuration.

Run:  python examples/voip_feasibility.py
"""

from repro.core.config import SpiderConfig
from repro.experiments.common import ScenarioConfig, VehicularScenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def drive_with_calls(name, config, duration=420.0):
    scenario = VehicularScenario(ScenarioConfig(seed=13))
    # A call study, not a bulk-transfer study: don't run a saturating
    # download next to the stream (bufferbloat would drown the call).
    config.auto_flow = False
    spider = scenario.make_spider(config)
    streams = []

    original = spider.on_interface_connected

    def start_call(interface):
        original(interface)
        stream = interface.attach_voip()
        if stream is not None:
            streams.append((interface.ap_name, stream))

    spider.on_interface_connected = start_call
    spider.start()
    scenario.sim.run(until=duration)
    spider.stop()

    print(f"\n{name}: {len(streams)} call segments")
    usable = judged = 0
    for ap_name, stream in streams:
        # Quality until the call dropped (the silent tail after the car
        # leaves coverage is a drop, not in-call loss).
        quality = stream.quality(trim_tail=True)
        if quality.sent < 100:
            continue  # under two seconds of call: too short to judge
        judged += 1
        verdict = "usable" if quality.usable else "unusable"
        usable += quality.usable
        print(
            f"  via {ap_name:6s}: {quality.sent * 0.02:5.1f}s,"
            f" loss {quality.loss_fraction:5.1%},"
            f" delay {quality.mean_delay * 1000:4.0f} ms,"
            f" MOS {quality.mos:.2f} ({verdict})"
        )
    if judged:
        print(f"  => {usable}/{judged} call segments usable")
    return streams


def main() -> None:
    drive_with_calls(
        "Single channel, multi-AP (throughput config)",
        SpiderConfig.single_channel_multi_ap(1, **REDUCED),
    )
    drive_with_calls(
        "Three channels, multi-AP (connectivity config)",
        SpiderConfig.multi_channel_multi_ap(period=0.6, **REDUCED),
    )
    print(
        "\nTake-away: per-connection call quality is good on a dedicated"
        "\nchannel, but the gaps BETWEEN connections (disruptions) are what"
        "\nlimit real calls — the trade-off the paper's Figs. 10/14 measure."
    )


if __name__ == "__main__":
    main()
