"""spider-repro: reproduction of "Concurrent Wi-Fi for Mobile Users".

A from-scratch implementation of the Spider system (Soroush et al.,
ACM CoNEXT 2011) and every substrate its evaluation depends on, built
on a deterministic discrete-event simulator.

Public entry points:

- :mod:`repro.model` — the paper's analytical framework (join model,
  throughput optimiser, dividing speed);
- :class:`repro.core.SpiderConfig` / :class:`repro.core.SpiderDriver` —
  the system itself;
- :mod:`repro.experiments` — one runner per paper table/figure
  (``spider-repro run all`` from the command line);
- :class:`repro.experiments.common.LabScenario` /
  :class:`repro.experiments.common.VehicularScenario` — ready-made
  worlds to run drivers in.

See README.md for a guided tour and DESIGN.md for the paper-to-code
mapping.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
