"""simlint — AST-based invariant checks for the simulation stack.

The reproduction's guarantees (seeded determinism, byte-identical
parallel execution, a closed trace-event taxonomy, a picklable shard
protocol) are conventions of the *source code*; this package turns them
into machine-checked rules. See ``DESIGN.md`` ("Static analysis") for
the rule catalogue and the plugin interface.

Public surface:

- :func:`repro.analysis.engine.lint_paths` / ``lint_units`` — run the
  checker programmatically;
- :class:`repro.analysis.core.Rule` + ``register_rule`` — write new rules;
- :mod:`repro.analysis.cli` — the ``spider-repro lint`` command.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig, load_config
from repro.analysis.core import (
    RULES,
    Finding,
    ModuleUnit,
    RelatedLocation,
    Rule,
    Severity,
    register_rule,
)
from repro.analysis.engine import LintRun, lint_paths, lint_units

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintRun",
    "ModuleUnit",
    "RULES",
    "RelatedLocation",
    "Rule",
    "Severity",
    "lint_paths",
    "lint_units",
    "load_config",
    "register_rule",
]
