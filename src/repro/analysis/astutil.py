"""Small AST helpers shared by the simlint rules.

The rules reason about *dotted call targets* — ``random.choice``,
``time.perf_counter``, ``tr.DHCP_SEND`` — which requires resolving the
module's import aliases: ``from repro.obs import trace as tr`` must make
``tr.DHCP_SEND`` resolve to ``repro.obs.trace.DHCP_SEND``. That mapping
is what :class:`ImportMap` provides; :func:`dotted_name` turns an
``Attribute``/``Name`` chain into the textual path to feed it.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


def resolve_relative(
    module: Optional[str], level: int, target: Optional[str], is_package: bool = False
) -> Optional[str]:
    """Absolute module named by a relative import statement.

    ``module`` is the importing module's dotted path, ``level`` the
    number of leading dots, ``target`` the module text after the dots
    (``None`` for ``from . import x``). ``is_package`` marks
    ``__init__.py`` files, whose first dot refers to the package
    itself rather than its parent. Returns ``None`` when the import
    escapes the top of the package (or ``module`` is unknown).
    """
    if module is None or level < 1:
        return None
    parts = module.split(".")
    # In a plain module the trailing component is the module itself;
    # one dot means "my package". In __init__.py the module *is* the
    # package, so one dot strips nothing.
    drop = level if not is_package else level - 1
    if drop >= len(parts):
        return None
    base = parts[: len(parts) - drop]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Maps local names to the fully dotted thing they import.

    ``import random``                  → ``random`` → ``random``
    ``import repro.obs.trace as tr``   → ``tr`` → ``repro.obs.trace``
    ``from repro.obs import trace``    → ``trace`` → ``repro.obs.trace``
    ``from random import choice as c`` → ``c`` → ``random.choice``

    Relative imports and ``import a.b`` (which only binds ``a``) resolve
    to their visible binding; ``from x import *`` is ignored.

    When ``module_name`` is given (the importing module's own dotted
    path), relative imports are resolved through
    :func:`resolve_relative` as well — the per-file rules don't need
    this (relative imports never reach the banned stdlib paths), but
    the project graph layer does.
    """

    def __init__(
        self,
        tree: ast.AST,
        module_name: Optional[str] = None,
        is_package: bool = False,
    ):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = resolve_relative(module_name, node.level, node.module, is_package)
                    if base is None:
                        continue
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        self.aliases[local] = f"{base}.{alias.name}"
                    continue
                if node.module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Expand the first component of ``dotted`` through the aliases."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def resolve_node(self, node: ast.AST) -> Optional[str]:
        return self.resolve(dotted_name(node))
