"""Committed baseline of grandfathered simlint findings.

A lint gate is only adoptable if turning it on doesn't require fixing
the whole history at once. The baseline records accepted findings so
the gate fails **only on new ones**: each entry keys a finding by rule,
file, and a hash of the *flagged line's stripped text* — stable across
unrelated edits that merely shift line numbers, invalidated the moment
the offending line itself changes (at which point it must be fixed or
deliberately re-baselined with ``--write-baseline``).

Entries that no longer match anything are *stale*; the CLI reports them
so the baseline shrinks monotonically instead of fossilising.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.core import Finding

_VERSION = 1


def _line_text(source_lines: Sequence[str], line: int) -> str:
    if 1 <= line <= len(source_lines):
        return source_lines[line - 1].strip()
    return ""


def finding_key(finding: Finding, source_lines: Sequence[str]) -> Tuple[str, str, str]:
    digest = hashlib.sha256(_line_text(source_lines, finding.line).encode()).hexdigest()[:16]
    return (finding.rule.upper(), finding.path.replace("\\", "/"), digest)


class Baseline:
    """A multiset of accepted finding keys."""

    def __init__(self, entries: Iterable[Tuple[str, str, str]] = ()):
        self._entries: Counter = Counter(entries)
        self._unmatched: Counter = Counter(self._entries)

    def __len__(self) -> int:
        return sum(self._entries.values())

    def absorbs(self, finding: Finding, source_lines: Sequence[str]) -> bool:
        """True (and consumes one entry) if ``finding`` is baselined."""
        key = finding_key(finding, source_lines)
        if self._unmatched[key] > 0:
            self._unmatched[key] -= 1
            return True
        return False

    def stale_entries(self) -> List[Tuple[str, str, str]]:
        """Entries no call to :meth:`absorbs` matched this run."""
        return sorted(self._unmatched.elements())

    # -- persistence -----------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != _VERSION:
            raise ValueError(f"unsupported baseline version in {path}: {data.get('version')!r}")
        entries = [(e["rule"], e["path"], e["key"]) for e in data.get("entries", [])]
        return cls(entries)

    @staticmethod
    def write(
        path: Path,
        findings: Iterable[Finding],
        sources: Dict[str, Sequence[str]],
    ) -> int:
        """Serialise ``findings`` as the new baseline; returns the count."""
        entries = []
        for finding in sorted(findings):
            rule, rel, digest = finding_key(finding, sources.get(finding.path, ()))
            entries.append({"rule": rule, "path": rel, "key": digest})
        payload = {"version": _VERSION, "entries": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return len(entries)
