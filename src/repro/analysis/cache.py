"""Incremental per-file fact cache: full-repo lint at changed-file cost.

Per linted file the cache stores two independently keyed payloads:

**facts** (keyed on content digest + facts schema version) — the
cross-module facts of :mod:`repro.analysis.graph`. Facts depend only on
the file itself, so they survive any change elsewhere in the repo,
including rule upgrades.

**module-scope findings** (keyed on content digest + the *ruleset
digest*) — the raw output of every module-scope rule for that file,
recorded before suppression/baseline routing (routing is cheap and
depends on run flags, so it always re-runs). The ruleset digest folds
in every registered rule's id and version, the resolved
:class:`~repro.analysis.config.LintConfig`, and the content digest of
the taxonomy module — the one cross-file input a module-scope rule
(SL004) reads — so a changed rule, config edit, or taxonomy edit
invalidates findings repo-wide while leaving the facts intact.

Project-scope rules are never cached: they re-run every time over the
(warm) facts, which is what makes ``--changed`` safe — the project
graph is always complete even when only one file is re-parsed.

The cache file is JSON, written atomically (tmp + rename) so a killed
run can never leave a torn cache; an unreadable or version-skewed cache
is silently treated as cold.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import RULES, Finding
from repro.analysis.graph import SCHEMA_VERSION, ModuleFacts

_CACHE_VERSION = 1


def content_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def ruleset_digest(config_repr: str, taxonomy_digest: str) -> str:
    """Digest of everything (besides the file itself) that can change a
    module-scope rule's output."""
    material = "\n".join(
        [
            f"cache:{_CACHE_VERSION}",
            f"facts:{SCHEMA_VERSION}",
            ",".join(f"{key}:{rule.version}" for key, rule in sorted(RULES.items())),
            config_repr,
            f"taxonomy:{taxonomy_digest}",
        ]
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    digest: str
    facts: Optional[Dict] = None  # ModuleFacts.to_dict(), or None for parse errors
    findings_key: Optional[str] = None  # ruleset digest the findings were produced under
    findings: Optional[List[Dict]] = None


class FactsCache:
    """Path-keyed store of :class:`CacheEntry`; see the module docstring."""

    def __init__(self, path: Path):
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, CacheEntry] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if not isinstance(data, dict) or data.get("version") != _CACHE_VERSION:
            return
        for path, raw in data.get("entries", {}).items():
            try:
                self._entries[path] = CacheEntry(
                    digest=raw["digest"],
                    facts=raw.get("facts"),
                    findings_key=raw.get("findings_key"),
                    findings=raw.get("findings"),
                )
            except (KeyError, TypeError):
                continue

    # -- lookups ---------------------------------------------------------

    def facts_for(self, path: str, digest: str) -> Optional[ModuleFacts]:
        entry = self._entries.get(path)
        if entry is None or entry.digest != digest or entry.facts is None:
            return None
        try:
            return ModuleFacts.from_dict(entry.facts)
        except (KeyError, TypeError, ValueError):
            return None

    def findings_for(
        self, path: str, digest: str, ruleset: str
    ) -> Optional[List[Finding]]:
        entry = self._entries.get(path)
        if (
            entry is None
            or entry.digest != digest
            or entry.findings_key != ruleset
            or entry.findings is None
        ):
            return None
        try:
            return [Finding.from_dict(raw) for raw in entry.findings]
        except (KeyError, TypeError, ValueError):
            return None

    # -- updates ---------------------------------------------------------

    def store(
        self,
        path: str,
        digest: str,
        ruleset: str,
        facts: Optional[ModuleFacts],
        findings: Sequence[Finding],
    ) -> None:
        self._entries[path] = CacheEntry(
            digest=digest,
            facts=facts.to_dict() if facts is not None else None,
            findings_key=ruleset,
            findings=[finding.to_dict() for finding in findings],
        )
        self._dirty = True

    def prune(self, keep: Sequence[str]) -> None:
        """Drop entries for files no longer part of the lint set."""
        wanted = set(keep)
        stale = [path for path in self._entries if path not in wanted]
        for path in stale:
            del self._entries[path]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {
            "version": _CACHE_VERSION,
            "entries": {
                path: {
                    "digest": entry.digest,
                    "facts": entry.facts,
                    "findings_key": entry.findings_key,
                    "findings": entry.findings,
                }
                for path, entry in sorted(self._entries.items())
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, self.path)
        self._dirty = False
