"""``spider-repro lint``: the command-line face of simlint.

Exit codes follow lint-tool convention: 0 clean (possibly via the
baseline), 1 actionable findings, 2 usage or configuration errors —
so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig, find_pyproject, load_config
from repro.analysis.core import RULES
from repro.analysis.engine import LintRun, lint_paths, load_plugins


def _split_rules(values: List[str]) -> List[str]:
    out: List[str] = []
    for value in values:
        out.extend(token.strip() for token in value.split(",") if token.strip())
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spider-repro lint",
        description="AST-based invariant checks: determinism, trace taxonomy, shard protocol.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: src/ at the repo root)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline of grandfathered findings (default: [tool.simlint] baseline, if it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any configured baseline"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument("--list-rules", action="store_true", help="print registered rules and exit")
    return parser


def _report_text(run: LintRun, stale_shown: int = 5) -> None:
    for finding in run.findings:
        print(finding.format())
    parts = [
        f"{len(run.findings)} finding{'s' if len(run.findings) != 1 else ''}"
        f" ({run.errors} errors, {run.warnings} warnings)",
        f"{run.files} files",
    ]
    if run.suppressed:
        parts.append(f"{len(run.suppressed)} suppressed")
    if run.baselined:
        parts.append(f"{len(run.baselined)} baselined")
    if run.stale_baseline:
        parts.append(f"{len(run.stale_baseline)} stale baseline entries")
    print(f"simlint: {', '.join(parts)}")
    for rule, path, _key in run.stale_baseline[:stale_shown]:
        print(f"  stale baseline entry: {rule} in {path} no longer matches"
              " — re-run --write-baseline")


def _report_json(run: LintRun) -> None:
    print(
        json.dumps(
            {
                "findings": [f.to_dict() for f in run.findings],
                "summary": {
                    "files": run.files,
                    "findings": len(run.findings),
                    "errors": run.errors,
                    "warnings": run.warnings,
                    "suppressed": len(run.suppressed),
                    "baselined": len(run.baselined),
                    "stale_baseline": [
                        {"rule": rule, "path": path, "key": key}
                        for rule, path, key in run.stale_baseline
                    ],
                },
            },
            indent=2,
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    pyproject = find_pyproject(Path.cwd())
    try:
        config: LintConfig = load_config(pyproject)
    except ValueError as error:
        print(f"simlint: configuration error: {error}", file=sys.stderr)
        return 2
    root = config.root or Path.cwd()

    if args.list_rules:
        load_plugins(config.plugins)
        for rule in sorted(RULES.values(), key=lambda rule: rule.id):
            print(f"  {rule.id}  {rule.name:24s} [{rule.severity.value}] {rule.description}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        default_src = root / "src"
        paths = [default_src if default_src.is_dir() else root]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"simlint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else root / config.baseline
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"simlint: bad baseline {baseline_path}: {error}", file=sys.stderr)
            return 2

    try:
        run = lint_paths(
            paths,
            config,
            baseline=baseline,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
            root=root,
        )
    except (KeyError, ImportError) as error:
        print(f"simlint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = Baseline.write(baseline_path, run.findings, run.sources)
        print(f"simlint: wrote {count} finding(s) to {baseline_path}")
        return 0

    if args.format == "json":
        _report_json(run)
    else:
        _report_text(run)
    return 1 if run.findings else 0


if __name__ == "__main__":
    sys.exit(main())
