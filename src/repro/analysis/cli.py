"""``spider-repro lint``: the command-line face of simlint.

Exit codes follow lint-tool convention, pinned by tests:

- **0** — clean (possibly via suppressions or the baseline);
- **1** — actionable findings, or stale baseline entries under
  ``--strict-baseline``;
- **2** — usage or configuration error: unknown ``[tool.simlint]``
  keys, a nonexistent path, an explicit ``--baseline`` that does not
  exist, an unreadable baseline, an unknown rule selector, zero Python
  files collected, or ``--changed`` outside a working git checkout.

CI can gate on the code directly; ``--sarif`` additionally writes a
SARIF 2.1.0 log for code-scanning upload.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis.baseline import Baseline
from repro.analysis.cache import FactsCache
from repro.analysis.config import LintConfig, find_pyproject, load_config
from repro.analysis.core import RULES
from repro.analysis.engine import LintRun, iter_python_files, lint_paths, load_plugins
from repro.analysis.sarif import to_sarif


def _split_rules(values: List[str]) -> List[str]:
    out: List[str] = []
    for value in values:
        out.extend(token.strip() for token in value.split(",") if token.strip())
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spider-repro lint",
        description="AST-based invariant checks: determinism, trace taxonomy, shard protocol.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (default: src/ at the repo root)"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", help="report format"
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        default=None,
        help="also write a SARIF 2.1.0 log to PATH (for code-scanning upload)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline of grandfathered findings (default: [tool.simlint] baseline, if it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any configured baseline"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail (exit 1) when the baseline holds entries nothing matched",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="report findings only in files changed since the merge-base with REF "
        "(default: uncommitted changes); the whole tree is still analysed so "
        "project-scope rules see the full graph",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="facts-cache location (default: [tool.simlint] cache-path under the repo root)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the incremental facts cache"
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument("--list-rules", action="store_true", help="print registered rules and exit")
    return parser


def _git(root: Path, *args: str) -> str:
    proc = subprocess.run(
        ["git", "-C", str(root), *args], capture_output=True, text=True
    )
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"git {' '.join(args)} failed"
        raise RuntimeError(detail)
    return proc.stdout


def changed_files(root: Path, ref: str) -> Set[Path]:
    """Absolute paths of files changed relative to ``ref``.

    ``ref == "HEAD"`` means the working tree's uncommitted changes;
    any other ref diffs against ``merge-base(HEAD, ref)`` — the
    changed-on-this-branch set, unpolluted by commits that landed on
    ``ref`` since the branch point. Untracked files always count.
    """
    toplevel = Path(_git(root, "rev-parse", "--show-toplevel").strip())
    base = ref if ref == "HEAD" else _git(root, "merge-base", "HEAD", ref).strip()
    names = _git(root, "diff", "--name-only", base, "--").splitlines()
    names += _git(root, "ls-files", "--others", "--exclude-standard").splitlines()
    return {(toplevel / name).resolve() for name in names if name.strip()}


def _report_text(run: LintRun, cache_used: bool, stale_shown: int = 5) -> None:
    for finding in run.findings:
        print(finding.format())
    parts = [
        f"{len(run.findings)} finding{'s' if len(run.findings) != 1 else ''}"
        f" ({run.errors} errors, {run.warnings} warnings)",
        f"{run.files} files",
    ]
    if run.suppressed:
        parts.append(f"{len(run.suppressed)} suppressed")
    if run.baselined:
        parts.append(f"{len(run.baselined)} baselined")
    if run.stale_baseline:
        parts.append(f"{len(run.stale_baseline)} stale baseline entries")
    if cache_used:
        parts.append(f"cache {run.cache_hits} hits / {run.cache_misses} misses")
    print(f"simlint: {', '.join(parts)}")
    for rule, path, _key in run.stale_baseline[:stale_shown]:
        print(f"  stale baseline entry: {rule} in {path} no longer matches"
              " — re-run --write-baseline")


def _report_json(run: LintRun) -> None:
    print(
        json.dumps(
            {
                "findings": [f.to_dict() for f in run.findings],
                "summary": {
                    "files": run.files,
                    "findings": len(run.findings),
                    "errors": run.errors,
                    "warnings": run.warnings,
                    "suppressed": len(run.suppressed),
                    "baselined": len(run.baselined),
                    "cache_hits": run.cache_hits,
                    "cache_misses": run.cache_misses,
                    "stale_baseline": [
                        {"rule": rule, "path": path, "key": key}
                        for rule, path, key in run.stale_baseline
                    ],
                },
            },
            indent=2,
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    pyproject = find_pyproject(Path.cwd())
    try:
        config: LintConfig = load_config(pyproject)
    except ValueError as error:
        print(f"simlint: configuration error: {error}", file=sys.stderr)
        return 2
    root = config.root or Path.cwd()

    if args.list_rules:
        load_plugins(config.plugins)
        for rule in sorted(RULES.values(), key=lambda rule: rule.id):
            print(f"  {rule.id}  {rule.name:24s} [{rule.severity.value}] {rule.description}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        default_src = root / "src"
        paths = [default_src if default_src.is_dir() else root]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"simlint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if not iter_python_files(paths):
        print("simlint: no Python files to lint under the given paths", file=sys.stderr)
        return 2

    changed: Optional[Set[Path]] = None
    if args.changed is not None:
        try:
            changed = changed_files(root, args.changed)
        except (RuntimeError, OSError) as error:
            print(f"simlint: --changed needs a git checkout: {error}", file=sys.stderr)
            return 2

    baseline_path = Path(args.baseline) if args.baseline else root / config.baseline
    if args.baseline and not args.write_baseline and not baseline_path.is_file():
        print(f"simlint: baseline {baseline_path} does not exist", file=sys.stderr)
        return 2
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as error:
            print(f"simlint: bad baseline {baseline_path}: {error}", file=sys.stderr)
            return 2

    cache: Optional[FactsCache] = None
    if not args.no_cache:
        cache_path = Path(args.cache) if args.cache else root / config.cache_path
        cache = FactsCache(cache_path)

    try:
        run = lint_paths(
            paths,
            config,
            baseline=baseline,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
            root=root,
            cache=cache,
        )
    except (KeyError, ImportError) as error:
        print(f"simlint: {error}", file=sys.stderr)
        return 2

    if changed is not None:
        run.findings = [
            f for f in run.findings if (root / f.path).resolve() in changed
        ]

    if args.write_baseline:
        count = Baseline.write(baseline_path, run.findings, run.sources)
        print(f"simlint: wrote {count} finding(s) to {baseline_path}")
        return 0

    if args.sarif:
        sarif_path = Path(args.sarif)
        sarif_path.parent.mkdir(parents=True, exist_ok=True)
        sarif_path.write_text(json.dumps(to_sarif(run), indent=2), encoding="utf-8")

    if args.format == "sarif":
        print(json.dumps(to_sarif(run), indent=2))
    elif args.format == "json":
        _report_json(run)
    else:
        _report_text(run, cache_used=cache is not None)

    if run.findings:
        return 1
    if args.strict_baseline and run.stale_baseline:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
