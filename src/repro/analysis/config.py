"""simlint configuration: defaults plus the ``[tool.simlint]`` table.

Policy lives in configuration, not in scattered pragmas: which packages
count as *sim scope* (where wall-clock reads are banned), which harness
modules are allowed to read the wall clock anyway, where the trace
taxonomy and experiment registry live, and which plugin modules to
import for extra rules. The CLI loads this from the repository's
``pyproject.toml``; tests construct :class:`LintConfig` directly.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

#: Packages whose code runs *inside* simulated time. Wall-clock reads
#: here would couple results to the host machine.
DEFAULT_SIM_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.phy",
    "repro.mac",
    "repro.net",
    "repro.core",
    "repro.model",
    "repro.world",
    "repro.drivers",
    "repro.experiments",
    "repro.scenario",
    "repro.usability",
    "repro.metrics",
)

#: Packages on the simulator hot path: every event dispatched runs code
#: here, so observability must cost nothing when disabled (SL009).
DEFAULT_HOTPATH_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.phy",
    "repro.mac",
    "repro.net",
)

#: Sim hot entry points (SL011): globs over fully qualified function
#: names. Every function transitively reachable from one of these runs
#: inside dispatched simulated time, so nondeterminism sources —
#: wall clocks, the global RNG, env reads — are banned along the whole
#: reachable subgraph, not just in the entry file.
DEFAULT_HOT_ENTRYPOINTS: Tuple[str, ...] = (
    "repro.sim.engine.Simulator.step",
    "repro.sim.engine.Simulator.run",
    "repro.phy.radio.Medium.broadcast",
    "repro.drivers.*.on_*",
)


@dataclass
class LintConfig:
    """Resolved simlint configuration for one run."""

    sim_scope: Tuple[str, ...] = DEFAULT_SIM_SCOPE
    #: Dotted-module globs exempt from SL002 (harness code that *measures*
    #: wall time rather than simulating: the CLI runner, worker pools).
    wallclock_allow: Tuple[str, ...] = ()
    #: Module holding the ``layer.event`` taxonomy constants (SL004).
    taxonomy_module: str = "repro.obs.trace"
    #: Package whose modules must follow the shard protocol (SL005) and
    #: be registered (SL006).
    experiments_package: str = "repro.experiments"
    #: Module defining the experiment ``REGISTRY`` dict (SL006).
    registry_module: str = "repro.experiments.runner"
    #: Package allowed to construct world primitives directly (SL007).
    scenario_package: str = "repro.scenario"
    #: Packages where trace/span emission must sit behind an
    #: ``is not None`` guard (SL009).
    hotpath_packages: Tuple[str, ...] = DEFAULT_HOTPATH_PACKAGES
    #: The one package allowed to touch process/socket primitives
    #: (SL010); everything else goes through the ExecutionBackend ABC.
    backend_package: str = "repro.exec.backend"
    #: Dotted-module globs exempt from SL010 for non-placement reasons
    #: (e.g. shelling out to ``git`` for provenance).
    backend_allow: Tuple[str, ...] = ()
    #: Architecture layers, lowest first (SL012). Empty disables the rule.
    layers: Tuple[str, ...] = ()
    #: Sanctioned cross-layer interfaces: ``"src-prefix -> dst-prefix"``.
    layer_allow: Tuple[str, ...] = ()
    #: Sim hot entry points for SL011 (globs over qualified names).
    hot_entrypoints: Tuple[str, ...] = DEFAULT_HOT_ENTRYPOINTS
    #: Facts-cache path, relative to the config root.
    cache_path: str = ".spider-cache/simlint-cache.json"
    #: Default baseline path, relative to the config file's directory.
    baseline: str = "simlint-baseline.json"
    #: Plugin modules imported for their rule-registration side effect.
    plugins: Tuple[str, ...] = ()
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    #: Directory the config was loaded from (anchors relative paths).
    root: Optional[Path] = None

    def wallclock_allowed(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return any(fnmatch.fnmatchcase(module, pattern) for pattern in self.wallclock_allow)

    def in_sim_scope(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in self.sim_scope
        )

    def fingerprint(self) -> str:
        """Stable text of every policy knob; part of the facts-cache key
        (``root`` is where the config lives, not what it says)."""
        values = {
            name: getattr(self, name)
            for name in sorted(self.__dataclass_fields__)
            if name != "root"
        }
        return repr(values)


def _tuple(raw: object, what: str) -> Tuple[str, ...]:
    if not isinstance(raw, (list, tuple)) or not all(isinstance(item, str) for item in raw):
        raise ValueError(f"[tool.simlint] {what} must be a list of strings")
    return tuple(raw)


def _string(raw: object, what: str) -> str:
    if not isinstance(raw, str):
        raise ValueError(f"[tool.simlint] {what} must be a string")
    return raw


#: TOML key -> (LintConfig attribute, coercion). The loader rejects any
#: key outside this table: a typo'd key would otherwise silently fall
#: back to the default and weaken the policy it meant to tighten.
_KEYS = {
    "sim-scope": ("sim_scope", _tuple),
    "wallclock-allow": ("wallclock_allow", _tuple),
    "taxonomy-module": ("taxonomy_module", _string),
    "experiments-package": ("experiments_package", _string),
    "registry-module": ("registry_module", _string),
    "scenario-package": ("scenario_package", _string),
    "hotpath-packages": ("hotpath_packages", _tuple),
    "backend-package": ("backend_package", _string),
    "backend-allow": ("backend_allow", _tuple),
    "layers": ("layers", _tuple),
    "layer-allow": ("layer_allow", _tuple),
    "hot-entrypoints": ("hot_entrypoints", _tuple),
    "cache-path": ("cache_path", _string),
    "baseline": ("baseline", _string),
    "plugins": ("plugins", _tuple),
    "select": ("select", _tuple),
    "ignore": ("ignore", _tuple),
}


def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Build a :class:`LintConfig` from ``pyproject.toml`` (if present)."""
    config = LintConfig()
    if pyproject is None or not pyproject.is_file():
        return config
    try:
        import tomllib
    except ImportError:  # Python 3.10: stdlib tomllib landed in 3.11
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return config
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("simlint", {})
    config.root = pyproject.parent
    unknown = sorted(key for key in table if key not in _KEYS)
    if unknown:
        raise ValueError(
            f"unknown [tool.simlint] key(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(_KEYS))})"
        )
    for key, value in table.items():
        attribute, coerce = _KEYS[key]
        setattr(config, attribute, coerce(value, key))
    return config


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
