"""simlint configuration: defaults plus the ``[tool.simlint]`` table.

Policy lives in configuration, not in scattered pragmas: which packages
count as *sim scope* (where wall-clock reads are banned), which harness
modules are allowed to read the wall clock anyway, where the trace
taxonomy and experiment registry live, and which plugin modules to
import for extra rules. The CLI loads this from the repository's
``pyproject.toml``; tests construct :class:`LintConfig` directly.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

#: Packages whose code runs *inside* simulated time. Wall-clock reads
#: here would couple results to the host machine.
DEFAULT_SIM_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.phy",
    "repro.mac",
    "repro.net",
    "repro.core",
    "repro.model",
    "repro.world",
    "repro.drivers",
    "repro.experiments",
    "repro.scenario",
    "repro.usability",
    "repro.metrics",
)

#: Packages on the simulator hot path: every event dispatched runs code
#: here, so observability must cost nothing when disabled (SL009).
DEFAULT_HOTPATH_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.phy",
    "repro.mac",
    "repro.net",
)


@dataclass
class LintConfig:
    """Resolved simlint configuration for one run."""

    sim_scope: Tuple[str, ...] = DEFAULT_SIM_SCOPE
    #: Dotted-module globs exempt from SL002 (harness code that *measures*
    #: wall time rather than simulating: the CLI runner, worker pools).
    wallclock_allow: Tuple[str, ...] = ()
    #: Module holding the ``layer.event`` taxonomy constants (SL004).
    taxonomy_module: str = "repro.obs.trace"
    #: Package whose modules must follow the shard protocol (SL005) and
    #: be registered (SL006).
    experiments_package: str = "repro.experiments"
    #: Module defining the experiment ``REGISTRY`` dict (SL006).
    registry_module: str = "repro.experiments.runner"
    #: Package allowed to construct world primitives directly (SL007).
    scenario_package: str = "repro.scenario"
    #: Packages where trace/span emission must sit behind an
    #: ``is not None`` guard (SL009).
    hotpath_packages: Tuple[str, ...] = DEFAULT_HOTPATH_PACKAGES
    #: The one package allowed to touch process/socket primitives
    #: (SL010); everything else goes through the ExecutionBackend ABC.
    backend_package: str = "repro.exec.backend"
    #: Dotted-module globs exempt from SL010 for non-placement reasons
    #: (e.g. shelling out to ``git`` for provenance).
    backend_allow: Tuple[str, ...] = ()
    #: Default baseline path, relative to the config file's directory.
    baseline: str = "simlint-baseline.json"
    #: Plugin modules imported for their rule-registration side effect.
    plugins: Tuple[str, ...] = ()
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    #: Directory the config was loaded from (anchors relative paths).
    root: Optional[Path] = None

    def wallclock_allowed(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return any(fnmatch.fnmatchcase(module, pattern) for pattern in self.wallclock_allow)

    def in_sim_scope(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in self.sim_scope
        )


def _tuple(raw: object, what: str) -> Tuple[str, ...]:
    if not isinstance(raw, (list, tuple)) or not all(isinstance(item, str) for item in raw):
        raise ValueError(f"[tool.simlint] {what} must be a list of strings")
    return tuple(raw)


def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Build a :class:`LintConfig` from ``pyproject.toml`` (if present)."""
    config = LintConfig()
    if pyproject is None or not pyproject.is_file():
        return config
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return config
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("simlint", {})
    config.root = pyproject.parent
    if "sim-scope" in table:
        config.sim_scope = _tuple(table["sim-scope"], "sim-scope")
    if "wallclock-allow" in table:
        config.wallclock_allow = _tuple(table["wallclock-allow"], "wallclock-allow")
    if "taxonomy-module" in table:
        config.taxonomy_module = str(table["taxonomy-module"])
    if "experiments-package" in table:
        config.experiments_package = str(table["experiments-package"])
    if "registry-module" in table:
        config.registry_module = str(table["registry-module"])
    if "scenario-package" in table:
        config.scenario_package = str(table["scenario-package"])
    if "hotpath-packages" in table:
        config.hotpath_packages = _tuple(table["hotpath-packages"], "hotpath-packages")
    if "backend-package" in table:
        config.backend_package = str(table["backend-package"])
    if "backend-allow" in table:
        config.backend_allow = _tuple(table["backend-allow"], "backend-allow")
    if "baseline" in table:
        config.baseline = str(table["baseline"])
    if "plugins" in table:
        config.plugins = _tuple(table["plugins"], "plugins")
    if "select" in table:
        config.select = _tuple(table["select"], "select")
    if "ignore" in table:
        config.ignore = _tuple(table["ignore"], "ignore")
    return config


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
