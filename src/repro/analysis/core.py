"""simlint rule framework: findings, rules, the registry, suppressions.

The determinism and observability guarantees of this reproduction —
byte-identical parallel vs. sequential runs, a trace taxonomy that
downstream tooling can rely on, a shard protocol whose entry points
survive ``pickle`` — are *invariants of the source*, not of any one
test run. simlint makes them machine-checked: each invariant is a
:class:`Rule` that walks a module's AST and yields :class:`Finding`
records.

Rules are pluggable: subclass :class:`Rule`, decorate with
:func:`register_rule`, and the engine picks it up. Third-party rules
load the same way via ``[tool.simlint] plugins`` (modules imported for
their registration side effect).

Suppressions are line-scoped comments::

    frob(random.random())  # simlint: disable=SL001

or file-scoped (anywhere in the file, typically the top)::

    # simlint: disable-file=SL003

``disable=all`` silences every rule for that line/file. Suppressed
findings are counted but never fail the run; prefer fixing or the
committed baseline (:mod:`repro.analysis.baseline`) for anything
longer-lived than a deliberate one-off.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from repro.analysis.config import LintConfig

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.graph import ModuleFacts, ProjectGraph


class Severity(enum.Enum):
    """How bad a finding is; only the value's *name* leaves this module."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True, order=True)
class RelatedLocation:
    """A secondary source location attached to a finding.

    Interprocedural rules use these to carry evidence that lives away
    from the primary location — SL011 attaches one per hop of the call
    chain from the hot entry point to the offending call. They render
    as indented continuation lines in the text report and as SARIF
    ``relatedLocations``.
    """

    path: str
    line: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "message": self.message}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    #: Supporting locations (e.g. a call chain); excluded from ordering
    #: and from baseline keys so chains can be re-rendered freely.
    related: Tuple[RelatedLocation, ...] = field(default=(), compare=False)

    def format(self) -> str:
        head = f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"
        if not self.related:
            return head
        tail = "".join(
            f"\n    {loc.path}:{loc.line}: {loc.message}" for loc in self.related
        )
        return head + tail

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.related:
            data["related"] = [loc.to_dict() for loc in self.related]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        related = tuple(
            RelatedLocation(str(r["path"]), int(r["line"]), str(r["message"]))  # type: ignore[index]
            for r in data.get("related", ())  # type: ignore[union-attr]
        )
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            message=str(data["message"]),
            related=related,
        )


_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\- ]+|all)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*simlint:\s*disable-file=([A-Za-z0-9_,\- ]+|all)")


def _parse_rule_list(raw: str) -> Set[str]:
    return {token.strip().upper() for token in raw.split(",") if token.strip()}


@dataclass
class ModuleUnit:
    """One parsed source file plus everything rules need to inspect it.

    ``module`` is the dotted import path when the file sits inside a
    package (walked up through ``__init__.py`` parents, then through a
    ``src/`` root); standalone scripts get ``None`` and are exempt from
    the package-scoped rules.
    """

    path: str
    source: str
    module: Optional[str] = None
    tree: Optional[ast.Module] = None
    parse_error: Optional[SyntaxError] = None
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    file_suppressions: Set[str] = field(default_factory=set)
    #: True once a parse was attempted (lazy units defer it until a
    #: rule actually needs the tree — see :meth:`ensure_tree`).
    parsed: bool = False
    #: Pre-extracted cross-module facts (set by the engine; from the
    #: facts cache on a warm run, from the AST otherwise).
    facts: Optional["ModuleFacts"] = None

    @classmethod
    def from_source(
        cls,
        path: str,
        source: str,
        module: Optional[str] = None,
        parse: bool = True,
    ) -> "ModuleUnit":
        unit = cls(path=path, source=source, module=module)
        if parse:
            unit.ensure_tree()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                unit.line_suppressions[lineno] = _parse_rule_list(match.group(1))
            match = _SUPPRESS_FILE_RE.search(text)
            if match:
                unit.file_suppressions |= _parse_rule_list(match.group(1))
        return unit

    def ensure_tree(self) -> Optional[ast.Module]:
        """Parse on first use; cache-hit units skip the parse until then."""
        if not self.parsed:
            self.parsed = True
            try:
                self.tree = ast.parse(self.source, filename=self.path)
            except SyntaxError as error:
                self.parse_error = error
        return self.tree

    @property
    def is_package_init(self) -> bool:
        return self.path.replace("\\", "/").endswith("__init__.py")

    def is_suppressed(self, finding: Finding) -> bool:
        rule = finding.rule.upper()
        if "ALL" in self.file_suppressions or rule in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(finding.line)
        return rules is not None and ("ALL" in rules or rule in rules)

    def in_package(self, prefixes: Iterable[str]) -> bool:
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".") for prefix in prefixes
        )


@dataclass
class ProjectContext:
    """Cross-module facts shared by every rule invocation.

    Built once per lint run; project-scope rules (SL006) walk ``units``
    directly for anything not precomputed here.
    """

    config: LintConfig
    units: List[ModuleUnit] = field(default_factory=list)
    #: taxonomy constant name -> event-kind string (from the taxonomy module)
    taxonomy: Dict[str, str] = field(default_factory=dict)
    _graph: Optional["ProjectGraph"] = field(default=None, repr=False)

    def unit_for_module(self, module: str) -> Optional[ModuleUnit]:
        for unit in self.units:
            if unit.module == module:
                return unit
        return None

    @property
    def graph(self) -> "ProjectGraph":
        """The project-wide import/symbol/call graph, built on first use.

        Units carrying pre-extracted facts (warm cache) contribute them
        directly; everything else is parsed and extracted here.
        """
        if self._graph is None:
            from repro.analysis.graph import build_graph

            self._graph = build_graph(self.units)
        return self._graph


class Rule:
    """Base class for simlint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` is ``"module"`` (called once per file) or ``"project"``
    (called once per run with the full :class:`ProjectContext`).
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    scope: str = "module"
    #: Bumped when the rule's semantics change; part of the facts-cache
    #: key, so stale cached findings can never survive a rule upgrade.
    version: int = 1

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        unit_path: str,
        node_or_line,
        message: str,
        col: Optional[int] = None,
        related: Iterable[RelatedLocation] = (),
    ) -> Finding:
        if isinstance(node_or_line, int):
            line, column = node_or_line, 0 if col is None else col
        else:
            line = getattr(node_or_line, "lineno", 1)
            column = getattr(node_or_line, "col_offset", 0) if col is None else col
        return Finding(
            path=unit_path,
            line=line,
            col=column,
            rule=self.id,
            severity=self.severity.value,
            message=message,
            related=tuple(related),
        )


#: rule id (upper-case) -> rule instance; insertion order is report order.
RULES: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    key = rule.id.upper()
    if key in RULES and type(RULES[key]) is not cls:
        raise ValueError(
            f"duplicate rule id {rule.id!r} ({cls.__name__} vs {type(RULES[key]).__name__})"
        )
    RULES[key] = rule
    return cls


def resolve_rule_ids(tokens: Iterable[str]) -> Set[str]:
    """Map user-supplied selectors (ids or slugs) to registered rule ids."""
    by_name = {rule.name.lower(): key for key, rule in RULES.items()}
    resolved: Set[str] = set()
    for token in tokens:
        token = token.strip()
        if not token:
            continue
        key = token.upper()
        if key in RULES:
            resolved.add(key)
        elif token.lower() in by_name:
            resolved.add(by_name[token.lower()])
        else:
            raise KeyError(f"unknown rule: {token!r} (known: {', '.join(sorted(RULES))})")
    return resolved
