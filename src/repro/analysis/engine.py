"""The simlint engine: walk files, run rules, apply suppressions/baseline.

Pipeline per run:

1. collect ``*.py`` files under the requested paths (skipping hidden
   directories and caches) into :class:`~repro.analysis.core.ModuleUnit`
   records — *lazily*: a unit is only parsed when something needs its
   AST;
2. with a :class:`~repro.analysis.cache.FactsCache`, look up each
   unit's cross-module facts and module-scope findings by content
   digest; warm units are never re-parsed;
3. build the :class:`~repro.analysis.core.ProjectContext` (trace
   taxonomy — from cached facts when the taxonomy module is warm);
4. run every module-scope rule on each cold unit (cache misses run
   *all* module rules so the cached result is selection-independent),
   then filter to the active selection; project-scope rules always
   re-run over the full (warm) project graph;
5. route each finding: inline-suppressed → counted, baselined →
   counted (and its baseline entry consumed), otherwise actionable.

Unparseable files are reported through the same pipeline as rule
``SL000`` so a syntax error cannot silently shrink coverage.
"""

from __future__ import annotations

import importlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import repro.analysis.rules  # noqa: F401  (registers the built-in rules)
from repro.analysis.baseline import Baseline
from repro.analysis.cache import FactsCache, content_digest, ruleset_digest
from repro.analysis.config import LintConfig
from repro.analysis.core import (
    RULES,
    Finding,
    ModuleUnit,
    ProjectContext,
    Rule,
    Severity,
    register_rule,
    resolve_rule_ids,
)
from repro.analysis.graph import extract_facts
from repro.analysis.rules.taxonomy import extract_taxonomy

_TAXONOMY_CONST = re.compile(r"^[A-Z][A-Z0-9_]*$")

_SKIP_DIRS = {"__pycache__", ".git", ".spider-cache", ".venv", "node_modules"}


@register_rule
class ParseError(Rule):
    """SL000: the file could not be parsed — no other rule saw it."""

    id = "SL000"
    name = "parse-error"
    severity = Severity.ERROR
    description = "file does not parse; other rules were skipped"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterable[Finding]:
        error = unit.parse_error
        if error is not None:
            yield self.finding(
                unit.path, error.lineno or 1, f"syntax error: {error.msg}", col=error.offset or 0
            )


@dataclass
class LintRun:
    """Everything a reporter needs about one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    files: int = 0
    #: facts-cache statistics for this run (0/0 when caching is off).
    cache_hits: int = 0
    cache_misses: int = 0
    #: path (as reported in findings) -> source lines, for baseline keys.
    sources: Dict[str, Sequence[str]] = field(default_factory=dict)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == Severity.ERROR.value)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity == Severity.WARNING.value)


def module_name_for(path: Path) -> Optional[str]:
    """Dotted import path, walked up through ``__init__.py`` parents."""
    path = path.resolve()
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    in_package = False
    while (directory / "__init__.py").is_file():
        in_package = True
        parts.insert(0, directory.name)
        directory = directory.parent
    if not in_package:
        return None  # standalone script: exempt from package-scoped rules
    return ".".join(parts) if parts else None


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS or part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def _display_path(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return str(path)


def load_plugins(names: Iterable[str]) -> None:
    """Import plugin modules for their rule-registration side effect."""
    for name in names:
        importlib.import_module(name)


def build_units(
    paths: Iterable[Path], root: Optional[Path] = None, parse: bool = True
) -> List[ModuleUnit]:
    units = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        units.append(
            ModuleUnit.from_source(
                _display_path(file, root), source, module=module_name_for(file), parse=parse
            )
        )
    return units


def build_project(units: List[ModuleUnit], config: LintConfig) -> ProjectContext:
    project = ProjectContext(config=config, units=units)
    taxonomy_unit = project.unit_for_module(config.taxonomy_module)
    if taxonomy_unit is None:
        return project
    if not taxonomy_unit.parsed and taxonomy_unit.facts is not None:
        # Warm cache: the taxonomy is derivable from facts, no re-parse.
        project.taxonomy = {
            name: value
            for name, (value, _line) in taxonomy_unit.facts.constants.items()
            if _TAXONOMY_CONST.match(name)
        }
    elif taxonomy_unit.ensure_tree() is not None:
        assert taxonomy_unit.tree is not None
        project.taxonomy = extract_taxonomy(taxonomy_unit.tree)
    return project


def active_rules(
    select: Sequence[str] = (), ignore: Sequence[str] = ()
) -> Dict[str, Rule]:
    chosen = resolve_rule_ids(select) if select else set(RULES)
    chosen -= resolve_rule_ids(ignore)
    chosen.add("SL000")  # parse errors are never ignorable
    return {key: rule for key, rule in RULES.items() if key in chosen}


def lint_units(
    units: List[ModuleUnit],
    config: LintConfig,
    baseline: Optional[Baseline] = None,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    cache: Optional[FactsCache] = None,
) -> LintRun:
    load_plugins(config.plugins)
    rules = active_rules(select or config.select, ignore or config.ignore)
    run = LintRun(files=len(units))
    for unit in units:
        run.sources[unit.path] = unit.source.splitlines()

    digests: Dict[str, str] = {}
    ruleset = ""
    cached: Dict[str, List[Finding]] = {}
    if cache is not None:
        digests = {unit.path: content_digest(unit.source) for unit in units}
        taxonomy_unit = next(
            (u for u in units if u.module == config.taxonomy_module), None
        )
        taxonomy_digest = digests[taxonomy_unit.path] if taxonomy_unit else ""
        ruleset = ruleset_digest(config.fingerprint(), taxonomy_digest)
        for unit in units:
            facts = cache.facts_for(unit.path, digests[unit.path])
            if facts is not None:
                unit.facts = facts
            findings = cache.findings_for(unit.path, digests[unit.path], ruleset)
            if findings is not None:
                cached[unit.path] = findings
                cache.hits += 1
            else:
                cache.misses += 1

    project = build_project(units, config)

    raw: List[Finding] = []
    module_rules = [rule for rule in RULES.values() if rule.scope == "module"]
    for unit in units:
        if unit.path in cached:
            unit_findings = cached[unit.path]
        else:
            unit.ensure_tree()
            unit_findings = []
            # Cold units run *every* module rule (not just the active
            # selection) so the cached result is valid under any later
            # --select/--ignore combination.
            for rule in module_rules:
                if unit.tree is None and rule.id != "SL000":
                    continue
                unit_findings.extend(rule.check(unit, project))
            if cache is not None:
                if unit.facts is None and unit.tree is not None:
                    unit.facts = extract_facts(unit)
                cache.store(
                    unit.path, digests[unit.path], ruleset, unit.facts, unit_findings
                )
        raw.extend(f for f in unit_findings if f.rule.upper() in rules)
    for rule in rules.values():
        if rule.scope == "project":
            raw.extend(rule.check_project(project))

    units_by_path = {unit.path: unit for unit in units}
    for finding in sorted(raw):
        unit = units_by_path.get(finding.path)
        if unit is not None and unit.is_suppressed(finding):
            run.suppressed.append(finding)
        elif baseline is not None and baseline.absorbs(
            finding, run.sources.get(finding.path, ())
        ):
            run.baselined.append(finding)
        else:
            run.findings.append(finding)
    if baseline is not None:
        run.stale_baseline = baseline.stale_entries()
    if cache is not None:
        run.cache_hits = cache.hits
        run.cache_misses = cache.misses
        cache.prune([unit.path for unit in units])
        cache.save()
    return run


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig,
    baseline: Optional[Baseline] = None,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    root: Optional[Path] = None,
    cache: Optional[FactsCache] = None,
) -> LintRun:
    units = build_units(
        paths, root=root if root is not None else config.root, parse=cache is None
    )
    return lint_units(
        units, config, baseline=baseline, select=select, ignore=ignore, cache=cache
    )
