"""Project-wide analysis graph: imports, symbols, and a conservative call graph.

The per-file rules (SL001–SL010) see one AST at a time, so an invariant
that spans modules — a wall-clock read two call-hops below a sim hot
path, a back-edge import, a taxonomy constant nobody emits — is
invisible to them. This module gives project-scope rules the
cross-module view in two layers:

**Facts** (:class:`ModuleFacts`) are everything the project rules need
from one file, extracted in a single AST walk: resolved import aliases,
import sites, function/method definitions with their call sites, class
bases, module-level constants, and ``*.emit(...)`` sites. Facts are
plain data (JSON round-trippable), which is what makes the incremental
cache (:mod:`repro.analysis.cache`) possible — a warm run reuses the
facts of every unchanged file without re-parsing it.

**The graph** (:class:`ProjectGraph`) joins all facts: a module-level
import graph (raw targets resolved to project modules), a qualified
symbol table, and a call graph in which each call site either resolves
to a project function/method node or to a fully dotted *external* name
(``time.time``, ``os.urandom``). Resolution is a deliberately
conservative approximation — it follows bare names, imported names,
``self.method`` (through project-local base classes), local
``Cls.method``, and module-level lambda assignments, and leaves
anything dynamic (callbacks, duck-typed receivers, ``getattr``)
unresolved. Rules built on it therefore under-approximate reachability:
they may miss a path, but a path they report exists in the source.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.core import ModuleUnit

#: Bumped whenever the shape or meaning of extracted facts changes;
#: part of the facts-cache key.
SCHEMA_VERSION = 1

#: Call sites whose *arguments* cross a process boundary (SL014). Only
#: these calls get their argument expressions recorded in the facts —
#: capturing arguments for every call would bloat the cache for one
#: rule's benefit.
PAYLOAD_CALLEE_SUFFIXES = ("submit", "Shard", "ShardRequest")

#: Receiver names whose ``.emit(...)`` is treated as a trace-bus
#: emission (mirrors the SL004 idiom; ``self`` covers the bus emitting
#: its own bookkeeping events inside the taxonomy module).
EMIT_RECEIVERS = {"trace", "bus", "_trace", "_bus", "self"}


@dataclass(frozen=True)
class CallSite:
    """One call expression, recorded by its raw dotted callee text."""

    callee: str
    line: int
    col: int
    #: Dotted names referenced anywhere in the arguments (payload-
    #: boundary calls only; see :data:`PAYLOAD_CALLEE_SUFFIXES`).
    arg_refs: Tuple[str, ...] = ()
    #: Lines of ``lambda`` expressions inside the arguments (ditto).
    lambda_lines: Tuple[int, ...] = ()


@dataclass(frozen=True)
class EmitSite:
    """One ``receiver.emit(kind, ...)`` call."""

    line: int
    col: int
    #: Raw dotted reference of the kind argument (``tr.DHCP_SEND``),
    #: or None when the kind is a string literal / unresolvable.
    ref: Optional[str] = None
    #: Literal kind string, when the argument is a constant.
    literal: Optional[str] = None


@dataclass
class FunctionInfo:
    """A function or method, flattened: calls made inside nested defs
    and lambdas are attributed to the enclosing function (if the outer
    runs, the inner may run — the conservative direction for taint)."""

    qualname: str  # module-relative: "func" or "Cls.func"
    line: int
    cls: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    #: Names bound to nested defs/classes/lambdas inside this function
    #: — the things that are *not* import-addressable (SL014).
    local_callables: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ImportSite:
    """One imported dotted target (per-alias for ``from`` imports)."""

    target: str
    line: int
    toplevel: bool


@dataclass
class ClassInfo:
    line: int
    bases: Tuple[str, ...] = ()  # raw dotted base-class texts
    methods: Dict[str, int] = field(default_factory=dict)  # name -> line


@dataclass
class ModuleFacts:
    """Everything the project rules need from one source file."""

    path: str
    module: Optional[str]
    is_package: bool = False
    aliases: Dict[str, str] = field(default_factory=dict)
    imports: List[ImportSite] = field(default_factory=list)
    functions: List[FunctionInfo] = field(default_factory=list)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    module_defs: Tuple[str, ...] = ()
    #: module-level ``name = lambda ...`` bindings: name -> line
    lambda_assigns: Dict[str, int] = field(default_factory=dict)
    #: module-level ``UPPER_CASE = "string"`` constants: name -> (value, line)
    constants: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    emits: List[EmitSite] = field(default_factory=list)

    # -- JSON round trip (for the facts cache) -------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "aliases": self.aliases,
            "imports": [[s.target, s.line, s.toplevel] for s in self.imports],
            "functions": [
                {
                    "qualname": f.qualname,
                    "line": f.line,
                    "cls": f.cls,
                    "calls": [
                        [c.callee, c.line, c.col, list(c.arg_refs), list(c.lambda_lines)]
                        for c in f.calls
                    ],
                    "local_callables": list(f.local_callables),
                }
                for f in self.functions
            ],
            "classes": {
                name: {"line": c.line, "bases": list(c.bases), "methods": c.methods}
                for name, c in self.classes.items()
            },
            "module_defs": list(self.module_defs),
            "lambda_assigns": self.lambda_assigns,
            "constants": {name: [value, line] for name, (value, line) in self.constants.items()},
            "emits": [[e.line, e.col, e.ref, e.literal] for e in self.emits],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleFacts":
        return cls(
            path=data["path"],
            module=data["module"],
            is_package=bool(data.get("is_package", False)),
            aliases=dict(data.get("aliases", {})),
            imports=[ImportSite(t, line, top) for t, line, top in data.get("imports", [])],
            functions=[
                FunctionInfo(
                    qualname=f["qualname"],
                    line=f["line"],
                    cls=f.get("cls"),
                    calls=[
                        CallSite(callee, line, col, tuple(refs), tuple(lams))
                        for callee, line, col, refs, lams in f.get("calls", [])
                    ],
                    local_callables=tuple(f.get("local_callables", ())),
                )
                for f in data.get("functions", [])
            ],
            classes={
                name: ClassInfo(
                    line=c["line"],
                    bases=tuple(c.get("bases", ())),
                    methods=dict(c.get("methods", {})),
                )
                for name, c in data.get("classes", {}).items()
            },
            module_defs=tuple(data.get("module_defs", ())),
            lambda_assigns=dict(data.get("lambda_assigns", {})),
            constants={
                name: (value, line)
                for name, (value, line) in data.get("constants", {}).items()
            },
            emits=[
                EmitSite(line=line, col=col, ref=ref, literal=lit)
                for line, col, ref, lit in data.get("emits", [])
            ],
        )


# -- extraction -------------------------------------------------------------


def _arg_payload(node: ast.Call) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
    """Dotted-name references and lambda lines inside a call's arguments."""
    refs: List[str] = []
    lambdas: List[int] = []
    for arg in [*node.args, *[kw.value for kw in node.keywords]]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Lambda):
                lambdas.append(sub.lineno)
            elif isinstance(sub, (ast.Name, ast.Attribute)):
                dotted = dotted_name(sub)
                if dotted is not None:
                    refs.append(dotted)
    # An Attribute chain walks into its own Name child; dedupe while
    # keeping first-seen order so "a.b" survives, bare "a" goes.
    seen: Set[str] = set()
    out: List[str] = []
    for ref in refs:
        if ref not in seen and not any(other.startswith(ref + ".") for other in refs):
            seen.add(ref)
            out.append(ref)
    return tuple(out), tuple(lambdas)


def _emit_kinds(node: ast.Call) -> List[EmitSite]:
    """EmitSites for one ``*.emit(...)`` call (IfExp arms unwrapped)."""

    def sites(kind: ast.AST) -> List[EmitSite]:
        if isinstance(kind, ast.IfExp):
            return sites(kind.body) + sites(kind.orelse)
        if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
            return [EmitSite(line=kind.lineno, col=kind.col_offset, literal=kind.value)]
        ref = dotted_name(kind)
        return [EmitSite(line=kind.lineno, col=kind.col_offset, ref=ref)]

    if not node.args:
        return []
    return sites(node.args[0])


def _is_emit_call(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
        return False
    value = func.value
    if isinstance(value, ast.Name):
        return value.id in EMIT_RECEIVERS
    if isinstance(value, ast.Attribute):
        return value.attr in EMIT_RECEIVERS
    return False


class _FactsVisitor(ast.NodeVisitor):
    """One-pass extractor; see the module docstring for the data model."""

    def __init__(self, facts: ModuleFacts):
        self.facts = facts
        self._class_stack: List[str] = []
        self._func_stack: List[FunctionInfo] = []

    # -- structure ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_stack:
            # Class defined inside a function: not import-addressable.
            self._func_stack[0].local_callables += (node.name,)
            return  # don't descend: its methods can't be resolved anyway
        name = ".".join([*self._class_stack, node.name])
        bases = tuple(b for b in (dotted_name(base) for base in node.bases) if b is not None)
        info = ClassInfo(line=node.lineno, bases=bases)
        self.facts.classes[name] = info
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def _visit_func(self, node) -> None:
        if self._func_stack:
            # Nested def: record the binding, flatten the body into the
            # enclosing function's call list.
            self._func_stack[0].local_callables += (node.name,)
            for child in node.body:
                self.visit(child)
            return
        cls = ".".join(self._class_stack) if self._class_stack else None
        qualname = f"{cls}.{node.name}" if cls else node.name
        info = FunctionInfo(qualname=qualname, line=node.lineno, cls=cls)
        self.facts.functions.append(info)
        if cls:
            owner = self.facts.classes.get(cls)
            if owner is not None:
                owner.methods[node.name] = node.lineno
        else:
            self.facts.module_defs += (node.name,)
        self._func_stack.append(info)
        for child in node.body:
            self.visit(child)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Lambda bodies execute in their enclosing function's context.
        self.visit(node.body)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if self._func_stack:
                        self._func_stack[0].local_callables += (target.id,)
                    elif not self._class_stack:
                        self.facts.lambda_assigns[target.id] = node.lineno
                        # A module-level lambda is callable through the
                        # graph like a def (its body is its own node).
                        info = FunctionInfo(qualname=target.id, line=node.lineno)
                        self.facts.functions.append(info)
                        self._func_stack.append(info)
                        self.visit(node.value.body)
                        self._func_stack.pop()
                        return
        if (
            not self._func_stack
            and not self._class_stack
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.isupper():
                    self.facts.constants[target.id] = (node.value.value, node.lineno)
        self.generic_visit(node)

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        toplevel = not self._func_stack and not self._class_stack
        for alias in node.names:
            self.facts.imports.append(ImportSite(alias.name, node.lineno, toplevel))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        toplevel = not self._func_stack and not self._class_stack
        if node.level:
            from repro.analysis.astutil import resolve_relative

            base = resolve_relative(
                self.facts.module, node.level, node.module, self.facts.is_package
            )
            if base is None:
                return
        else:
            base = node.module
            if base is None:
                return
        for alias in node.names:
            if alias.name == "*":
                self.facts.imports.append(ImportSite(base, node.lineno, toplevel))
            else:
                self.facts.imports.append(
                    ImportSite(f"{base}.{alias.name}", node.lineno, toplevel)
                )

    # -- calls ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if _is_emit_call(node):
            self.facts.emits.extend(_emit_kinds(node))
        callee = dotted_name(node.func)
        if callee is not None and self._func_stack:
            last = callee.rsplit(".", 1)[-1]
            if last in PAYLOAD_CALLEE_SUFFIXES:
                refs, lambdas = _arg_payload(node)
            else:
                refs, lambdas = (), ()
            self._func_stack[0].calls.append(
                CallSite(callee, node.lineno, node.col_offset, refs, lambdas)
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``os.environ[...]`` is an env read without a call; record it
        # as a pseudo call-site so the taint rule sees it.
        dotted = dotted_name(node.value)
        if dotted is not None and dotted.endswith("environ") and self._func_stack:
            self._func_stack[0].calls.append(
                CallSite(dotted, node.lineno, node.col_offset)
            )
        self.generic_visit(node)


def extract_facts(unit: ModuleUnit) -> Optional[ModuleFacts]:
    """Facts for one parsed unit (None when the file does not parse)."""
    tree = unit.ensure_tree()
    if tree is None:
        return None
    facts = ModuleFacts(
        path=unit.path, module=unit.module, is_package=unit.is_package_init
    )
    facts.aliases = ImportMap(
        tree, module_name=unit.module, is_package=unit.is_package_init
    ).aliases
    _FactsVisitor(facts).visit(tree)
    return facts


# -- the graph --------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedImport:
    """One import edge resolved to a project module."""

    source: str
    target: str  # project module
    raw: str  # the dotted text as written
    line: int
    toplevel: bool


@dataclass
class ResolvedCall:
    site: CallSite
    #: Fully qualified project function node, when resolution succeeded.
    target: Optional[str] = None
    #: Fully dotted external name (``time.time``) when the callee
    #: resolves outside the project.
    external: Optional[str] = None


@dataclass
class FunctionNode:
    qualname: str  # fully qualified: "module.Cls.func"
    module: str
    path: str
    line: int
    cls: Optional[str]
    calls: List[ResolvedCall] = field(default_factory=list)
    local_callables: Tuple[str, ...] = ()


class ProjectGraph:
    """Joined view over every module's facts; see the module docstring."""

    def __init__(self, all_facts: Sequence[ModuleFacts]):
        #: module name -> facts (standalone scripts, which have no
        #: importable name, stay out of the graph).
        self.modules: Dict[str, ModuleFacts] = {
            f.module: f for f in all_facts if f.module is not None
        }
        #: fully qualified symbol -> ("function"|"class"|"lambda", path, line)
        self.symbols: Dict[str, Tuple[str, str, int]] = {}
        self.functions: Dict[str, FunctionNode] = {}
        self.import_graph: Dict[str, List[ResolvedImport]] = {}
        # Pass 1: symbols and nodes, so pass-2 resolution sees the
        # complete table regardless of module order.
        for module, facts in self.modules.items():
            for fn in facts.functions:
                kind = "lambda" if fn.qualname in facts.lambda_assigns else "function"
                self.symbols[f"{module}.{fn.qualname}"] = (kind, facts.path, fn.line)
                self.functions[f"{module}.{fn.qualname}"] = FunctionNode(
                    qualname=f"{module}.{fn.qualname}",
                    module=module,
                    path=facts.path,
                    line=fn.line,
                    cls=fn.cls,
                    local_callables=fn.local_callables,
                )
            for cname, cinfo in facts.classes.items():
                self.symbols[f"{module}.{cname}"] = ("class", facts.path, cinfo.line)
        # Pass 2: import edges and call resolution.
        for module, facts in self.modules.items():
            self.import_graph[module] = self._resolve_imports(module, facts)
            for fn in facts.functions:
                node = self.functions[f"{module}.{fn.qualname}"]
                node.calls = [self._resolve_call(facts, fn, site) for site in fn.calls]

    # -- imports --------------------------------------------------------

    def _project_module_of(self, dotted: str) -> Optional[str]:
        """Longest project module that is ``dotted`` or a prefix of it."""
        candidate = dotted
        while candidate:
            if candidate in self.modules:
                return candidate
            if "." not in candidate:
                return None
            candidate = candidate.rsplit(".", 1)[0]
        return None

    def _resolve_imports(self, module: str, facts: ModuleFacts) -> List[ResolvedImport]:
        edges: List[ResolvedImport] = []
        for site in facts.imports:
            target = self._project_module_of(site.target)
            if target is not None and target != module:
                edges.append(
                    ResolvedImport(module, target, site.target, site.line, site.toplevel)
                )
        return edges

    # -- calls ----------------------------------------------------------

    def _lookup_method(
        self, module: str, cls: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Resolve ``cls.method`` through project-local base classes."""
        key = f"{module}.{cls}"
        seen = _seen if _seen is not None else set()
        if key in seen:
            return None
        seen.add(key)
        facts = self.modules.get(module)
        if facts is None:
            return None
        cinfo = facts.classes.get(cls)
        if cinfo is None:
            return None
        if method in cinfo.methods:
            return f"{module}.{cls}.{method}"
        for base in cinfo.bases:
            resolved = self._resolve_class_ref(facts, base)
            if resolved is None:
                continue
            base_module, base_cls = resolved
            found = self._lookup_method(base_module, base_cls, method, seen)
            if found is not None:
                return found
        return None

    def _resolve_class_ref(
        self, facts: ModuleFacts, raw: str
    ) -> Optional[Tuple[str, str]]:
        """(module, class) for a raw dotted class reference, if project-local."""
        if raw in facts.classes and facts.module is not None:
            return facts.module, raw
        head, _, rest = raw.partition(".")
        expanded = facts.aliases.get(head)
        if expanded is None:
            return None
        dotted = f"{expanded}.{rest}" if rest else expanded
        if self.symbols.get(dotted, ("",))[0] != "class":
            return None
        module = self._project_module_of(dotted)
        if module is None or not dotted.startswith(module + "."):
            return None
        return module, dotted[len(module) + 1 :]

    def _match_project_callable(self, dotted: str) -> Optional[str]:
        """Project function node for a fully dotted reference, if any."""
        kind = self.symbols.get(dotted, ("",))[0]
        if kind in ("function", "lambda"):
            return dotted
        if kind == "class":
            # Instantiating a class runs its constructor; resolve
            # through project-local bases like any other method.
            module = self._project_module_of(dotted)
            if module is not None and dotted.startswith(module + "."):
                return self._lookup_method(module, dotted[len(module) + 1 :], "__init__")
        return None

    def _resolve_call(
        self, facts: ModuleFacts, fn: FunctionInfo, site: CallSite
    ) -> ResolvedCall:
        raw = site.callee
        module = facts.module
        head, _, rest = raw.partition(".")
        if head == "self":
            if module is not None and fn.cls is not None and rest and "." not in rest:
                target = self._lookup_method(module, fn.cls, rest)
                if target is not None and target in self.functions:
                    return ResolvedCall(site, target=target)
            return ResolvedCall(site)
        expanded = facts.aliases.get(head)
        if expanded is not None:
            dotted = f"{expanded}.{rest}" if rest else expanded
            target = self._match_project_callable(dotted)
            if target is not None and target in self.functions:
                return ResolvedCall(site, target=target)
            if self._project_module_of(dotted) is None:
                return ResolvedCall(site, external=dotted)
            return ResolvedCall(site)
        if module is not None:
            if not rest:
                for candidate in (f"{module}.{head}",):
                    target = self._match_project_callable(candidate)
                    if target is not None and target in self.functions:
                        return ResolvedCall(site, target=target)
            elif head in facts.classes and "." not in rest:
                target = self._lookup_method(module, head, rest)
                if target is not None and target in self.functions:
                    return ResolvedCall(site, target=target)
        return ResolvedCall(site)

    # -- reachability ----------------------------------------------------

    def entry_points(self, globs: Iterable[str]) -> List[str]:
        patterns = list(globs)
        return sorted(
            name
            for name in self.functions
            if any(fnmatchcase(name, pattern) for pattern in patterns)
        )

    def reachable_from(
        self, entries: Iterable[str]
    ) -> Dict[str, Optional[Tuple[str, CallSite]]]:
        """BFS over the call graph; maps each reachable function to the
        (caller, call-site) edge it was first reached through (entry
        points map to None). Breadth-first, so recorded chains are
        shortest chains."""
        parent: Dict[str, Optional[Tuple[str, CallSite]]] = {}
        queue: deque = deque()
        for entry in sorted(set(entries)):
            if entry in self.functions and entry not in parent:
                parent[entry] = None
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for call in self.functions[current].calls:
                target = call.target
                if target is not None and target in self.functions and target not in parent:
                    parent[target] = (current, call.site)
                    queue.append(target)
        return parent

    def call_chain(
        self,
        parent: Dict[str, Optional[Tuple[str, CallSite]]],
        node: str,
    ) -> List[Tuple[str, CallSite]]:
        """Hops from an entry point to ``node``: [(caller, site), ...]."""
        chain: List[Tuple[str, CallSite]] = []
        current = node
        while True:
            edge = parent.get(current)
            if edge is None:
                break
            caller, site = edge
            chain.append((caller, site))
            current = caller
        chain.reverse()
        return chain


def build_graph(units: Iterable[ModuleUnit]) -> ProjectGraph:
    """Extract facts where missing, then join them into a ProjectGraph."""
    all_facts: List[ModuleFacts] = []
    for unit in units:
        if unit.facts is None:
            unit.facts = extract_facts(unit)
        if unit.facts is not None:
            all_facts.append(unit.facts)
    return ProjectGraph(all_facts)
