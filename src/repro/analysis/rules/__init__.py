"""Built-in simlint rules.

Importing this package registers SL001–SL008 with the rule registry in
:mod:`repro.analysis.core`; third-party rules register identically from
modules listed under ``[tool.simlint] plugins``.
"""

from repro.analysis.rules import determinism, phy, protocol, taxonomy, worldbuild

__all__ = ["determinism", "phy", "protocol", "taxonomy", "worldbuild"]
