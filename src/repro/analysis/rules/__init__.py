"""Built-in simlint rules.

Importing this package registers SL001–SL016 with the rule registry in
:mod:`repro.analysis.core`; third-party rules register identically from
modules listed under ``[tool.simlint] plugins``.
"""

from repro.analysis.rules import (
    boundary,
    determinism,
    guards,
    layers,
    phy,
    protocol,
    taint,
    taxonomy,
    worldbuild,
)

__all__ = [
    "boundary",
    "determinism",
    "guards",
    "layers",
    "phy",
    "protocol",
    "taint",
    "taxonomy",
    "worldbuild",
]
