"""Built-in simlint rules.

Importing this package registers SL001–SL007 with the rule registry in
:mod:`repro.analysis.core`; third-party rules register identically from
modules listed under ``[tool.simlint] plugins``.
"""

from repro.analysis.rules import determinism, protocol, taxonomy, worldbuild

__all__ = ["determinism", "protocol", "taxonomy", "worldbuild"]
