"""SL010: process/socket primitives stay inside the backend package.

The exec engine's contract is that *placement* — spawning workers,
talking to remote hosts, pooling processes — lives behind the
``ExecutionBackend`` ABC in ``repro.exec.backend``. Everything else
(orchestration, experiments, the simulator itself) reasons about
shards and futures, never about processes. A stray
``subprocess.run(...)`` in an experiment or a private
``ProcessPoolExecutor`` in an analysis module bypasses the backend's
fault handling (retries, heartbeats, blacklists, degradation) and its
telemetry, and couples results to the host in ways the determinism
rules can't see.

This rule bans importing or calling execution primitives —
``subprocess``, ``multiprocessing``, ``concurrent.futures`` executors,
``socket``, and ``os`` process-spawning calls (``fork``, ``exec*``,
``spawn*``, ``popen``, ``system``) — outside the configured backend
package. Importing *exception types* from ``concurrent.futures``
(``TimeoutError``, ``BrokenExecutor``) is allowed: callers need them
to talk about backend failures; they cannot create concurrency.

Configure via ``[tool.simlint]``: ``backend-package`` names the
package that owns the primitives (default ``repro.exec.backend``);
``backend-allow`` lists dotted-module globs exempted for other reasons
(e.g. ``repro.obs.report`` shells out to ``git`` for provenance).
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator, Optional

from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.core import Finding, ModuleUnit, ProjectContext, Rule, Severity, register_rule

#: Modules whose import (or whose attribute use) means process/IPC
#: machinery. ``concurrent`` covers ``concurrent.futures``.
_BANNED_MODULES = ("subprocess", "multiprocessing", "socket", "concurrent")

#: ``from concurrent.futures import <name>`` that stays legal anywhere:
#: failure vocabulary, not concurrency.
_FUTURES_EXCEPTIONS = {
    "TimeoutError",
    "CancelledError",
    "BrokenExecutor",
    "InvalidStateError",
}

#: ``os.*`` calls that create processes.
_OS_BANNED_EXACT = {
    "os.fork",
    "os.forkpty",
    "os.popen",
    "os.posix_spawn",
    "os.posix_spawnp",
    "os.system",
}
_OS_BANNED_PREFIXES = ("os.exec", "os.spawn")


def _banned_root(module: Optional[str]) -> Optional[str]:
    if module is None:
        return None
    root = module.split(".", 1)[0]
    return root if root in _BANNED_MODULES else None


@register_rule
class BackendBoundary(Rule):
    """SL010: execution primitives only inside ``repro.exec.backend``."""

    id = "SL010"
    name = "backend-boundary"
    severity = Severity.ERROR
    description = "subprocess/executor/socket primitives belong in the backend package"

    def _exempt(self, module: Optional[str], project: ProjectContext) -> bool:
        if module is None:
            return False
        package = getattr(project.config, "backend_package", "repro.exec.backend")
        if module == package or module.startswith(package + "."):
            return True
        allow = getattr(project.config, "backend_allow", ())
        return any(fnmatch.fnmatchcase(module, pattern) for pattern in allow)

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        if self._exempt(unit.module, project):
            return
        package = getattr(project.config, "backend_package", "repro.exec.backend")
        imports = ImportMap(unit.tree)
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _banned_root(alias.name)
                    if root is not None:
                        yield self.finding(
                            unit.path,
                            node,
                            f"import of execution primitive '{alias.name}' outside "
                            f"{package} — go through the ExecutionBackend ABC",
                        )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                root = _banned_root(node.module)
                if root is None:
                    continue
                if node.module == "concurrent.futures":
                    offenders = [
                        alias.name
                        for alias in node.names
                        if alias.name not in _FUTURES_EXCEPTIONS
                    ]
                    if not offenders:
                        continue
                    what = ", ".join(repr(name) for name in offenders)
                    yield self.finding(
                        unit.path,
                        node,
                        f"import of executor primitive(s) {what} from "
                        f"'concurrent.futures' outside {package} — "
                        "go through the ExecutionBackend ABC",
                    )
                    continue
                yield self.finding(
                    unit.path,
                    node,
                    f"import from execution primitive '{node.module}' outside "
                    f"{package} — go through the ExecutionBackend ABC",
                )
            elif isinstance(node, ast.Call):
                resolved = imports.resolve(dotted_name(node.func))
                if resolved is None:
                    continue
                if resolved in _OS_BANNED_EXACT or resolved.startswith(_OS_BANNED_PREFIXES):
                    yield self.finding(
                        unit.path,
                        node,
                        f"process-spawning call '{resolved}()' outside {package} — "
                        "go through the ExecutionBackend ABC",
                    )
