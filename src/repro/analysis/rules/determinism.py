"""Determinism rules: SL001 (global RNG), SL002 (wall clock), SL003 (sets).

These protect the repo's headline guarantee — a run is a pure function
of its seed, so parallel shard execution is byte-identical to the
sequential run. Global RNG state, wall-clock reads inside simulated
time, and hash-order set iteration are the three ways Python code
breaks that silently.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.core import Finding, ModuleUnit, ProjectContext, Rule, Severity, register_rule

#: random-module attributes that are fine to reference: RNG *classes*
#: (instantiating one is exactly what the rule demands) and state-free
#: helpers.
_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: Shared with SL011 (interprocedural taint), which bans the same
#: sources when they are merely *reachable* from a sim hot path.
WALLCLOCK_BANNED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule
class NoGlobalRng(Rule):
    """SL001: all randomness must flow through seeded instances.

    ``random.random()``, ``random.choice()``, ``random.seed()`` et al.
    mutate the interpreter-global Mersenne Twister: one extra draw
    anywhere reorders every later draw everywhere, and worker processes
    each get their own differently-seeded copy. Simulation code must
    draw from an injected ``random.Random`` or a named
    ``RandomStreams`` stream instead.
    """

    id = "SL001"
    name = "no-global-rng"
    severity = Severity.ERROR
    description = "module-level random.* calls break seed isolation"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        imports = ImportMap(unit.tree)
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random" and not node.level:
                for alias in node.names:
                    if alias.name != "*" and alias.name not in _RANDOM_ALLOWED:
                        yield self.finding(
                            unit.path,
                            node,
                            f"import of global-state 'random.{alias.name}' — "
                            "use an injected random.Random or RandomStreams stream",
                        )
            elif isinstance(node, ast.Call):
                resolved = imports.resolve(dotted_name(node.func))
                if resolved is None or not resolved.startswith("random."):
                    continue
                attr = resolved[len("random."):]
                if "." not in attr and attr not in _RANDOM_ALLOWED:
                    yield self.finding(
                        unit.path,
                        node,
                        f"call to global-state 'random.{attr}()' — "
                        "use an injected random.Random or RandomStreams stream",
                    )


@register_rule
class NoWallclockInSim(Rule):
    """SL002: sim-scope code must not read the wall clock.

    Inside the simulation the only clock is ``sim.now``; a
    ``time.time()`` there couples results to host speed and load.
    Harness modules that legitimately *measure* wall time (the CLI
    runner, the worker pool) are exempted via the config-driven
    ``wallclock-allow`` list, not inline pragmas, so the policy stays
    reviewable in one place.
    """

    id = "SL002"
    name = "no-wallclock-in-sim"
    severity = Severity.ERROR
    description = "wall-clock reads inside sim-scope packages"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        config = project.config
        if not config.in_sim_scope(unit.module) or config.wallclock_allowed(unit.module):
            return
        imports = ImportMap(unit.tree)
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(dotted_name(node.func))
            if resolved in WALLCLOCK_BANNED:
                yield self.finding(
                    unit.path,
                    node,
                    f"wall-clock read '{resolved}()' in sim-scope module "
                    f"{unit.module or unit.path!r} — use sim.now, or add the module to "
                    "[tool.simlint] wallclock-allow if it is harness code",
                )


class _SetTracker(ast.NodeVisitor):
    """Collects names/attributes that are ever assigned a set value."""

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self.self_attrs: Set[str] = set()

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _record(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.self_attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                self._record(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._is_set_expr(node.value):
            self._record(node.target)
        self.generic_visit(node)


@register_rule
class UnorderedIteration(Rule):
    """SL003: iterating a set feeds hash order into the event stream.

    Set iteration order depends on the per-process hash salt; when the
    loop body schedules events or builds ordered output, two processes
    disagree — the parallel-vs-sequential identity check is exactly the
    victim. Iterate ``sorted(the_set)`` instead (set→set comprehensions
    are order-free and exempt).

    Heuristic and flow-insensitive by design: a name counts as a set if
    it is *ever* assigned one in the module.
    """

    id = "SL003"
    name = "unordered-iteration"
    severity = Severity.WARNING
    description = "iteration over sets is hash-order dependent"

    _WRAPPERS = ("list", "tuple", "iter", "enumerate", "reversed")

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        tracker = _SetTracker()
        tracker.visit(unit.tree)

        def is_set_valued(node: ast.AST) -> bool:
            if tracker._is_set_expr(node):
                return True
            if isinstance(node, ast.Name):
                return node.id in tracker.names
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return node.attr in tracker.self_attrs
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._WRAPPERS
                and len(node.args) >= 1
            ):
                return is_set_valued(node.args[0])
            return False

        def flag(iterable: ast.AST) -> Iterator[Finding]:
            if is_set_valued(iterable):
                yield self.finding(
                    unit.path,
                    iterable,
                    "iteration over a set is hash-order dependent — "
                    "iterate sorted(...) or restructure",
                )

        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from flag(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    yield from flag(generator.iter)
