"""SL009: hot-path observability must be guarded (zero cost when off).

Simulator hot paths — every event dispatch runs code in ``repro.sim``,
``repro.phy``, ``repro.mac``, ``repro.net`` — follow one idiom for
trace and span emission::

    trace = self.sim.trace
    if trace is not None:
        trace.emit(tr.KIND, self.sim.now, ...)

With observability disabled the cost is one attribute read and one
``is`` check; nothing is formatted, allocated, or dispatched. An
unguarded ``trace.emit(...)`` / ``spans.span(...)`` either crashes on
``None`` or — worse — quietly taxes every simulated event. This rule
walks each hot-path module and requires every emission to sit under an
``is not None`` guard on its receiver.

Guards are recognised structurally, not by proximity:

- ``if trace is not None:`` bodies (including ``and``-conjoined tests
  such as ``if trace is not None and channel != self.channel:``);
- the ``else`` of ``if trace is None:`` and the statements after an
  early ``if trace is None: return``;
- function parameters named like a receiver (``def _trace_cwnd(self,
  trace)``) — the caller owns the guard there, and SL009 checks the
  caller too.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.core import Finding, ModuleUnit, ProjectContext, Rule, Severity, register_rule

#: Same receiver conventions as SL004 (taxonomy): locals/attributes the
#: repo binds the trace bus and the span profiler to.
_TRACE_RECEIVERS = {"trace", "bus", "_trace", "_bus"}
_SPAN_RECEIVERS = {"spans", "profiler", "_spans", "_profiler"}
_TRACE_METHODS = {"emit"}
_SPAN_METHODS = {"span", "record"}
_ALL_RECEIVERS = _TRACE_RECEIVERS | _SPAN_RECEIVERS


def _emission(call: ast.Call) -> Optional[Tuple[str, str]]:
    """``(dotted receiver, method)`` when the call is an obs emission."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        base = value.id
    elif isinstance(value, ast.Attribute):
        base = value.attr
    else:
        return None
    if not (
        (func.attr in _TRACE_METHODS and base in _TRACE_RECEIVERS)
        or (func.attr in _SPAN_METHODS and base in _SPAN_RECEIVERS)
    ):
        return None
    dotted = dotted_name(value)
    return (dotted if dotted is not None else base, func.attr)


def _guard_sets(test: ast.expr) -> Tuple[Set[str], Set[str]]:
    """Names proven non-None when ``test`` is (true, false)."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and len(test.comparators) == 1
    ):
        left, right = test.left, test.comparators[0]
        if isinstance(right, ast.Constant) and right.value is None:
            target = left
        elif isinstance(left, ast.Constant) and left.value is None:
            target = right
        else:
            return set(), set()
        dotted = dotted_name(target)
        if dotted is None:
            return set(), set()
        if isinstance(test.ops[0], ast.IsNot):
            return {dotted}, set()
        if isinstance(test.ops[0], ast.Is):
            return set(), {dotted}
        return set(), set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        # `A and B` true ⇒ every conjunct true.
        pos: Set[str] = set()
        for value in test.values:
            pos |= _guard_sets(value)[0]
        return pos, set()
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        # `A or B` false ⇒ every disjunct false.
        neg: Set[str] = set()
        for value in test.values:
            neg |= _guard_sets(value)[1]
        return set(), neg
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        pos, neg = _guard_sets(test.operand)
        return neg, pos
    return set(), set()


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    """Does the block unconditionally leave the enclosing suite?"""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class _Scanner:
    """Block-structured walk carrying the set of guarded receivers."""

    def __init__(self, rule: "SpanGuard", unit: ModuleUnit):
        self.rule = rule
        self.unit = unit
        self.findings: List[Finding] = []

    def scan(self, tree: ast.Module) -> None:
        self._block(tree.body, set())

    def _function(self, node: ast.AST) -> None:
        # A parameter named like a receiver is the callee half of the
        # idiom: the caller guards, then hands the live object down.
        args = node.args  # type: ignore[attr-defined]
        params = [arg.arg for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        if args.vararg is not None:
            params.append(args.vararg.arg)
        if args.kwarg is not None:
            params.append(args.kwarg.arg)
        guarded = {param for param in params if param in _ALL_RECEIVERS}
        self._block(node.body, guarded)  # type: ignore[attr-defined]

    def _block(self, stmts: Sequence[ast.stmt], guarded: Set[str]) -> None:
        guarded = set(guarded)
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                pos, neg = _guard_sets(stmt.test)
                self._exprs(stmt.test, guarded)
                self._block(stmt.body, guarded | pos)
                self._block(stmt.orelse, guarded | neg)
                # `if trace is None: return` guards everything after it.
                if _terminates(stmt.body):
                    guarded |= neg
                if _terminates(stmt.orelse):
                    guarded |= pos
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._block(stmt.body, set())
                continue
            for _, value in ast.iter_fields(stmt):
                self._field(value, guarded)

    def _field(self, value: object, guarded: Set[str]) -> None:
        if isinstance(value, list):
            if value and isinstance(value[0], ast.stmt):
                self._block(value, guarded)
            else:
                for item in value:
                    self._field(item, guarded)
        elif isinstance(value, ast.stmt):
            self._block([value], guarded)
        elif isinstance(value, ast.expr):
            self._exprs(value, guarded)
        elif isinstance(value, ast.AST):
            # withitem, excepthandler, keyword, arguments, match_case …
            for _, sub in ast.iter_fields(value):
                self._field(sub, guarded)

    def _exprs(self, node: ast.AST, guarded: Set[str]) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            hit = _emission(sub)
            if hit is None:
                continue
            dotted, method = hit
            if dotted in guarded:
                continue
            kind = "span profiling" if method in _SPAN_METHODS else "trace emission"
            self.findings.append(
                self.rule.finding(
                    self.unit.path,
                    sub,
                    f"unguarded {kind} `{dotted}.{method}(...)` on the hot path — "
                    f"bind the handle to a local and emit under "
                    f"`if {dotted} is not None:` so disabled observability "
                    "costs one attribute read",
                )
            )


@register_rule
class SpanGuard(Rule):
    id = "SL009"
    name = "span-guard"
    severity = Severity.ERROR
    description = "hot-path trace/span emission must sit behind an `is not None` guard"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        if not unit.in_package(project.config.hotpath_packages):
            return
        if unit.module == project.config.taxonomy_module:
            return  # the bus emits on itself; there is nothing to guard
        scanner = _Scanner(self, unit)
        scanner.scan(unit.tree)
        yield from scanner.findings
