"""SL012: the architecture DAG is declared in config and machine-checked.

The stack is layered — ``sim`` at the bottom, then ``world``, ``phy``,
``mac``, ``net``, ``drivers``, ``scenario``, ``experiments``, ``exec``
at the top — and the layering is what keeps the determinism argument
auditable: a lower layer importing a higher one (a *back-edge*) lets
harness concerns leak into simulated time, where the per-file rules
can't see them. Until now the DAG lived in DESIGN.md prose; this rule
moves it into ``[tool.simlint] layers`` (an ordered list, lowest layer
first) and flags every module-level back-edge import.

Two escape hatches, both deliberate and visible in config rather than
inline:

- **Function-local imports are exempt.** The repo's sanctioned idiom
  for a genuine upward reference is a lazy import inside the function
  that needs it (e.g. ``repro.exec.campaign`` importing the runner);
  it cannot create an import cycle at module load and is greppable.
- **``layer-allow``** lists sanctioned interface edges as
  ``"src-prefix -> dst-prefix"`` pairs — e.g. the experiment modules
  importing the shard *vocabulary* (``repro.exec.shards``) that their
  protocol functions are defined in terms of.

Modules outside every declared layer are unconstrained; with no
``layers`` configured the rule is inert.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.analysis.core import Finding, ProjectContext, Rule, Severity, register_rule


def _layer_index(module: str, layers: Tuple[str, ...]) -> Optional[int]:
    for index, prefix in enumerate(layers):
        if module == prefix or module.startswith(prefix + "."):
            return index
    return None


def _parse_allow(raw: Tuple[str, ...]) -> Tuple[Tuple[str, str], ...]:
    pairs = []
    for entry in raw:
        src, sep, dst = entry.partition("->")
        if sep:
            pairs.append((src.strip(), dst.strip()))
    return tuple(pairs)


def _matches(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@register_rule
class LayerBoundary(Rule):
    """SL012: no module-level imports against the declared layer order."""

    id = "SL012"
    name = "layer-boundary"
    severity = Severity.ERROR
    description = "module-level imports must respect the configured layer DAG"
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        layers = project.config.layers
        if not layers:
            return
        allow = _parse_allow(project.config.layer_allow)
        graph = project.graph
        for module in sorted(graph.import_graph):
            source_index = _layer_index(module, layers)
            if source_index is None:
                continue
            facts = graph.modules[module]
            for edge in graph.import_graph[module]:
                if not edge.toplevel:
                    continue  # lazy imports are the sanctioned back-reference idiom
                target_index = _layer_index(edge.target, layers)
                if target_index is None or target_index <= source_index:
                    continue
                if any(
                    _matches(module, src) and _matches(edge.target, dst)
                    for src, dst in allow
                ):
                    continue
                yield self.finding(
                    facts.path,
                    edge.line,
                    f"layer back-edge: {module} (layer '{layers[source_index]}') "
                    f"imports {edge.target} (higher layer '{layers[target_index]}') "
                    "at module level — move the dependency down, import lazily "
                    "inside the needing function, or declare a sanctioned "
                    "interface in [tool.simlint] layer-allow",
                )
