"""PHY hot-path rules: SL008/SL015 (no linear scans) and SL016 (kernel purity).

The medium's delivery and lookup paths run once per frame; PR 5 made
their cost independent of fleet size by replacing the historical
"scan every registered radio" loops with per-channel and per-address
indexes (see DESIGN.md §6). SL008 keeps those scans from creeping
back: any iteration over the full radio registry (``self._radios``)
inside a ``Medium`` method is O(#radios) per frame and must go through
``_by_channel`` / ``_by_address`` instead.

SL015 (``cross-partition-scan``) is the same argument one level up:
with the spatial grid enabled (the default), even the *per-channel*
index is a city-wide structure — iterating it per frame is O(channel
population), which at metro scale is O(world). Delivery-path methods
must gather candidates from the grid (``_grid`` / ``_mobile`` /
``_local_cache``, DESIGN.md §6.2); ``_scan_entries`` — the scalar
oracle the grid is proven digest-identical against, reachable only
with ``spatial_index=False`` — is the single delivery method allowed
to walk ``_by_channel``, by name.

Registry maintenance (``register`` / ``unregister`` / ``_retune``),
the metrics snapshot (``_metrics_source``, sampled at snapshot
cadence, not per frame), and the ``radios_on_channel`` inspection
helper are exempt in-rule — an explicit exemption here, not a
baseline entry, so the policy is visible next to the rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleUnit, ProjectContext, Rule, Severity, register_rule

#: Medium methods that may legitimately walk the whole registry.
_EXEMPT_METHODS = {"register", "unregister", "_retune", "_metrics_source"}

#: Call wrappers that still iterate their first argument.
_ITER_WRAPPERS = {"list", "tuple", "sorted", "iter", "enumerate", "reversed", "len"}

#: Dict views over the registry iterate it just the same.
_DICT_VIEWS = {"keys", "values", "items"}


def _is_registry(node: ast.AST) -> bool:
    """True for ``self._radios`` and views/wrappers of it."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "_radios"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_VIEWS
            and _is_registry(func.value)
        ):
            return True
        if (
            isinstance(func, ast.Name)
            and func.id in _ITER_WRAPPERS
            and len(node.args) >= 1
            and _is_registry(node.args[0])
        ):
            return True
    return False


@register_rule
class PhyHotPathScan(Rule):
    """SL008: no O(#radios) scans in the medium's per-frame paths."""

    id = "SL008"
    name = "phy-hot-path-scan"
    severity = Severity.ERROR
    description = "linear radio-registry scans in Medium delivery/lookup methods"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        for klass in ast.walk(unit.tree):
            if not isinstance(klass, ast.ClassDef) or klass.name != "Medium":
                continue
            for method in klass.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _EXEMPT_METHODS:
                    continue
                yield from self._check_method(unit, method)

    def _check_method(self, unit: ModuleUnit, method: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(method):
            sources = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sources.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                sources.extend(generator.iter for generator in node.generators)
            for source in sources:
                if _is_registry(source):
                    yield self.finding(
                        unit.path,
                        source,
                        "O(#radios) scan over self._radios in a Medium "
                        "delivery/lookup method — use the _by_channel / "
                        "_by_address indexes (DESIGN.md §6)",
                    )


#: Medium methods that may walk the per-channel global index: registry
#: maintenance, the metrics snapshot, the inspection helper, and the
#: scalar-oracle snapshot builder (the ``spatial_index=False`` path).
_CHANNEL_EXEMPT_METHODS = _EXEMPT_METHODS | {"radios_on_channel", "_scan_entries"}


def _is_channel_index(node: ast.AST) -> bool:
    """True for ``self._by_channel`` and anything that reaches it.

    Covers the attribute itself, subscripts of it
    (``self._by_channel[c]``), ``.get(...)`` lookups, dict views, and
    the builtin iteration wrappers — each hands back a channel-global
    structure whose iteration is O(channel population).
    """
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "_by_channel"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return True
    if isinstance(node, ast.Subscript) and _is_channel_index(node.value):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in (_DICT_VIEWS | {"get"})
            and _is_channel_index(func.value)
        ):
            return True
        if (
            isinstance(func, ast.Name)
            and func.id in _ITER_WRAPPERS
            and len(node.args) >= 1
            and _is_channel_index(node.args[0])
        ):
            return True
    return False


@register_rule
class CrossPartitionScan(Rule):
    """SL015: delivery paths gather from the spatial grid, not _by_channel."""

    id = "SL015"
    name = "cross-partition-scan"
    severity = Severity.ERROR
    description = "per-channel global-index iteration in Medium delivery methods"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        for klass in ast.walk(unit.tree):
            if not isinstance(klass, ast.ClassDef) or klass.name != "Medium":
                continue
            for method in klass.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in _CHANNEL_EXEMPT_METHODS:
                    continue
                yield from self._check_method(unit, method)

    def _check_method(self, unit: ModuleUnit, method: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(method):
            sources = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sources.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                sources.extend(generator.iter for generator in node.generators)
            for source in sources:
                if _is_channel_index(source):
                    yield self.finding(
                        unit.path,
                        source,
                        "O(channel population) iteration over self._by_channel "
                        "in a Medium delivery method — gather candidates from "
                        "the spatial grid (_grid/_mobile/_local_cache, "
                        "DESIGN.md §6.2); only _scan_entries (the scalar "
                        "oracle) may walk the channel index",
                    )


#: The one module in ``repro.phy`` allowed to import numpy.
_KERNEL_MODULE = "repro.phy.kernel"

#: Import roots that would smuggle simulation state into the kernel.
_KERNEL_IMPURE_ROOTS = ("random", "repro.sim", "repro.obs", "repro.mac", "repro.drivers")

#: Attribute names whose access inside the kernel means it is reading
#: the simulation clock, the trace bus, or an RNG stream — all state
#: the kernel's purity contract forbids (geometry in, floats out).
_KERNEL_IMPURE_ATTRS = {"now", "trace", "random", "uniform", "emit"}


def _import_root(name: str) -> str:
    return name.split(".", 1)[0]


@register_rule
class KernelPurity(Rule):
    """SL016: numpy stays in the kernel; the kernel stays pure.

    Two directions of the same containment (DESIGN.md §6.3):

    - Only ``repro.phy.kernel`` may import numpy. Array semantics leak
      determinism bugs (``np.hypot`` and pairwise ``np.sum`` round
      differently from the scalar math) — every numpy expression must
      live in the kernel, next to the identity argument that justifies
      it, never inline in delivery code.
    - The kernel itself must be a pure function of its arguments: no
      simulation clock, no trace emission, no RNG. Draw ordering is
      the determinism contract's load-bearing wall, and it stays
      provable only while every draw happens in ``Medium`` — a kernel
      that consumed randomness (or consulted ``sim.now``) could
      reorder draws invisibly.
    """

    id = "SL016"
    name = "kernel-purity"
    severity = Severity.ERROR
    description = "numpy outside the phy kernel, or clock/trace/RNG inside it"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        module = unit.module
        if module is None or not (module == "repro.phy" or module.startswith("repro.phy.")):
            return
        assert unit.tree is not None
        if module == _KERNEL_MODULE:
            yield from self._check_kernel(unit)
        else:
            yield from self._check_numpy_confined(unit)

    def _check_numpy_confined(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            names = ()
            if isinstance(node, ast.Import):
                names = tuple(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module is not None:
                names = (node.module,)
            for name in names:
                if _import_root(name) == "numpy":
                    yield self.finding(
                        unit.path,
                        node,
                        "numpy import outside repro.phy.kernel — array code "
                        "in repro.phy must live in the kernel module, where "
                        "its bit-identity to the scalar path is argued and "
                        "tested (DESIGN.md §6.3)",
                    )

    def _check_kernel(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if isinstance(node, ast.Import):
                    names = tuple(alias.name for alias in node.names)
                else:
                    names = (node.module,) if node.module is not None else ()
                for name in names:
                    if any(
                        name == root or name.startswith(root + ".")
                        for root in _KERNEL_IMPURE_ROOTS
                    ):
                        yield self.finding(
                            unit.path,
                            node,
                            f"kernel imports {name!r} — the phy kernel must "
                            "stay a pure function of its arguments (no "
                            "clock, no trace, no RNG)",
                        )
            elif isinstance(node, ast.Attribute) and node.attr in _KERNEL_IMPURE_ATTRS:
                yield self.finding(
                    unit.path,
                    node,
                    f"kernel touches .{node.attr} — clock/trace/RNG access "
                    "belongs in Medium, which owns draw ordering; the "
                    "kernel only transforms geometry",
                )
