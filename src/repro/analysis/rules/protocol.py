"""SL005/SL006: shard-protocol conformance and experiment registration.

``repro.exec`` runs experiments by the contract in
``repro.exec.shards``: a module opts into parallelism by defining
``shards``/``run_shard``/``merge`` whose signatures mirror ``run()``,
with ``run_shard`` importable by name in a worker process. The CLI
finds experiments through ``REGISTRY`` in ``repro.experiments.runner``.
Both contracts are duck-typed at runtime — a drifted signature shows up
as a crash deep inside a worker, and an unregistered figure module
simply never runs — so these rules check them at lint time.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleUnit, ProjectContext, Rule, Severity, register_rule

_PROTOCOL = ("shards", "run_shard", "merge")
_FIG_TAB = re.compile(r"^(fig|tab)\d+")


def _module_level_defs(tree: ast.Module) -> Dict[str, ast.AST]:
    """name -> defining node, for module-level functions *and* assignments."""
    defs: Dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs[node.name] = node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defs[target.id] = node
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defs[node.target.id] = node
    return defs


def _signature(func: ast.FunctionDef) -> Tuple[List[str], bool, bool]:
    """(named parameters, has *args, has **kwargs)."""
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return names, args.vararg is not None, args.kwarg is not None


@register_rule
class ShardProtocol(Rule):
    """SL005: opted-in experiment modules must implement the full protocol."""

    id = "SL005"
    name = "shard-protocol"
    severity = Severity.ERROR
    description = "shards/run_shard/merge must be complete, conforming, picklable"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        if not unit.in_package((project.config.experiments_package,)):
            return
        defs = _module_level_defs(unit.tree)
        present = [name for name in _PROTOCOL if name in defs]
        if not present:
            return

        missing = [name for name in _PROTOCOL if name not in defs]
        if missing:
            yield self.finding(
                unit.path,
                defs[present[0]],
                f"partial shard protocol: defines {', '.join(present)} but not "
                f"{', '.join(missing)} (see repro.exec.shards)",
            )
        for name in present:
            node = defs[name]
            if isinstance(node, ast.AsyncFunctionDef):
                yield self.finding(
                    unit.path, node, f"shard-protocol function {name!r} may not be async"
                )
            elif not isinstance(node, ast.FunctionDef):
                yield self.finding(
                    unit.path,
                    node,
                    f"shard-protocol entry {name!r} must be a module-level 'def' "
                    "(workers import it by name; lambdas and rebindings don't pickle)",
                )

        run = defs.get("run")
        if not isinstance(run, ast.FunctionDef):
            yield self.finding(
                unit.path,
                defs[present[0]],
                "module implements the shard protocol but has no module-level run()",
            )
            return
        run_params = set(_signature(run)[0])

        shards = defs.get("shards")
        if isinstance(shards, ast.FunctionDef):
            names, _, has_kwargs = _signature(shards)
            uncovered = run_params - set(names)
            if uncovered and not has_kwargs:
                yield self.finding(
                    unit.path,
                    shards,
                    "shards() cannot accept run()'s parameter(s) "
                    f"{', '.join(sorted(uncovered))} — mirror run()'s signature or take **kwargs",
                )
        merge = defs.get("merge")
        if isinstance(merge, ast.FunctionDef):
            names, _, has_kwargs = _signature(merge)
            if not names:
                yield self.finding(
                    unit.path,
                    merge,
                    "merge() must take the per-shard results as its first parameter",
                )
            else:
                uncovered = run_params - set(names[1:])
                if uncovered and not has_kwargs:
                    yield self.finding(
                        unit.path,
                        merge,
                        "merge() cannot accept run()'s parameter(s) "
                        f"{', '.join(sorted(uncovered))} — "
                        "mirror run()'s signature or take **kwargs",
                    )


@register_rule
class ExperimentRegistry(Rule):
    """SL006: every fig/tab module is registered exactly once, with metadata."""

    id = "SL006"
    name = "experiment-registry"
    severity = Severity.ERROR
    description = "experiment modules must appear exactly once in REGISTRY"
    scope = "project"

    _REQUIRED = ("module", "fast", "description")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        config = project.config
        registry_unit = project.unit_for_module(config.registry_module)
        experiment_units = [
            u
            for u in project.units
            if u.in_package((config.experiments_package,)) and u.module is not None
        ]
        if registry_unit is None or registry_unit.ensure_tree() is None:
            return  # registry not part of this lint run (e.g. single-file invocation)

        registry = self._find_registry(registry_unit.tree)
        if registry is None:
            yield self.finding(
                registry_unit.path,
                1,
                f"no module-level REGISTRY dict literal found in {config.registry_module}",
            )
            return

        seen_modules: Dict[str, str] = {}  # module path -> experiment id
        registered: Set[str] = set()
        for key_node, value_node in zip(registry.keys, registry.values):
            if not (isinstance(key_node, ast.Constant) and isinstance(key_node.value, str)):
                yield self.finding(
                    registry_unit.path, key_node or registry, "non-string REGISTRY key"
                )
                continue
            experiment = key_node.value
            if not isinstance(value_node, ast.Dict):
                yield self.finding(
                    registry_unit.path,
                    value_node,
                    f"REGISTRY[{experiment!r}] must be a dict literal with "
                    f"{', '.join(self._REQUIRED)}",
                )
                continue
            metadata = self._literal_keys(value_node)
            for required in self._REQUIRED:
                if required not in metadata:
                    yield self.finding(
                        registry_unit.path,
                        value_node,
                        f"REGISTRY[{experiment!r}] is missing required key {required!r}",
                    )
            module_path = metadata.get("module")
            if isinstance(module_path, str):
                registered.add(module_path)
                if module_path in seen_modules:
                    yield self.finding(
                        registry_unit.path,
                        value_node,
                        f"module {module_path!r} registered twice "
                        f"({seen_modules[module_path]!r} and {experiment!r})",
                    )
                seen_modules.setdefault(module_path, experiment)
                if experiment_units and not any(u.module == module_path for u in experiment_units):
                    yield self.finding(
                        registry_unit.path,
                        value_node,
                        f"REGISTRY[{experiment!r}] points at {module_path!r}, "
                        "which does not exist in the linted tree",
                    )
            description = metadata.get("description")
            if isinstance(description, str) and not description.strip():
                yield self.finding(
                    registry_unit.path,
                    value_node,
                    f"REGISTRY[{experiment!r}] has an empty description",
                )

        prefix = config.experiments_package + "."
        for unit in experiment_units:
            assert unit.module is not None
            short = unit.module[len(prefix):] if unit.module.startswith(prefix) else unit.module
            if _FIG_TAB.match(short) and unit.module not in registered:
                yield self.finding(
                    unit.path,
                    1,
                    f"experiment module {unit.module} is not registered in "
                    f"{config.registry_module} REGISTRY",
                )

    @staticmethod
    def _find_registry(tree: ast.Module) -> Optional[ast.Dict]:
        for node in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "REGISTRY"
                    and isinstance(value, ast.Dict)
                ):
                    return value
        return None

    @staticmethod
    def _literal_keys(node: ast.Dict) -> Dict[str, object]:
        """String keys -> literal value (or a sentinel for non-literals)."""
        out: Dict[str, object] = {}
        for key, value in zip(node.keys, node.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                if isinstance(value, ast.Constant):
                    out[key.value] = value.value
                else:
                    out[key.value] = value
        return out


#: Callables whose arguments cross the worker-process boundary: the
#: backend submit method plus the payload containers handed to it.
#: Matched on the *resolved* target when resolution succeeds, and on
#: the raw trailing name otherwise (a ``backend.submit(...)`` receiver
#: is rarely resolvable statically).
_PAYLOAD_TARGETS = (
    "repro.exec.shards.Shard",
    "repro.exec.backend.base.ShardRequest",
)
_PAYLOAD_RAW_SUFFIXES = ("submit", "Shard", "ShardRequest")


@register_rule
class ShardPayloadPicklable(Rule):
    """SL014: shard payloads must be import-addressable.

    Everything submitted to an :class:`ExecutionBackend` is pickled
    into a worker process, and pickle serialises functions and classes
    *by qualified name*: a lambda, a closure, or a class defined inside
    a function has no importable name, so the payload either crashes
    the worker (``AttributeError: <locals>``) or — worse, with
    ``dill``-style fallbacks — silently captures ambient state that
    differs between processes, breaking byte-identity. The per-file
    SL005 checks the protocol *functions*; this rule checks the
    *values*: at every ``Shard(...)``/``ShardRequest(...)``
    construction and every ``*.submit(...)`` call it flags lambdas,
    references to function-local defs/classes, and — through the
    project symbol table — references that resolve to a module-level
    ``name = lambda ...`` in another module (importable, but still
    unpicklable by qualname).
    """

    id = "SL014"
    name = "shard-payload-picklable"
    severity = Severity.ERROR
    description = "no lambdas/closures/local classes across the submit boundary"
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        for qualname in sorted(graph.functions):
            node = graph.functions[qualname]
            facts = graph.modules[node.module]
            local = set(node.local_callables)
            for call in node.calls:
                if not self._is_payload_call(call):
                    continue
                boundary = call.site.callee
                for line in call.site.lambda_lines:
                    yield self.finding(
                        node.path,
                        line,
                        f"lambda crosses the {boundary}(...) boundary in {qualname} — "
                        "pass a module-level function (workers import it by name)",
                    )
                for ref in call.site.arg_refs:
                    message = self._bad_ref(ref, facts, local, graph)
                    if message is not None:
                        yield self.finding(
                            node.path,
                            call.site.line,
                            f"{message} crosses the {boundary}(...) boundary in "
                            f"{qualname} — pass a module-level function "
                            "(workers import it by name)",
                            col=call.site.col,
                        )

    @staticmethod
    def _is_payload_call(call) -> bool:
        if call.target is not None and call.target.startswith(_PAYLOAD_TARGETS):
            return True
        last = call.site.callee.rsplit(".", 1)[-1]
        return last in _PAYLOAD_RAW_SUFFIXES

    @staticmethod
    def _bad_ref(ref: str, facts, local: set, graph) -> Optional[str]:
        head, _, rest = ref.partition(".")
        if not rest and head in local:
            return f"function-local callable {head!r} (a closure or local class)"
        dotted: Optional[str] = None
        if not rest and head in facts.lambda_assigns:
            dotted = f"{facts.module}.{head}" if facts.module else None
            if dotted is None:
                return f"module-level lambda {head!r}"
        else:
            expanded = facts.aliases.get(head)
            if expanded is not None:
                dotted = f"{expanded}.{rest}" if rest else expanded
        if dotted is not None and graph.symbols.get(dotted, ("",))[0] == "lambda":
            return f"{dotted!r}, a module-level lambda (unpicklable by qualname)"
        return None
