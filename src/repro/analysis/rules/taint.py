"""SL011: determinism taint — nondeterminism reachable from sim hot paths.

SL001/SL002 catch a *direct* ``random.random()`` or ``time.time()`` in
sim-scope code. They cannot catch the interprocedural version: a hot
function calls a helper in another module, and the helper — perhaps
itself sitting outside sim scope — reads the wall clock. The run is
just as host-coupled, but no single file shows it.

This rule walks the project call graph instead. Starting from the
configured *hot entry points* (``[tool.simlint] hot-entrypoints``,
globs over fully qualified function names — by default the simulator's
event dispatch, the PHY medium's delivery path, and driver callbacks),
it computes the set of transitively reachable functions and flags every
reachable call to a nondeterminism source: wall clocks, the global RNG,
``os.urandom``, UUID generation, and environment reads. Each finding
carries the full call chain from the entry point as related locations,
so the report explains *why* a function is hot.

The call graph is a conservative under-approximation (see
:mod:`repro.analysis.graph`): dynamic dispatch — event callbacks,
duck-typed receivers — is not followed, so a clean SL011 run is
evidence, not proof. But every chain it does report is real.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.analysis.core import (
    Finding,
    ProjectContext,
    RelatedLocation,
    Rule,
    Severity,
    register_rule,
)
from repro.analysis.rules.determinism import _RANDOM_ALLOWED, WALLCLOCK_BANNED

#: Exact external names that make a hot function nondeterministic.
TAINT_SOURCES = WALLCLOCK_BANNED | {
    "os.urandom",
    "os.getrandom",
    "os.getenv",
    "os.getenvb",
    "os.environ",  # pseudo-site recorded for subscript reads
    "os.environ.get",
    "os.environ.setdefault",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: External name prefixes that are nondeterministic wholesale.
TAINT_PREFIXES = ("secrets.",)


def _hop_names(chain, graph) -> List[str]:
    """Qualified names of each hop target (resolved, not raw text)."""
    names: List[str] = []
    for caller, site in chain:
        for call in graph.functions[caller].calls:
            if call.site is site and call.target is not None:
                names.append(call.target)
                break
        else:
            names.append(site.callee)
    return names


def _is_taint_source(external: str) -> bool:
    if external in TAINT_SOURCES:
        return True
    if external.startswith(TAINT_PREFIXES):
        return True
    if external.startswith("random."):
        attr = external[len("random."):]
        return "." not in attr and attr not in _RANDOM_ALLOWED
    return False


@register_rule
class DeterminismTaint(Rule):
    """SL011: hot-path-reachable wall-clock/RNG/env reads, with chains."""

    id = "SL011"
    name = "determinism-taint"
    severity = Severity.ERROR
    description = "nondeterminism sources reachable from sim hot entry points"
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        entry_globs = project.config.hot_entrypoints
        if not entry_globs:
            return
        graph = project.graph
        entries = graph.entry_points(entry_globs)
        if not entries:
            return
        parent = graph.reachable_from(entries)
        for qualname in sorted(parent):
            node = graph.functions[qualname]
            for call in node.calls:
                if call.external is None or not _is_taint_source(call.external):
                    continue
                chain = graph.call_chain(parent, qualname)
                related: List[RelatedLocation] = []
                for caller, site in chain:
                    caller_node = graph.functions[caller]
                    related.append(
                        RelatedLocation(
                            path=caller_node.path,
                            line=site.line,
                            message=f"{caller} calls {site.callee} here",
                        )
                    )
                entry = chain[0][0] if chain else qualname
                if chain:
                    hops = " -> ".join([entry, *(t for t in _hop_names(chain, graph))])
                    via = f" via {hops} -> {call.external}"
                else:
                    via = " (a hot entry point itself)"
                yield self.finding(
                    node.path,
                    call.site.line,
                    f"'{call.external}' is reachable from sim hot entry point "
                    f"{entry}{via} — inject sim.now / a seeded stream instead",
                    col=call.site.col,
                    related=related,
                )
