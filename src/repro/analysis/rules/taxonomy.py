"""SL004: trace emissions must use the registered event taxonomy.

The ``repro.obs`` trace bus gives every event a dot-separated
``layer.event`` kind, declared once as module-level constants in
``repro.obs.trace``. Subscribers filter on those exact strings, so an
emitter inventing a kind inline (``trace.emit("dhcp.sendd", ...)``)
silently vanishes from every recorder and report. This rule pins each
``trace.emit(...)`` call site to a registered constant.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional

from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.core import Finding, ModuleUnit, ProjectContext, Rule, Severity, register_rule

_CONST_NAME = re.compile(r"^[A-Z][A-Z0-9_]*$")

#: receivers whose ``.emit`` we treat as the trace bus; the repo's
#: guarded-instrumentation idiom binds the bus to a local called
#: ``trace`` (or keeps it as ``self.trace`` / ``bus``).
_TRACE_RECEIVERS = {"trace", "bus", "_trace", "_bus"}


def extract_taxonomy(tree: ast.AST) -> Dict[str, str]:
    """Module-level ``UPPER_CASE = "layer.event"`` constants."""
    taxonomy: Dict[str, str] = {}
    for node in getattr(tree, "body", []):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Constant) and isinstance(node.value.value, str)):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and _CONST_NAME.match(target.id):
                taxonomy[target.id] = node.value.value
    return taxonomy


def _is_trace_emit(func: ast.Attribute) -> bool:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id in _TRACE_RECEIVERS
    if isinstance(value, ast.Attribute):
        return value.attr in _TRACE_RECEIVERS
    return False


@register_rule
class TraceTaxonomy(Rule):
    id = "SL004"
    name = "trace-taxonomy"
    severity = Severity.ERROR
    description = "trace.emit kinds must be registered layer.event constants"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        taxonomy = project.taxonomy
        if not taxonomy or unit.module == project.config.taxonomy_module:
            return
        imports = ImportMap(unit.tree)
        taxonomy_module = project.config.taxonomy_module
        kinds = set(taxonomy.values())

        for node in ast.walk(unit.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and _is_trace_emit(node.func)
            ):
                continue
            if not node.args:
                yield self.finding(unit.path, node, "trace.emit(...) without an event kind")
                continue
            kind = node.args[0]
            message = self._check_kind(kind, imports, taxonomy_module, taxonomy, kinds)
            if message is not None:
                yield self.finding(unit.path, kind, message)

    @staticmethod
    def _check_kind(
        kind: ast.AST,
        imports: ImportMap,
        taxonomy_module: str,
        taxonomy: Dict[str, str],
        kinds: set,
    ) -> Optional[str]:
        if isinstance(kind, ast.IfExp):
            # `A if cond else B`: both arms must be registered kinds.
            for arm in (kind.body, kind.orelse):
                message = TraceTaxonomy._check_kind(arm, imports, taxonomy_module, taxonomy, kinds)
                if message is not None:
                    return message
            return None
        if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
            if kind.value not in kinds:
                return (
                    f"event kind {kind.value!r} is not registered in {taxonomy_module} — "
                    "add a layer.event constant there and emit it by name"
                )
            return (
                f"string-literal event kind {kind.value!r} — emit the "
                f"{taxonomy_module} constant instead so call sites can't drift"
            )
        resolved = imports.resolve(dotted_name(kind))
        if resolved is not None and resolved.startswith(taxonomy_module + "."):
            const = resolved[len(taxonomy_module) + 1:]
            if const not in taxonomy:
                return f"unknown taxonomy constant {const!r} (not defined in {taxonomy_module})"
            return None
        return (
            "event kind must be a registered constant imported from "
            f"{taxonomy_module} (got an unresolvable expression)"
        )
