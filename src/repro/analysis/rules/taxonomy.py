"""SL004/SL013: trace emissions and the event taxonomy stay in sync.

The ``repro.obs`` trace bus gives every event a dot-separated
``layer.event`` kind, declared once as module-level constants in
``repro.obs.trace``. Subscribers filter on those exact strings, so an
emitter inventing a kind inline (``trace.emit("dhcp.sendd", ...)``)
silently vanishes from every recorder and report. SL004 pins each
``trace.emit(...)`` call site to a registered constant, one file at a
time.

SL013 is the project-scope complement: a two-way diff between the
declared taxonomy and every emission in the tree. Direction one flags
kinds that are emitted but undeclared (resolvable emissions whose
value is missing from the taxonomy — in a full-tree run this overlaps
SL004, but unlike SL004 it also works when emitters route kinds
through their own local constants). Direction two flags taxonomy
entries that no call site ever emits — dead vocabulary that
subscribers may be filtering on and silently receiving nothing.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional

from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.core import Finding, ModuleUnit, ProjectContext, Rule, Severity, register_rule

_CONST_NAME = re.compile(r"^[A-Z][A-Z0-9_]*$")

#: receivers whose ``.emit`` we treat as the trace bus; the repo's
#: guarded-instrumentation idiom binds the bus to a local called
#: ``trace`` (or keeps it as ``self.trace`` / ``bus``).
_TRACE_RECEIVERS = {"trace", "bus", "_trace", "_bus"}


def extract_taxonomy(tree: ast.AST) -> Dict[str, str]:
    """Module-level ``UPPER_CASE = "layer.event"`` constants."""
    taxonomy: Dict[str, str] = {}
    for node in getattr(tree, "body", []):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Constant) and isinstance(node.value.value, str)):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and _CONST_NAME.match(target.id):
                taxonomy[target.id] = node.value.value
    return taxonomy


def _is_trace_emit(func: ast.Attribute) -> bool:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id in _TRACE_RECEIVERS
    if isinstance(value, ast.Attribute):
        return value.attr in _TRACE_RECEIVERS
    return False


@register_rule
class TraceTaxonomy(Rule):
    id = "SL004"
    name = "trace-taxonomy"
    severity = Severity.ERROR
    description = "trace.emit kinds must be registered layer.event constants"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        taxonomy = project.taxonomy
        if not taxonomy or unit.module == project.config.taxonomy_module:
            return
        imports = ImportMap(unit.tree)
        taxonomy_module = project.config.taxonomy_module
        kinds = set(taxonomy.values())

        for node in ast.walk(unit.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and _is_trace_emit(node.func)
            ):
                continue
            if not node.args:
                yield self.finding(unit.path, node, "trace.emit(...) without an event kind")
                continue
            kind = node.args[0]
            message = self._check_kind(kind, imports, taxonomy_module, taxonomy, kinds)
            if message is not None:
                yield self.finding(unit.path, kind, message)

    @staticmethod
    def _check_kind(
        kind: ast.AST,
        imports: ImportMap,
        taxonomy_module: str,
        taxonomy: Dict[str, str],
        kinds: set,
    ) -> Optional[str]:
        if isinstance(kind, ast.IfExp):
            # `A if cond else B`: both arms must be registered kinds.
            for arm in (kind.body, kind.orelse):
                message = TraceTaxonomy._check_kind(arm, imports, taxonomy_module, taxonomy, kinds)
                if message is not None:
                    return message
            return None
        if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
            if kind.value not in kinds:
                return (
                    f"event kind {kind.value!r} is not registered in {taxonomy_module} — "
                    "add a layer.event constant there and emit it by name"
                )
            return (
                f"string-literal event kind {kind.value!r} — emit the "
                f"{taxonomy_module} constant instead so call sites can't drift"
            )
        resolved = imports.resolve(dotted_name(kind))
        if resolved is not None and resolved.startswith(taxonomy_module + "."):
            const = resolved[len(taxonomy_module) + 1:]
            if const not in taxonomy:
                return f"unknown taxonomy constant {const!r} (not defined in {taxonomy_module})"
            return None
        return (
            "event kind must be a registered constant imported from "
            f"{taxonomy_module} (got an unresolvable expression)"
        )


@register_rule
class TaxonomyDrift(Rule):
    """SL013: two-way diff between declared taxonomy and actual emissions."""

    id = "SL013"
    name = "taxonomy-drift"
    severity = Severity.ERROR
    description = "emitted-but-undeclared kinds; declared-but-never-emitted entries"
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        taxonomy_module = project.config.taxonomy_module
        graph = project.graph
        taxonomy_facts = graph.modules.get(taxonomy_module)
        if taxonomy_facts is None:
            return  # taxonomy module not part of this lint run
        #: kind value -> (constant name, line in the taxonomy module)
        declared: Dict[str, tuple] = {}
        for name, (value, line) in taxonomy_facts.constants.items():
            if "." in value:  # kinds are dot-separated layer.event strings
                declared[value] = (name, line)

        emitted: set = set()
        undeclared = []  # (facts, site, value)
        for module in sorted(graph.modules):
            facts = graph.modules[module]
            for site in facts.emits:
                value = self._resolve_emit(facts, site, taxonomy_module, graph)
                if value is None:
                    continue  # unresolvable expressions are SL004's business
                emitted.add(value)
                if value not in declared:
                    undeclared.append((facts, site, value))

        for facts, site, value in undeclared:
            yield self.finding(
                facts.path,
                site.line,
                f"event kind {value!r} is emitted but not declared in "
                f"{taxonomy_module} — add a layer.event constant there",
                col=site.col,
            )
        for value in sorted(declared):
            if value in emitted:
                continue
            name, line = declared[value]
            yield self.finding(
                taxonomy_facts.path,
                line,
                f"taxonomy entry {name} = {value!r} is never emitted anywhere "
                "in the linted tree — remove it or wire up the emitter",
            )

    @staticmethod
    def _resolve_emit(facts, site, taxonomy_module: str, graph) -> Optional[str]:
        """The emitted kind's string value, when statically resolvable."""
        if site.literal is not None:
            return site.literal
        if site.ref is None:
            return None
        head, _, rest = site.ref.partition(".")
        expanded = facts.aliases.get(head)
        if expanded is not None:
            dotted = f"{expanded}.{rest}" if rest else expanded
            if dotted.startswith(taxonomy_module + "."):
                const = dotted[len(taxonomy_module) + 1:]
                taxonomy_facts = graph.modules.get(taxonomy_module)
                if taxonomy_facts is not None and const in taxonomy_facts.constants:
                    return taxonomy_facts.constants[const][0]
                return None  # unknown constant: SL004 flags it
        if not rest and head in facts.constants:
            return facts.constants[head][0]  # module-local constant
        return None
