"""SL007: experiment code must build worlds through ``repro.scenario``.

The scenario subsystem (``repro.scenario``) is the single wiring layer:
it owns RNG stream naming (``ap:{name}`` shared between an AP and its
DHCP server), construction order (mobility, then deployment, then APs
in ``open_sites()`` order), and the trace events that announce a build.
An experiment module that constructs ``Medium``/``AccessPoint`` or
calls ``generate_deployment`` directly re-implements that wiring and
silently forks the determinism contract — its digests drift from every
scenario-built world with the same seed. This rule pins world
construction to the scenario package.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.core import Finding, ModuleUnit, ProjectContext, Rule, Severity, register_rule

#: World-building primitives whose call sites belong in the scenario
#: package; each maps the symbol to every import path it is visible
#: under (concrete module and package re-export).
_PRIMITIVES = {
    "Medium": ("repro.phy.radio.Medium", "repro.phy.Medium"),
    "AccessPoint": ("repro.mac.ap.AccessPoint", "repro.mac.AccessPoint"),
    "generate_deployment": (
        "repro.world.deployment.generate_deployment",
        "repro.world.generate_deployment",
    ),
}

_BANNED = {path: name for name, paths in _PRIMITIVES.items() for path in paths}


@register_rule
class WorldBuildViaScenario(Rule):
    """SL007: direct world construction outside ``repro.scenario``."""

    id = "SL007"
    name = "worldbuild-via-scenario"
    severity = Severity.ERROR
    description = "worlds must be built via repro.scenario, not by hand"

    def check(self, unit: ModuleUnit, project: ProjectContext) -> Iterator[Finding]:
        assert unit.tree is not None
        config = project.config
        if not config.in_sim_scope(unit.module):
            return
        if unit.in_package((config.scenario_package,)):
            return
        imports = ImportMap(unit.tree)
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(dotted_name(node.func))
            if resolved is None:
                continue
            name = _BANNED.get(resolved)
            if name is not None:
                yield self.finding(
                    unit.path,
                    node,
                    f"direct {name!r} construction outside {config.scenario_package} — "
                    f"build worlds via {config.scenario_package} (ScenarioSpec + build(), "
                    "or World.add_ap/populate_loop) so RNG streams and wiring order "
                    "stay on the determinism contract",
                )
