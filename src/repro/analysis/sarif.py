"""SARIF 2.1.0 export: simlint findings as a code-scanning interchange file.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest — GitHub's security tab renders each
result inline on the PR diff, with the rule metadata as hover help.
One :func:`to_sarif` call turns a :class:`~repro.analysis.engine.LintRun`
into a single-run SARIF log:

- every registered rule becomes a ``tool.driver.rules`` entry (id,
  name, short description, default severity level), so results can
  point at their rule by index;
- every actionable finding becomes a ``result`` with a physical
  location (1-based line/column, as SARIF requires — simlint columns
  are 0-based internally);
- a finding's related locations (e.g. the SL011 call chain) map to
  SARIF ``relatedLocations``, each with its own message, so the
  rendered result explains *why* the flagged line is reachable.

Suppressed and baselined findings are deliberately absent: the SARIF
file represents what the run would fail CI for, nothing else.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.core import RULES, Finding, Severity
from repro.analysis.engine import LintRun

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: simlint severity -> SARIF result level.
_LEVELS = {
    Severity.ERROR.value: "error",
    Severity.WARNING.value: "warning",
    Severity.INFO.value: "note",
}


def _location(path: str, line: int, col: int = 0) -> Dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "%SRCROOT%"},
            "region": {"startLine": max(line, 1), "startColumn": max(col, 0) + 1},
        }
    }


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    index = rule_index.get(finding.rule.upper())
    if index is not None:
        result["ruleIndex"] = index
    if finding.related:
        result["relatedLocations"] = [
            {**_location(loc.path, loc.line), "message": {"text": loc.message}}
            for loc in finding.related
        ]
    return result


def to_sarif(run: LintRun, tool_version: str = "2.0") -> Dict[str, object]:
    """The full SARIF log object for one lint run (JSON-serialisable)."""
    ordered = sorted(RULES)
    rule_index = {key: i for i, key in enumerate(ordered)}
    rules: List[Dict[str, object]] = [
        {
            "id": RULES[key].id,
            "name": RULES[key].name,
            "shortDescription": {"text": RULES[key].description},
            "defaultConfiguration": {
                "level": _LEVELS.get(RULES[key].severity.value, "warning")
            },
        }
        for key in ordered
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": [_result(f, rule_index) for f in run.findings],
            }
        ],
    }
