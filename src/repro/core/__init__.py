"""Spider: the paper's contribution.

Spider schedules a single physical Wi-Fi card among *channels* rather
than APs, keeps one uplink packet queue per channel, associates with
every usable AP on the current channel concurrently, selects APs by
join history, caches DHCP leases, and uses opportunistic scanning —
all driven by the analysis of Sec. 2 showing that at vehicular speeds
join success requires staying put on a channel.

Also provides a FatVAP-style AP-slicing scheduler
(:class:`~repro.core.fatvap.FatVapDriver`) as the architectural
contrast: it time-slices across individual APs, which is optimal for
stationary clients but pays PSM round-trips even between APs that
share a channel.
"""

from repro.core.config import SpiderConfig
from repro.core.dynamic import DynamicChannelSpider, DynamicConfig
from repro.core.fatvap import FatVapConfig, FatVapDriver
from repro.core.join_history import ApStats, JoinHistory
from repro.core.scheduler import ChannelScheduler, SwitchRecord
from repro.core.spider import SpiderDriver

__all__ = [
    "ApStats",
    "ChannelScheduler",
    "DynamicChannelSpider",
    "DynamicConfig",
    "FatVapConfig",
    "FatVapDriver",
    "JoinHistory",
    "SpiderConfig",
    "SpiderDriver",
    "SwitchRecord",
]
