"""Spider configuration.

The four evaluation configurations of Sec. 4.1 map directly:

1. single-channel single-AP:   schedule={ch: 1.0}, multi_ap=False
2. single-channel multi-AP:    schedule={ch: 1.0}, multi_ap=True
3. multi-channel multi-AP:     schedule={1: 1/3, 6: 1/3, 11: 1/3}
4. multi-channel single-AP:    same schedule, multi_ap=False
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.drivers.base import DriverConfig


@dataclass
class SpiderConfig(DriverConfig):
    """Spider's policy knobs on top of the shared driver config."""

    #: channel → fraction of the scheduling period spent there.
    schedule: Dict[int, float] = field(default_factory=lambda: {1: 1.0})
    #: D: the scheduling period in seconds (paper uses 400–600 ms).
    period: float = 0.6
    #: Join every usable AP on the channel (True) or only the best one.
    multi_ap: bool = True
    #: AP selection policy: "history" (Spider's heuristic), "rssi", "random".
    selection_policy: str = "history"
    #: Hardware-reset latency of a channel switch (Table 1: ~4.94 ms).
    hw_reset_mean: float = 4.94e-3
    hw_reset_jitter: float = 0.2e-3
    #: Announce PSM to associated APs around switches (ablation knob:
    #: without fake power-save, off-channel downlink is simply lost).
    use_psm: bool = True
    #: Send a probe request at each dwell start / periodically.
    probe_on_dwell: bool = True
    probe_interval: float = 0.5
    #: Do not retry an AP that just failed for this long.
    failure_backoff: float = 10.0
    #: Spider's DHCP client restarts a failed attempt window at once
    #: (the stock 60 s idle backoff is useless on the move), so the
    #: driver keeps the interface instead of tearing it down.
    dhcp_restart_immediately: bool = True
    teardown_on_dhcp_failure: bool = False

    def __post_init__(self) -> None:
        total = sum(self.schedule.values())
        if total > 1.0 + 1e-9:
            raise ValueError(f"schedule fractions sum to {total} > 1")
        if any(fraction <= 0 for fraction in self.schedule.values()):
            raise ValueError("schedule fractions must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def single_channel(self) -> bool:
        return len(self.schedule) == 1

    @staticmethod
    def single_channel_multi_ap(channel: int = 1, **kwargs) -> "SpiderConfig":
        return SpiderConfig(schedule={channel: 1.0}, multi_ap=True, **kwargs)

    @staticmethod
    def single_channel_single_ap(channel: int = 1, **kwargs) -> "SpiderConfig":
        return SpiderConfig(schedule={channel: 1.0}, multi_ap=False, **kwargs)

    @staticmethod
    def multi_channel_multi_ap(
        channels=(1, 6, 11), period: float = 0.6, **kwargs
    ) -> "SpiderConfig":
        fraction = 1.0 / len(channels)
        return SpiderConfig(
            schedule={ch: fraction for ch in channels},
            period=period,
            multi_ap=True,
            **kwargs,
        )

    @staticmethod
    def multi_channel_single_ap(
        channels=(1, 6, 11), period: float = 0.6, **kwargs
    ) -> "SpiderConfig":
        fraction = 1.0 / len(channels)
        return SpiderConfig(
            schedule={ch: fraction for ch in channels},
            period=period,
            multi_ap=False,
            **kwargs,
        )
