"""Dynamic channel selection (the paper's stated future work).

Sec. 4.8: "Spider does not dynamically determine the best channel to
dwell on. Exploring optimal channel selection schemes that use AP
density and offered bandwidth on orthogonal channels at different
locations requires future work."

``DynamicChannelSpider`` implements the natural scheme: it alternates
between short *survey* sweeps across the orthogonal channels (scoring
each by APs heard and bytes delivered there) and long *dwell* phases
dedicated to the best-scoring channel — so it converges on
single-channel multi-AP behaviour wherever one channel dominates, while
re-surveying often enough to follow the environment as the vehicle
moves.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.config import SpiderConfig
from repro.core.spider import SpiderDriver


@dataclass
class DynamicConfig(SpiderConfig):
    """Survey/dwell cadence for dynamic channel selection."""

    candidate_channels: Tuple[int, ...] = (1, 6, 11)
    survey_slot: float = 0.3  # per-channel time during a survey sweep
    dwell_duration: float = 8.0  # committed time on the chosen channel
    #: weight of delivered bytes vs AP count when scoring a channel
    bytes_weight: float = 1e-5

    def __post_init__(self) -> None:
        # Start on the first candidate; the scheduler is driven by our
        # own survey/dwell process rather than static fractions.
        self.schedule = {self.candidate_channels[0]: 1.0}
        super().__post_init__()


class DynamicChannelSpider(SpiderDriver):
    """Spider that picks its dwelling channel from what it observes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.config: DynamicConfig = self.config
        self._bytes_by_channel: Dict[int, int] = {}
        self.channel_decisions: list = []
        # One uplink queue per candidate channel (the static parent only
        # provisions the initial schedule's channels).
        for channel in self.config.candidate_channels:
            self._uplink_queues.setdefault(channel, deque())

    def on_start(self) -> None:
        super().on_start()
        self.sim.process(self._survey_dwell_loop())

    # -- scoring ---------------------------------------------------------

    def _score(self, channel: int) -> float:
        """AP density plus recent goodput on the channel."""
        heard = len(self.scanner.current(channel=channel))
        recent_bytes = self._bytes_by_channel.get(channel, 0)
        return heard + self.config.bytes_weight * recent_bytes

    # -- survey/dwell ------------------------------------------------------

    def _retune(self, channel: int):
        if self.radio.channel == channel:
            return
        reset = self.config.hw_reset_mean
        self.radio.set_channel(channel)
        self.radio.go_deaf(reset)
        yield self.sim.timeout(reset)
        self.drain_uplink_queue(channel)

    def _survey_dwell_loop(self):
        config = self.config
        while self._running:
            # Survey: sample every candidate channel briefly.
            self._bytes_by_channel.clear()
            before = self.recorder.total_bytes
            for channel in config.candidate_channels:
                if not self._running:
                    return
                yield from self._retune(channel)
                self.probe_current_channel()
                start_bytes = self.recorder.total_bytes
                yield self.sim.timeout(config.survey_slot)
                self._bytes_by_channel[channel] = self.recorder.total_bytes - start_bytes
            # Decide and dwell.
            best = max(config.candidate_channels, key=self._score)
            self.channel_decisions.append((self.sim.now, best))
            # Serve existing and new APs on the chosen channel only.
            self.config.schedule = {best: 1.0}
            yield from self._retune(best)
            self.on_dwell_start(best)
            yield self.sim.timeout(config.dwell_duration)

    # -- hooks --------------------------------------------------------------

    def _join_candidates(self, channel: int) -> None:
        # Dynamic mode joins on whatever channel the card currently
        # dwells (the schedule map is rewritten per decision).
        if channel not in self.config.schedule:
            return
        super()._join_candidates(channel)
