"""FatVAP-style AP-slicing driver (architectural contrast / ablation).

FatVAP (NSDI'08) time-slices the card across *APs*: each joined AP gets
a share of the scheduling period, and the client PSM-sleeps at every
other AP while serving one — even when two APs share a channel. That is
optimal for stationary clients choosing among backhauls, but it is
exactly what Spider departs from: channel-based scheduling talks to all
same-channel APs simultaneously and pays zero switching between them.

This implementation captures the scheduling architecture (per-AP slots,
PSM juggling, per-AP uplink queues) with RSSI-based AP selection as a
stand-in for FatVAP's bandwidth estimator; it exists to ablate
channel-based vs AP-based slicing (DESIGN.md §5), not to reproduce
FatVAP's estimator.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.drivers.base import BaseDriver, DriverConfig, VirtualInterface
from repro.mac import frames
from repro.net.backhaul import ApRouter
from repro.phy.radio import Medium
from repro.sim.engine import Simulator
from repro.world.mobility import MobilityModel


@dataclass
class FatVapConfig(DriverConfig):
    """AP-slicing knobs."""

    channels: Tuple[int, ...] = (1, 6, 11)
    period: float = 0.6
    hw_reset_mean: float = 4.94e-3
    probe_interval: float = 0.5


class FatVapDriver(BaseDriver):
    """Time-slices the card across individual APs."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        mobility: MobilityModel,
        address: str = "fatvap",
        config: Optional[FatVapConfig] = None,
        router_lookup: Optional[Callable[[str], Optional[ApRouter]]] = None,
        rng: Optional[random.Random] = None,
    ):
        config = config or FatVapConfig()
        super().__init__(
            sim,
            medium,
            mobility,
            address,
            config=config,
            router_lookup=router_lookup,
            initial_channel=config.channels[0],
        )
        self.config: FatVapConfig = config
        self.medium = medium
        self._rng = rng or random.Random(0xFA7)
        self._uplink_queues: Dict[str, Deque[frames.Frame]] = {}
        self._active_ap: Optional[str] = None
        self._last_probe_at = -1e9

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        self.sim.process(self._loop())

    # -- scheduling -------------------------------------------------------------

    def _loop(self):
        config = self.config
        while self._running:
            interfaces = [i for i in self.interfaces.values() if i.associated]
            if not interfaces:
                # Discovery phase: sample the configured channels. The
                # dwell is yielded unconditionally so the loop always
                # makes simulated-time progress even while a join is
                # mid-flight.
                for channel in config.channels:
                    if not self._running:
                        return
                    yield from self._retune(channel)
                    self.probe_current_channel()
                    yield self.sim.timeout(config.period / len(config.channels))
                    if self.interfaces:
                        break
                self._join_all_heard()
                continue
            share = config.period / len(interfaces)
            for interface in interfaces:
                if not self._running:
                    return
                if interface.ap_name not in self.interfaces:
                    continue  # torn down mid-cycle
                yield from self._activate(interface)
                yield self.sim.timeout(share)
                self._deactivate(interface)
            self._join_all_heard()

    def _retune(self, channel: int):
        if self.radio.channel == channel:
            return
        self.radio.set_channel(channel)
        self.radio.go_deaf(self.config.hw_reset_mean)
        yield self.sim.timeout(self.config.hw_reset_mean)

    def _activate(self, interface: VirtualInterface):
        """Move the card to the interface's AP and wake it."""
        yield from self._retune(interface.channel)
        self._active_ap = interface.ap_name
        frame = frames.null_data(self.address, interface.ap_name, pm=False)
        if self.radio.transmit(frame):
            yield self.sim.timeout(self.medium.airtime(frame))
        self._drain_queue(interface.ap_name)

    def _deactivate(self, interface: VirtualInterface) -> None:
        """PSM-sleep at the AP whose slot just ended."""
        self._active_ap = None
        if interface.ap_name in self.interfaces and interface.associated:
            self.radio.transmit(frames.null_data(self.address, interface.ap_name, pm=True))

    # -- joining ---------------------------------------------------------------------

    def _join_all_heard(self) -> None:
        if self.sim.now - self._last_probe_at >= self.config.probe_interval:
            self._last_probe_at = self.sim.now
            self.probe_current_channel()
        candidates = [
            obs
            for obs in self.scanner.current()
            if obs.channel in self.config.channels and obs.name not in self.interfaces
        ]
        candidates.sort(key=lambda obs: obs.rssi, reverse=True)
        for observation in candidates:
            if len(self.interfaces) >= self.config.max_interfaces:
                break
            self.join(observation)

    # -- uplink policy ------------------------------------------------------------------

    def send_data_payload(
        self, interface: VirtualInterface, payload: object, size: int
    ) -> bool:
        frame = frames.data_frame(self.address, interface.ap_name, payload, size)
        if (
            self._active_ap == interface.ap_name
            and self.radio.channel == interface.channel
            and not self.radio.deaf
        ):
            return self.radio.transmit(frame)
        queue = self._uplink_queues.setdefault(interface.ap_name, deque())
        if len(queue) >= self.config.uplink_queue_frames:
            queue.popleft()
        queue.append(frame)
        return False

    def _drain_queue(self, ap_name: str) -> None:
        queue = self._uplink_queues.get(ap_name)
        if not queue:
            return
        while queue:
            self.radio.transmit(queue.popleft())
