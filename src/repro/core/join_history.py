"""Join-history AP selection state.

The paper (Sec. 3): selecting the utility-maximal AP set is NP-hard, so
Spider uses a heuristic driven by the observation that *join time* is
the critical factor at vehicular speeds — "instead of choosing APs with
maximum end-to-end bandwidth, we select APs that have the best history
of successful joins."

``JoinHistory`` keeps per-AP attempt/success counts and an exponential
moving average of join times; :meth:`score` rewards high success rates
and short joins, and unknown APs get an optimistic prior so new
territory is still explored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class ApStats:
    """Accumulated join outcomes for one AP."""

    attempts: int = 0
    successes: int = 0
    ema_join_time: Optional[float] = None
    last_failed_at: Optional[float] = None

    EMA_WEIGHT = 0.3

    @property
    def success_rate(self) -> float:
        if self.attempts == 0:
            return 1.0  # optimistic prior
        return self.successes / self.attempts

    def record_success(self, join_time: float) -> None:
        self.attempts += 1
        self.successes += 1
        if self.ema_join_time is None:
            self.ema_join_time = join_time
        else:
            self.ema_join_time = (
                self.EMA_WEIGHT * join_time + (1 - self.EMA_WEIGHT) * self.ema_join_time
            )

    def record_failure(self, now: float) -> None:
        self.attempts += 1
        self.last_failed_at = now


class JoinHistory:
    """Per-AP join statistics plus failure backoff."""

    #: Prior join time (s) assumed for never-attempted APs.
    OPTIMISTIC_JOIN_TIME = 1.5

    def __init__(self, failure_backoff: float = 10.0):
        self.failure_backoff = failure_backoff
        self._stats: Dict[str, ApStats] = {}

    def stats(self, ap: str) -> ApStats:
        entry = self._stats.get(ap)
        if entry is None:
            entry = ApStats()
            self._stats[ap] = entry
        return entry

    def record_success(self, ap: str, join_time: float) -> None:
        self.stats(ap).record_success(join_time)

    def record_failure(self, ap: str, now: float) -> None:
        self.stats(ap).record_failure(now)

    def blacklisted(self, ap: str, now: float) -> bool:
        """True while the AP is in post-failure backoff."""
        entry = self._stats.get(ap)
        if entry is None or entry.last_failed_at is None:
            return False
        return now - entry.last_failed_at < self.failure_backoff

    def score(self, ap: str, now: float) -> float:
        """Higher is better: success rate per unit expected join time.

        Blacklisted APs score -inf so they are never selected during
        backoff.
        """
        if self.blacklisted(ap, now):
            return float("-inf")
        entry = self._stats.get(ap)
        if entry is None:
            return 1.0 / (1.0 + self.OPTIMISTIC_JOIN_TIME)
        join_time = (
            entry.ema_join_time
            if entry.ema_join_time is not None
            else self.OPTIMISTIC_JOIN_TIME
        )
        return entry.success_rate / (1.0 + join_time)

    def known_aps(self) -> Dict[str, ApStats]:
        return dict(self._stats)
