"""Channel scheduler: the mechanism behind Spider's switching.

A switch away from a channel sends a PSM null (PM bit set) to every
associated AP there, so APs buffer downlink traffic; the hardware reset
then retunes the card (≈5 ms, Table 1); arriving on the new channel,
the driver clears PSM (null with PM off — the "PSM poll" of Sec. 4.2)
at each associated AP, which flushes their buffers, and drains the
per-channel uplink queue. Every switch is logged as a
:class:`SwitchRecord` so Table 1 can be regenerated.

In the single-channel configurations no switching happens at all —
Spider "incurs no switching overhead for interfaces on the same
channel".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.mac import frames
from repro.obs import trace as tr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.spider import SpiderDriver


@dataclass
class SwitchRecord:
    """One channel switch, for the Table 1 micro-benchmark."""

    at: float
    from_channel: int
    to_channel: int
    connected_interfaces: int
    latency: float


class ChannelScheduler:
    """Round-robins the radio over the configured channel fractions."""

    def __init__(self, driver: "SpiderDriver", rng: random.Random):
        self.driver = driver
        self._rng = rng
        self.config = driver.config
        self.switches: List[SwitchRecord] = []
        self._running = False
        self.current_channel: int = next(iter(self.config.schedule))

    @property
    def slots(self) -> List[Tuple[int, float]]:
        return list(self.config.schedule.items())

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.driver.radio.set_channel(self.current_channel)
        if not self.config.single_channel:
            self.driver.sim.process(self._loop())

    def stop(self) -> None:
        self._running = False

    # -- the scheduling loop ----------------------------------------------

    def _loop(self):
        sim = self.driver.sim
        while self._running:
            for channel, fraction in self.slots:
                if not self._running:
                    return
                latency = yield from self._switch_to(channel)
                dwell = max(0.0, fraction * self.config.period - latency)
                trace = sim.trace
                if trace is not None:
                    trace.emit(
                        tr.SCHED_SLOT, sim.now, channel=channel, dwell=dwell,
                        fraction=fraction,
                    )
                self.driver.on_dwell_start(channel)
                yield sim.timeout(dwell)

    def _hw_reset_latency(self) -> float:
        jitter = self._rng.gauss(0.0, self.config.hw_reset_jitter)
        return max(1e-4, self.config.hw_reset_mean + jitter)

    def _switch_to(self, channel: int):
        """Perform one switch; returns its latency (generator helper)."""
        driver = self.driver
        sim = driver.sim
        radio = driver.radio
        old_channel = radio.channel
        if old_channel == channel:
            return 0.0
        started = sim.now
        connected = len(driver.connected_interfaces())

        # 1. Tell every associated AP on the old channel we are sleeping.
        #    CSMA: the nulls queue behind whatever is already on the air,
        #    and the card must not retune until they (and the frames
        #    ahead of them) have gone out, or in-flight downlink data
        #    would be sprayed at a departed client.
        trace = sim.trace
        if self.config.use_psm:
            for interface in driver.associated_interfaces(old_channel):
                if trace is not None:
                    trace.emit(
                        tr.PSM_ENTER, sim.now, client=driver.address,
                        ap=interface.ap_name, channel=old_channel,
                    )
                radio.transmit(
                    frames.null_data(driver.address, interface.ap_name, pm=True)
                )
            air_clear = driver.medium.channel_busy_until(old_channel) - sim.now
            if air_clear > 0:
                yield sim.timeout(air_clear)

        # 2. Hardware reset: the card is deaf while it retunes.
        reset = self._hw_reset_latency()
        radio.set_channel(channel)
        radio.go_deaf(reset)
        yield sim.timeout(reset)
        self.current_channel = channel

        # 3. Wake every associated AP on the new channel (flushes PSM).
        if self.config.use_psm:
            poll_time = 0.0
            for interface in driver.associated_interfaces(channel):
                if trace is not None:
                    trace.emit(
                        tr.PSM_EXIT, sim.now, client=driver.address,
                        ap=interface.ap_name, channel=channel,
                    )
                frame = frames.null_data(driver.address, interface.ap_name, pm=False)
                if radio.transmit(frame):
                    poll_time += driver.medium.airtime(frame)
            if poll_time > 0:
                yield sim.timeout(poll_time)

        # 4. Drain data queued for this channel while we were away.
        driver.drain_uplink_queue(channel)

        latency = sim.now - started
        self.switches.append(
            SwitchRecord(
                at=started,
                from_channel=old_channel,
                to_channel=channel,
                connected_interfaces=connected,
                latency=latency,
            )
        )
        if trace is not None:
            trace.emit(
                tr.SCHED_SWITCH, sim.now, from_channel=old_channel,
                to_channel=channel, latency=latency, connected=connected,
            )
        metrics = sim.metrics
        if metrics is not None:
            metrics.counter("sched.switches_total").inc()
            metrics.histogram("sched.switch_latency_s").observe(latency)
        return latency

    # -- micro-benchmark helper ---------------------------------------------

    def switch_latency_by_interfaces(self) -> Dict[int, List[float]]:
        """Latencies grouped by the number of connected interfaces."""
        grouped: Dict[int, List[float]] = {}
        for record in self.switches:
            grouped.setdefault(record.connected_interfaces, []).append(record.latency)
        return grouped
