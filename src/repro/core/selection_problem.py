"""The multi-AP selection problem (Sec. 3 / technical-report App. A).

The paper: "selecting multiple APs while maximizing a given system
utility function is NP-hard. Consequently, Spider uses a simple
heuristic."

This module states the underlying optimisation problem explicitly and
provides three solvers to quantify what the heuristic gives up:

- :func:`solve_exact` — exhaustive search over AP subsets (exponential;
  fine for the ≤ 7-interface regime Spider operates in);
- :func:`solve_greedy_bandwidth` — pick APs by offered end-to-end
  bandwidth (what a static system like FatVAP approximates);
- :func:`solve_join_history` — Spider's heuristic: rank by join-history
  score, ignore bandwidth.

**The problem.** Each candidate AP *i* has an offered end-to-end
bandwidth ``b_i``, an expected join time ``g_i``, and sits on channel
``c_i``; the client will be in range for ``T`` seconds and can hold at
most ``k`` concurrent interfaces. Joining a set S forces the card to
visit every channel used by S; a channel visited with schedule fraction
``f`` delivers each of its APs only ``f`` of its bandwidth, and an AP
only delivers after its join completes (``max(0, T − g_i/f)`` of useful
time — joining goes slower off-channel, which is the paper's central
observation). The utility of S under the best uniform per-channel
schedule is what we maximise. The knapsack-like coupling between
channel choice and join feasibility is what makes the general problem
NP-hard.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class CandidateAp:
    """One AP the client could join."""

    name: str
    channel: int
    bandwidth_bps: float
    expected_join_time: float
    join_history_score: float = 0.0


@dataclass
class SelectionOutcome:
    """A chosen AP set and its computed utility."""

    aps: Tuple[CandidateAp, ...]
    utility: float  # expected bytes deliverable over the encounter

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(ap.name for ap in self.aps)


def utility(
    selection: Sequence[CandidateAp],
    in_range_time: float,
    switch_overhead: float = 0.007,
    period: float = 0.6,
    air_capacity_bps: float = 20e6,
) -> float:
    """Expected bytes delivered by a selection over the encounter.

    The card splits the period uniformly over the selection's channels
    (Spider's static multi-channel schedule); each switch costs
    ``switch_overhead`` out of the period. An AP's join takes
    ``g_i / f`` wall-clock seconds at schedule fraction ``f`` (joins
    only progress on-channel), after which it delivers
    ``min(b_i, f · air_capacity)`` — its backhaul, unless the schedule
    fraction starves the air. The backhaul/air distinction is what
    makes visiting a second channel worthwhile on long encounters and
    useless on short ones.
    """
    if not selection:
        return 0.0
    channels = sorted({ap.channel for ap in selection})
    switches = len(channels) if len(channels) > 1 else 0
    usable = max(0.0, 1.0 - switches * switch_overhead / period)
    fraction = usable / len(channels)
    if fraction <= 0.0:
        return 0.0
    total = 0.0
    for channel in channels:
        group = [ap for ap in selection if ap.channel == channel]
        # The channel's air is shared by its APs: scale the group down
        # if their combined backhaul exceeds the schedule's air share.
        combined = sum(min(ap.bandwidth_bps, air_capacity_bps) for ap in group)
        air_share = fraction * air_capacity_bps
        scale = min(1.0, air_share / combined) if combined > 0 else 0.0
        for ap in group:
            join_wallclock = ap.expected_join_time / fraction
            useful = max(0.0, in_range_time - join_wallclock)
            total += scale * min(ap.bandwidth_bps, air_capacity_bps) * useful / 8.0
    return total


def solve_exact(
    candidates: Sequence[CandidateAp],
    in_range_time: float,
    max_interfaces: int = 7,
    **utility_kwargs,
) -> SelectionOutcome:
    """Exhaustive search: optimal, exponential in ``len(candidates)``.

    Practical only for small candidate sets — which is the point: the
    general problem is NP-hard, so a driver cannot afford this online.
    """
    best: Tuple[float, Tuple[CandidateAp, ...]] = (0.0, ())
    for size in range(1, min(max_interfaces, len(candidates)) + 1):
        for subset in itertools.combinations(candidates, size):
            value = utility(subset, in_range_time, **utility_kwargs)
            if value > best[0]:
                best = (value, subset)
    return SelectionOutcome(aps=best[1], utility=best[0])


def solve_greedy_bandwidth(
    candidates: Sequence[CandidateAp],
    in_range_time: float,
    max_interfaces: int = 7,
    **utility_kwargs,
) -> SelectionOutcome:
    """Greedy by offered bandwidth, growing while utility improves."""
    ranked = sorted(candidates, key=lambda ap: ap.bandwidth_bps, reverse=True)
    chosen: List[CandidateAp] = []
    best_value = 0.0
    for ap in ranked[:max_interfaces]:
        trial = chosen + [ap]
        value = utility(trial, in_range_time, **utility_kwargs)
        if value > best_value:
            chosen = trial
            best_value = value
    return SelectionOutcome(aps=tuple(chosen), utility=best_value)


def solve_join_history(
    candidates: Sequence[CandidateAp],
    in_range_time: float,
    max_interfaces: int = 7,
    single_channel: bool = True,
    **utility_kwargs,
) -> SelectionOutcome:
    """Spider's heuristic: best join history, one channel.

    Ranks by history score; when ``single_channel`` (Spider's operating
    point at vehicular speed) it takes the best-scoring AP's channel
    and joins the top APs on that channel only.
    """
    ranked = sorted(candidates, key=lambda ap: ap.join_history_score, reverse=True)
    if not ranked:
        return SelectionOutcome(aps=(), utility=0.0)
    if single_channel:
        channel = ranked[0].channel
        ranked = [ap for ap in ranked if ap.channel == channel]
    chosen = tuple(ranked[:max_interfaces])
    return SelectionOutcome(
        aps=chosen, utility=utility(chosen, in_range_time, **utility_kwargs)
    )


def optimality_gap(
    candidates: Sequence[CandidateAp],
    in_range_time: float,
    max_interfaces: int = 7,
) -> Dict[str, float]:
    """Fraction of the exact optimum each heuristic achieves."""
    exact = solve_exact(candidates, in_range_time, max_interfaces)
    greedy = solve_greedy_bandwidth(candidates, in_range_time, max_interfaces)
    history = solve_join_history(candidates, in_range_time, max_interfaces)
    denominator = exact.utility or 1.0
    return {
        "exact": 1.0,
        "greedy_bandwidth": greedy.utility / denominator,
        "join_history": history.utility / denominator,
    }
