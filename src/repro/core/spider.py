"""The Spider driver.

Composes the pieces: the channel scheduler (time slices over channels,
not APs), per-channel uplink queues swapped in and out as the card
moves, join-history AP selection, opportunistic scanning, and DHCP
lease caching. Policy follows Sec. 3 of the paper; the defaults follow
its evaluation setup.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.config import SpiderConfig
from repro.core.join_history import JoinHistory
from repro.core.scheduler import ChannelScheduler
from repro.drivers.base import ApObservation, BaseDriver, VirtualInterface
from repro.mac import frames
from repro.net.backhaul import ApRouter
from repro.obs import trace as tr
from repro.phy.radio import Medium
from repro.sim.engine import Simulator
from repro.world.mobility import MobilityModel


class SpiderDriver(BaseDriver):
    """Concurrent multi-AP driver for mobile clients."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        mobility: MobilityModel,
        address: str = "spider",
        config: Optional[SpiderConfig] = None,
        router_lookup: Optional[Callable[[str], Optional[ApRouter]]] = None,
        rng: Optional[random.Random] = None,
    ):
        config = config or SpiderConfig()
        first_channel = next(iter(config.schedule))
        super().__init__(
            sim,
            medium,
            mobility,
            address,
            config=config,
            router_lookup=router_lookup,
            initial_channel=first_channel,
        )
        self.config: SpiderConfig = config
        self.medium = medium
        self._rng = rng or random.Random(0xF1D0)
        self.history = JoinHistory(failure_backoff=config.failure_backoff)
        self.scheduler = ChannelScheduler(self, self._rng)
        self._uplink_queues: Dict[int, Deque[frames.Frame]] = {
            channel: deque() for channel in config.schedule
        }
        self._last_probe_at: float = -1e9

    # -- lifecycle -----------------------------------------------------------

    def on_start(self) -> None:
        self.scheduler.start()
        self._probe_if_due(force=True)

    def stop(self) -> None:
        self.scheduler.stop()
        super().stop()

    # -- scheduler hooks --------------------------------------------------------

    def on_dwell_start(self, channel: int) -> None:
        """Called by the scheduler when a dwell on ``channel`` begins."""
        if self.config.probe_on_dwell:
            self._probe_if_due(force=True)
        # Quick sampling: restart pending DHCP exchanges immediately —
        # the rest of their retry timers would burn on-channel time.
        for interface in self.interfaces.values():
            if interface.channel == channel and interface.associated:
                interface.dhcp.nudge()
        self._join_candidates(channel)

    def drain_uplink_queue(self, channel: int) -> None:
        """Flush data frames queued for this channel while we were away."""
        queue = self._uplink_queues.get(channel)
        if not queue:
            return
        while queue:
            self.radio.transmit(queue.popleft())

    # -- periodic policy ------------------------------------------------------------

    def on_tick(self) -> None:
        self._probe_if_due()
        self._join_candidates(self.radio.channel)

    def _probe_if_due(self, force: bool = False) -> None:
        if not self.config.probe_on_dwell:
            return
        if force or self.sim.now - self._last_probe_at >= self.config.probe_interval:
            self._last_probe_at = self.sim.now
            self.probe_current_channel()

    # -- AP selection --------------------------------------------------------------

    def _selection_key(self, observation: ApObservation) -> float:
        policy = self.config.selection_policy
        if policy == "history":
            return self.history.score(observation.name, self.sim.now)
        if policy == "rssi":
            return observation.rssi
        if policy == "random":
            return self._rng.random()
        raise ValueError(f"unknown selection policy: {policy}")

    def _join_candidates(self, channel: int) -> None:
        """Join APs heard on ``channel`` according to the config."""
        if channel not in self.config.schedule:
            return
        candidates = [
            obs
            for obs in self.scanner.current(channel=channel)
            if obs.name not in self.interfaces
            and not self.history.blacklisted(obs.name, self.sim.now)
        ]
        if not candidates:
            return
        candidates.sort(key=self._selection_key, reverse=True)
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.DRIVER_SELECT, self.sim.now, client=self.address,
                channel=channel, policy=self.config.selection_policy,
                candidates=[obs.name for obs in candidates],
            )
        if self.config.multi_ap:
            for observation in candidates:
                if len(self.interfaces) >= self.config.max_interfaces:
                    break
                self.join(observation)
        else:
            if not self.interfaces:
                self.join(candidates[0])

    # -- outcome hooks -----------------------------------------------------------------

    def on_interface_connected(self, interface: VirtualInterface) -> None:
        join_time = interface.record.join_time
        if join_time is not None:
            self.history.record_success(interface.ap_name, join_time)

    def on_interface_failed(self, interface: VirtualInterface, stage: str) -> None:
        self.history.record_failure(interface.ap_name, self.sim.now)

    # -- uplink policy ---------------------------------------------------------------------

    def send_data_payload(
        self, interface: VirtualInterface, payload: object, size: int
    ) -> bool:
        """Per-channel queueing: send now if on channel, else queue.

        This is Spider's "one packet queue per channel that is swapped
        in and out of the driver" (Sec. 3).
        """
        frame = frames.data_frame(self.address, interface.ap_name, payload, size)
        if self.radio.channel == interface.channel and not self.radio.deaf:
            return self.radio.transmit(frame)
        queue = self._uplink_queues.get(interface.channel)
        if queue is None:
            return False  # AP on an unscheduled channel: cannot serve it
        if len(queue) >= self.config.uplink_queue_frames:
            queue.popleft()  # drop-oldest keeps ACK clocking fresh
        queue.append(frame)
        return False

    # -- reporting ---------------------------------------------------------------------------

    def switch_latency_table(self) -> Dict[int, List[float]]:
        """Table 1's raw data: switch latencies keyed by #interfaces."""
        return self.scheduler.switch_latency_by_interfaces()
