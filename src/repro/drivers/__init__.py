"""Client-side Wi-Fi drivers.

- :mod:`repro.drivers.base` — shared machinery: virtual interfaces
  (association + DHCP + TCP flow per AP), frame dispatch, scanning
  observations, join bookkeeping.
- :mod:`repro.drivers.stock` — the stock single-AP driver (MadWiFi-like
  baseline): full-band scan, best-RSSI selection, default timers.
- :mod:`repro.drivers.multicard` — N independent stock cards (the
  "two cards, stock" baseline of Fig. 9).

Spider itself lives in :mod:`repro.core`.
"""

from repro.drivers.base import (
    ApObservation,
    BaseDriver,
    DriverConfig,
    Scanner,
    VirtualInterface,
)
from repro.drivers.multicard import MultiCardDriver
from repro.drivers.stock import StockConfig, StockDriver

__all__ = [
    "ApObservation",
    "BaseDriver",
    "DriverConfig",
    "MultiCardDriver",
    "Scanner",
    "StockConfig",
    "StockDriver",
    "VirtualInterface",
]
