"""Shared client-driver machinery.

A driver owns one radio and manages *virtual interfaces*: one per AP
the client is (or is becoming) connected to. Each interface composes
the three protocol stages whose interplay the paper studies —
link-layer association, DHCP, then a TCP bulk download — and reports
its timeline into a :class:`~repro.metrics.collector.JoinLog`.

Concrete drivers (stock, Spider) differ in *policy*: which channels the
radio visits and when, which APs are joined, and whether uplink traffic
is queued per channel while the radio is elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.mac import frames
from repro.mac.association import AssociationConfig, AssociationMachine
from repro.mac.frames import Frame, FrameType
from repro.metrics.collector import JoinLog, JoinRecord, ThroughputRecorder
from repro.net.backhaul import ApRouter
from repro.net.dhcp import DhcpClient, DhcpClientConfig, DhcpMessage, Lease
from repro.net.tcp import TcpConfig, TcpSegment
from repro.net.traffic import BulkDownload
from repro.net.udp import UdpDatagram, VoipStream
from repro.obs import trace as tr
from repro.phy.radio import Medium, Radio
from repro.sim.engine import Simulator
from repro.world.mobility import MobilityModel


@dataclass
class ApObservation:
    """What the client knows about a heard AP."""

    name: str
    channel: int
    last_seen: float
    rssi: float


class Scanner:
    """Passive + active scanning observations.

    Beacons and probe responses both feed :meth:`observe`. Observations
    age out after ``horizon`` seconds — a moving client forgets APs it
    can no longer hear.
    """

    def __init__(self, sim: Simulator, horizon: float = 5.0):
        self.sim = sim
        self.horizon = horizon
        self._seen: Dict[str, ApObservation] = {}

    def observe(self, name: str, channel: int, rssi: float) -> None:
        self._seen[name] = ApObservation(name, channel, self.sim.now, rssi)

    def forget(self, name: str) -> None:
        self._seen.pop(name, None)

    def current(self, channel: Optional[int] = None) -> List[ApObservation]:
        """Fresh observations, optionally restricted to one channel."""
        cutoff = self.sim.now - self.horizon
        return [
            obs
            for obs in self._seen.values()
            if obs.last_seen >= cutoff and (channel is None or obs.channel == channel)
        ]

    def last_seen(self, name: str) -> Optional[float]:
        obs = self._seen.get(name)
        return obs.last_seen if obs is not None else None


@dataclass
class DriverConfig:
    """Policy-independent driver knobs (timers are the paper's)."""

    max_interfaces: int = 7
    link_timeout: float = 1.0  # per-message link-layer timer
    dhcp_retry_timeout: float = 1.0  # per-message DHCP timer
    dhcp_attempt_window: float = 3.0
    dhcp_idle_backoff: float = 60.0
    dhcp_restart_immediately: bool = False
    lease_cache_enabled: bool = True
    teardown_on_dhcp_failure: bool = True
    ap_silence_timeout: float = 4.0  # unheard this long → connection lost
    maintenance_interval: float = 0.5
    uplink_queue_frames: int = 200
    #: Start a bulk download automatically on every joined AP (the
    #: paper's workload). Disable for latency-sensitive studies (VoIP).
    auto_flow: bool = True
    tcp: TcpConfig = field(default_factory=TcpConfig)

    def association_config(self) -> AssociationConfig:
        return AssociationConfig(link_timeout=self.link_timeout)

    def dhcp_config(self) -> DhcpClientConfig:
        return DhcpClientConfig(
            retry_timeout=self.dhcp_retry_timeout,
            attempt_window=self.dhcp_attempt_window,
            idle_backoff=self.dhcp_idle_backoff,
            restart_immediately=self.dhcp_restart_immediately,
        )


class VirtualInterface:
    """One client ↔ AP binding: association → DHCP → TCP flow."""

    def __init__(
        self,
        driver: "BaseDriver",
        ap_name: str,
        channel: int,
        router: Optional[ApRouter],
        record: JoinRecord,
    ):
        self.driver = driver
        self.ap_name = ap_name
        self.channel = channel
        self.router = router
        self.record = record
        self.flow: Optional[BulkDownload] = None
        self.voip: Optional[VoipStream] = None
        sim = driver.sim
        config = driver.config
        self.assoc = AssociationMachine(
            sim,
            driver.radio,
            driver.address,
            ap_name,
            channel,
            config=config.association_config(),
            on_result=self._on_assoc_result,
        )
        self.dhcp = DhcpClient(
            sim,
            driver.address,
            ap_name,
            config=config.dhcp_config(),
            transmit=self._send_dhcp,
            on_bound=self._on_dhcp_bound,
            on_failed=self._on_dhcp_failed,
        )

    # -- state -----------------------------------------------------------

    @property
    def associated(self) -> bool:
        return self.assoc.associated

    @property
    def connected(self) -> bool:
        """Fully joined: associated and holding a lease."""
        return self.assoc.associated and self.dhcp.bound

    def start(self) -> None:
        self.assoc.start()

    def teardown(self) -> None:
        self.sync_record_counters()
        if self.flow is not None:
            self.flow.stop()
            self.flow = None
        if self.voip is not None:
            self.voip.stop()
            self.voip = None
        self.assoc.abort()
        self.dhcp.abort()

    def sync_record_counters(self) -> None:
        """Copy message-level DHCP accounting into the join record."""
        self.record.dhcp_transmissions = self.dhcp.total_transmissions
        self.record.dhcp_message_timeouts = self.dhcp.message_timeouts

    def attach_voip(
        self, interval: float = 0.020, payload_bytes: int = 200
    ) -> Optional[VoipStream]:
        """Start a VoIP-style CBR stream through this interface.

        Returns None if the interface has no router (no wired side).
        """
        if self.router is None or self.voip is not None:
            return self.voip
        client = self.driver.address
        self.voip = VoipStream(
            self.driver.sim,
            send=lambda datagram: self.router.send_down(client, datagram),
            interval=interval,
            payload_bytes=payload_bytes,
        )
        self.voip.start()
        return self.voip

    # -- stage transitions ------------------------------------------------

    def _on_assoc_result(self, machine: AssociationMachine, success: bool) -> None:
        if not success:
            self.record.failed_at = self.driver.sim.now
            self.driver._on_interface_failed(self, stage="association")
            return
        self.record.associated_at = self.driver.sim.now
        cached = self.driver.cached_lease(self.ap_name)
        if cached is not None:
            self.record.used_cached_lease = True
            self.dhcp.bind_cached(cached)
        else:
            self.dhcp.start()

    def _on_dhcp_bound(self, client: DhcpClient, lease: Lease) -> None:
        self.record.bound_at = self.driver.sim.now
        self.sync_record_counters()
        self.driver.store_lease(self.ap_name, lease)
        self._start_flow()
        self.driver._on_interface_connected(self)

    def _on_dhcp_failed(self, client: DhcpClient) -> None:
        self.record.dhcp_failures += 1
        self.sync_record_counters()
        self.driver._on_interface_failed(self, stage="dhcp")

    def _start_flow(self) -> None:
        if self.router is None or self.flow is not None:
            return
        if not self.driver.config.auto_flow:
            return
        self.flow = BulkDownload(
            self.driver.sim,
            self.router,
            self.driver.address,
            send_uplink=self._send_tcp,
            tcp_config=self.driver.config.tcp,
            on_deliver=self.driver.recorder.record,
        )
        self.flow.start()

    # -- uplink ------------------------------------------------------------

    def _send_dhcp(self, message: DhcpMessage) -> bool:
        """DHCP messages are join traffic: sent only while on channel."""
        return self.driver.send_join_payload(self, message, message.size_bytes)

    def _send_tcp(self, segment: TcpSegment) -> bool:
        """Data traffic: the driver may queue it per channel."""
        return self.driver.send_data_payload(self, segment, segment.size_bytes)

    # -- downlink -------------------------------------------------------------

    def handle_frame(self, frame: Frame) -> None:
        if frame.type in (
            FrameType.AUTH_RESPONSE,
            FrameType.ASSOC_RESPONSE,
            FrameType.DEAUTH,
        ):
            self.assoc.handle_frame(frame)
        elif frame.type == FrameType.DATA:
            payload = frame.payload
            if isinstance(payload, DhcpMessage):
                self.dhcp.handle(payload)
            elif isinstance(payload, TcpSegment) and self.flow is not None:
                self.flow.on_downlink_segment(payload)
            elif isinstance(payload, UdpDatagram) and self.voip is not None:
                self.voip.on_datagram(payload)


class BaseDriver:
    """Common driver skeleton; subclasses implement policy hooks."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        mobility: MobilityModel,
        address: str,
        config: Optional[DriverConfig] = None,
        router_lookup: Optional[Callable[[str], Optional[ApRouter]]] = None,
        initial_channel: int = 1,
    ):
        self.sim = sim
        self.address = address
        self.config = config or DriverConfig()
        self.radio = Radio(medium, mobility, initial_channel, name=address, address=address)
        self.radio.on_receive = self._on_frame
        self.router_lookup = router_lookup or (lambda name: None)
        self.scanner = Scanner(sim)
        self.join_log = JoinLog()
        self.recorder = ThroughputRecorder(sim)
        self.interfaces: Dict[str, VirtualInterface] = {}
        self._leases: Dict[str, Lease] = {}
        self._running = False
        self.join_attempts = 0
        self.join_successes = 0
        metrics = sim.metrics
        if metrics is not None:
            metrics.add_source(
                lambda: {
                    "driver.join_attempts": self.join_attempts,
                    "driver.join_successes": self.join_successes,
                }
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(0.0, self._maintenance_tick)
        self.on_start()

    def stop(self) -> None:
        self._running = False
        for interface in list(self.interfaces.values()):
            self._teardown_interface(interface)

    def on_start(self) -> None:
        """Subclass hook: start schedulers / scanning."""

    def on_tick(self) -> None:
        """Subclass hook: periodic policy decisions."""

    def _maintenance_tick(self) -> None:
        if not self._running:
            return
        self._reap_silent_aps()
        self.on_tick()
        self.sim.schedule(self.config.maintenance_interval, self._maintenance_tick)

    def _reap_silent_aps(self) -> None:
        cutoff = self.sim.now - self.config.ap_silence_timeout
        for name, interface in list(self.interfaces.items()):
            last = self.scanner.last_seen(name)
            started_recently = self.sim.now - interface.record.started_at < (
                self.config.ap_silence_timeout
            )
            if started_recently:
                continue
            if last is None or last < cutoff:
                self._on_connection_lost(interface)

    # -- lease cache ---------------------------------------------------------

    def cached_lease(self, ap_name: str) -> Optional[Lease]:
        if not self.config.lease_cache_enabled:
            return None
        lease = self._leases.get(ap_name)
        if lease is not None and not lease.expired(self.sim.now):
            return lease
        return None

    def store_lease(self, ap_name: str, lease: Lease) -> None:
        self._leases[ap_name] = lease

    # -- join / teardown -------------------------------------------------------

    def join(self, observation: ApObservation) -> Optional[VirtualInterface]:
        """Open an interface toward an observed AP and start joining."""
        if observation.name in self.interfaces:
            return None
        if len(self.interfaces) >= self.config.max_interfaces:
            return None
        record = self.join_log.open_record(observation.name, observation.channel, self.sim.now)
        interface = VirtualInterface(
            self,
            observation.name,
            observation.channel,
            self.router_lookup(observation.name),
            record,
        )
        self.interfaces[observation.name] = interface
        self.join_attempts += 1
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.DRIVER_JOIN, self.sim.now, client=self.address,
                ap=observation.name, channel=observation.channel,
                rssi=observation.rssi,
            )
        interface.start()
        return interface

    def _teardown_interface(self, interface: VirtualInterface) -> None:
        interface.teardown()
        self.interfaces.pop(interface.ap_name, None)

    def _on_connection_lost(self, interface: VirtualInterface) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.DRIVER_LOST, self.sim.now, client=self.address,
                ap=interface.ap_name, channel=interface.channel,
            )
        self.scanner.forget(interface.ap_name)
        self._teardown_interface(interface)
        self.on_connection_lost(interface)

    def on_connection_lost(self, interface: VirtualInterface) -> None:
        """Subclass hook (e.g. stock driver triggers a rescan)."""

    def _on_interface_connected(self, interface: VirtualInterface) -> None:
        self.join_successes += 1
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.DRIVER_CONNECTED, self.sim.now, client=self.address,
                ap=interface.ap_name, channel=interface.channel,
                join_time=interface.record.join_time,
            )
        self.on_interface_connected(interface)

    def on_interface_connected(self, interface: VirtualInterface) -> None:
        """Subclass hook."""

    def _on_interface_failed(self, interface: VirtualInterface, stage: str) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.DRIVER_FAILED, self.sim.now, client=self.address,
                ap=interface.ap_name, channel=interface.channel, stage=stage,
            )
        if stage == "dhcp" and not self.config.teardown_on_dhcp_failure:
            # Stock behaviour: the DHCP client idles and retries in place.
            self.on_interface_failed(interface, stage)
            return
        if interface.record.failed_at is None:
            interface.record.failed_at = self.sim.now
        self._teardown_interface(interface)
        self.on_interface_failed(interface, stage)

    def on_interface_failed(self, interface: VirtualInterface, stage: str) -> None:
        """Subclass hook (e.g. Spider updates its join history)."""

    # -- uplink policy (overridden by Spider) -------------------------------------

    def send_join_payload(
        self, interface: VirtualInterface, payload: object, size: int
    ) -> bool:
        """Send join traffic now if the card is on the right channel.

        DHCP rides broadcast frames on real networks (the client has no
        address yet), so it gets no link-layer ARQ: a lost request is
        recovered only by the DHCP retransmit timer — which is exactly
        why the paper's timer reductions matter.
        """
        if self.radio.channel != interface.channel or self.radio.deaf:
            return False
        frame = frames.data_frame(self.address, interface.ap_name, payload, size)
        frame.needs_ack = False
        frame.bufferable = False
        return self.radio.transmit(frame)

    def send_data_payload(
        self, interface: VirtualInterface, payload: object, size: int
    ) -> bool:
        """Default data path: same as join traffic (no queueing)."""
        return self.send_join_payload(interface, payload, size)

    # -- scanning -----------------------------------------------------------------

    def probe_current_channel(self) -> None:
        """Active scan: broadcast a probe request on the tuned channel."""
        self.radio.transmit(
            frames.mgmt_frame(FrameType.PROBE_REQUEST, self.address, frames.BROADCAST)
        )

    # -- frame dispatch ---------------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        # Runs once per heard frame: identity/equality tests beat tuple
        # membership (no tuple build, no iteration) on this hot path.
        if frame.dst != self.address and frame.dst != frames.BROADCAST:
            return
        frame_type = frame.type
        if frame_type is FrameType.BEACON or frame_type is FrameType.PROBE_RESPONSE:
            payload = frame.payload or {}
            channel = payload.get("channel", self.radio.channel)
            self.scanner.observe(frame.src, channel, self.radio.last_rssi)
        else:
            self.scanner.observe(frame.src, self.radio.channel, self.radio.last_rssi)
        interface = self.interfaces.get(frame.src)
        if interface is not None:
            interface.handle_frame(frame)

    # -- results -------------------------------------------------------------------------

    def connected_interfaces(self) -> List[VirtualInterface]:
        return [iface for iface in self.interfaces.values() if iface.connected]

    def associated_interfaces(self, channel: Optional[int] = None) -> List[VirtualInterface]:
        return [
            iface
            for iface in self.interfaces.values()
            if iface.associated and (channel is None or iface.channel == channel)
        ]
