"""Multi-card baseline: N physical radios, each running a stock driver.

The hardware alternative to virtualized Wi-Fi ("two cards, stock" in
Fig. 9): each card associates with its own AP, so the node aggregates
backhauls with zero switching overhead — at the cost of extra hardware.
The cards share one throughput recorder (the node's aggregate) and
coordinate only to avoid joining the same AP twice.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.drivers.base import ApObservation
from repro.drivers.stock import StockConfig, StockDriver
from repro.metrics.collector import ThroughputRecorder
from repro.net.backhaul import ApRouter
from repro.phy.radio import Medium
from repro.sim.engine import Simulator
from repro.world.mobility import MobilityModel


class _CoordinatedStockDriver(StockDriver):
    """A stock card that avoids APs its sibling cards already use."""

    def __init__(self, *args, siblings: List["_CoordinatedStockDriver"], **kwargs):
        self._siblings = siblings
        super().__init__(*args, **kwargs)

    def _taken_elsewhere(self, ap_name: str) -> bool:
        return any(
            ap_name in sibling.interfaces for sibling in self._siblings if sibling is not self
        )

    def _eligible(self, observation: ApObservation) -> bool:
        if self._taken_elsewhere(observation.name):
            return False
        return super()._eligible(observation)


class MultiCardDriver:
    """N independent stock cards acting as one node."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        mobility: MobilityModel,
        address: str = "multicard",
        cards: int = 2,
        config: Optional[StockConfig] = None,
        router_lookup: Optional[Callable[[str], Optional[ApRouter]]] = None,
    ):
        self.sim = sim
        self.address = address
        self.recorder = ThroughputRecorder(sim)
        self.drivers: List[_CoordinatedStockDriver] = []
        for index in range(cards):
            driver = _CoordinatedStockDriver(
                sim,
                medium,
                mobility,
                f"{address}.{index}",
                config=config or StockConfig(),
                router_lookup=router_lookup,
                siblings=self.drivers,
            )
            driver.recorder = self.recorder  # shared aggregate accounting
            self.drivers.append(driver)

    def start(self) -> None:
        # Stagger card start-up: a card's claim on an AP is only visible
        # to siblings once its join begins, so simultaneous first scans
        # would race onto the same AP.
        for index, driver in enumerate(self.drivers):
            self.sim.schedule(index * 2.5, driver.start)

    def stop(self) -> None:
        for driver in self.drivers:
            driver.stop()

    def connected_interfaces(self):
        return [iface for driver in self.drivers for iface in driver.connected_interfaces()]
