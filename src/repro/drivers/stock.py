"""Stock single-AP Wi-Fi driver (the MadWiFi-like baseline).

Behaviour of an unmodified client: scan the whole 2.4 GHz band when
unassociated (~150 ms per channel), pick the strongest-RSSI AP, join it
with default timers (1 s link-layer, 1 s DHCP retransmit, 3 s attempt
window, 60 s idle backoff on failure), and stay with that one AP until
the connection dies. This is the comparison point for Table 2's last
row and Fig. 9's "one card, stock" curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.drivers.base import ApObservation, BaseDriver, DriverConfig, VirtualInterface
from repro.obs import trace as tr


@dataclass
class StockConfig(DriverConfig):
    """Stock driver knobs; defaults mirror unmodified clients."""

    scan_channels: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
    scan_dwell: float = 0.150
    rescan_interval: float = 1.0
    switch_reset: float = 5e-3
    failure_backoff: float = 5.0

    def __post_init__(self) -> None:
        # A stock driver drives exactly one association at a time, and
        # a failed DHCP client idles in place (no teardown). Stock
        # clients are also slow roamers: they ride a dead association
        # for many seconds before declaring link loss and rescanning.
        self.max_interfaces = 1
        self.teardown_on_dhcp_failure = False
        self.ap_silence_timeout = 8.0


class StockDriver(BaseDriver):
    """Single-AP, best-RSSI, full-band-scanning client."""

    def __init__(self, *args, **kwargs):
        config = kwargs.get("config")
        if config is None:
            kwargs["config"] = StockConfig()
        super().__init__(*args, **kwargs)
        self.config: StockConfig = self.config  # narrow the type
        self._scanning = False
        self._failed_at: Dict[str, float] = {}

    # -- lifecycle --------------------------------------------------------

    def on_start(self) -> None:
        self._begin_scan()

    def on_connection_lost(self, interface: VirtualInterface) -> None:
        self._begin_scan()

    def on_interface_failed(self, interface: VirtualInterface, stage: str) -> None:
        self._failed_at[interface.ap_name] = self.sim.now
        if stage == "association":
            self._begin_scan()
        # A DHCP failure leaves the interface up: the stock client idles
        # for its 60 s backoff and then retries in place.

    # -- scanning ------------------------------------------------------------

    def _begin_scan(self) -> None:
        if self._scanning or not self._running or self.interfaces:
            return
        self._scanning = True
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.SCAN_START, self.sim.now, client=self.address,
                channels=list(self.config.scan_channels),
            )
        self.sim.process(self._scan_loop())

    def _scan_loop(self):
        config = self.config
        try:
            while self._running and not self.interfaces:
                for channel in config.scan_channels:
                    if not self._running or self.interfaces:
                        return
                    self.radio.set_channel(channel)
                    self.radio.go_deaf(config.switch_reset)
                    yield self.sim.timeout(config.switch_reset)
                    self.probe_current_channel()
                    yield self.sim.timeout(config.scan_dwell)
                best = self._best_candidate()
                if best is not None:
                    trace = self.sim.trace
                    if trace is not None:
                        trace.emit(
                            tr.DRIVER_SELECT, self.sim.now, client=self.address,
                            channel=best.channel, policy="rssi",
                            candidates=[best.name],
                        )
                    if self.radio.channel != best.channel:
                        self.radio.set_channel(best.channel)
                        self.radio.go_deaf(config.switch_reset)
                        yield self.sim.timeout(config.switch_reset)
                    self.join(best)
                    return
                yield self.sim.timeout(config.rescan_interval)
        finally:
            self._scanning = False

    def _eligible(self, observation: ApObservation) -> bool:
        failed = self._failed_at.get(observation.name)
        if failed is None:
            return True
        return self.sim.now - failed >= self.config.failure_backoff

    def _best_candidate(self) -> Optional[ApObservation]:
        candidates = [obs for obs in self.scanner.current() if self._eligible(obs)]
        if not candidates:
            return None
        return max(candidates, key=lambda obs: obs.rssi)
