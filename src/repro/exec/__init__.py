"""``repro.exec`` — parallel campaign execution for the evaluation.

The paper's evaluation is embarrassingly parallel (independent per-seed
runs and per-configuration rows); this package turns that into wall
clock: a shard protocol experiments opt into (`shards.py`), a
fault-tolerant process-pool engine with retry and sequential fallback
(`workers.py`), a content-addressed result cache keyed on parameters +
code version (`cache.py`), and the campaign orchestrator that keeps
parallel output byte-identical to sequential output (`campaign.py`).

CLI surface: ``spider-repro run <id> --jobs N [--cache-dir PATH]
[--no-cache]`` and ``spider-repro campaign [ids|all]``.
"""

from repro.exec.cache import ResultCache, canonical_text
from repro.exec.campaign import (
    CampaignResult,
    ExperimentExecution,
    campaign_manifest,
    execute_experiment,
    run_campaign,
)
from repro.exec.shards import Shard, ShardPlan, build_plan, invoke_shard, supports_sharding
from repro.exec.workers import (
    SOURCE_CACHE,
    SOURCE_INLINE,
    SOURCE_POOL,
    ExecPolicy,
    ShardError,
    ShardOutcome,
    execute_shards,
)

__all__ = [
    "CampaignResult",
    "ExecPolicy",
    "ExperimentExecution",
    "ResultCache",
    "SOURCE_CACHE",
    "SOURCE_INLINE",
    "SOURCE_POOL",
    "Shard",
    "ShardError",
    "ShardOutcome",
    "ShardPlan",
    "build_plan",
    "campaign_manifest",
    "canonical_text",
    "execute_experiment",
    "execute_shards",
    "invoke_shard",
    "run_campaign",
    "supports_sharding",
]
