"""``repro.exec`` — parallel campaign execution for the evaluation.

The paper's evaluation is embarrassingly parallel (independent per-seed
runs and per-configuration rows); this package turns that into wall
clock: a shard protocol experiments opt into (`shards.py`), a
fault-tolerant execution engine with retry and sequential fallback
(`workers.py`) over pluggable placement backends (`backend/` — local
pool, SSH workers, filesystem job queue), a content-addressed result
cache keyed on parameters + code version (`cache.py`), an append-only
campaign journal that makes killed campaigns resumable (`journal.py`),
and the campaign orchestrator that keeps distributed output
byte-identical to sequential output (`campaign.py`).

CLI surface: ``spider-repro run <id> --jobs N [--backend SPEC]
[--cache-dir PATH] [--no-cache]`` and ``spider-repro campaign
[ids|all] [--backend SPEC] [--journal PATH] [--resume JOURNAL]``.
"""

from repro.exec.backend import (
    BackendBroken,
    BackendError,
    ExecutionBackend,
    LocalPoolBackend,
    QueueDirBackend,
    RemoteShardError,
    SubprocessSSHBackend,
    WorkerTimeout,
    make_backend,
)
from repro.exec.cache import ResultCache, canonical_text
from repro.exec.campaign import (
    CampaignAborted,
    CampaignResult,
    ExperimentExecution,
    campaign_manifest,
    execute_experiment,
    run_campaign,
)
from repro.exec.journal import CampaignJournal, JournalError, load_journal
from repro.exec.shards import Shard, ShardPlan, build_plan, invoke_shard, supports_sharding
from repro.exec.workers import (
    SOURCE_CACHE,
    SOURCE_INLINE,
    SOURCE_POOL,
    ExecPolicy,
    ShardError,
    ShardOutcome,
    execute_shards,
)

__all__ = [
    "BackendBroken",
    "BackendError",
    "CampaignAborted",
    "CampaignJournal",
    "CampaignResult",
    "ExecPolicy",
    "ExecutionBackend",
    "ExperimentExecution",
    "JournalError",
    "LocalPoolBackend",
    "QueueDirBackend",
    "RemoteShardError",
    "ResultCache",
    "SOURCE_CACHE",
    "SOURCE_INLINE",
    "SOURCE_POOL",
    "Shard",
    "ShardError",
    "ShardOutcome",
    "ShardPlan",
    "SubprocessSSHBackend",
    "WorkerTimeout",
    "build_plan",
    "campaign_manifest",
    "canonical_text",
    "execute_experiment",
    "execute_shards",
    "invoke_shard",
    "load_journal",
    "make_backend",
    "run_campaign",
    "supports_sharding",
]
