"""``repro.exec.backend`` — pluggable "where shards run" backends.

The :class:`ExecutionBackend` ABC (``submit``/``capacity``/``health``/
``shutdown``) abstracts shard placement away from the orchestration in
``repro.exec.workers``. Three implementations ship:

- :class:`LocalPoolBackend` — one machine, a ``ProcessPoolExecutor``
  (the behavior-identical refactor of the historical pool);
- :class:`SubprocessSSHBackend` — persistent remote workers over a
  stdio shard-RPC protocol with per-host concurrency limits, heartbeat
  timeouts, and host blacklisting (localhost = plain subprocess);
- :class:`QueueDirBackend` — a filesystem job queue: shards spooled to
  disk, claimed atomically via rename by N independent worker
  processes.

Selected from the CLI as ``--backend local:N | ssh:host[*slots],... |
queuedir:PATH[?workers=N]`` via :func:`make_backend`. simlint SL010
(``backend-boundary``) keeps executor/subprocess primitives inside
this package — everything else goes through the ABC.
"""

from repro.exec.backend.base import (
    BackendBroken,
    BackendError,
    BackendFuture,
    ExecutionBackend,
    RemoteShardError,
    ShardRequest,
    WorkerTimeout,
    make_backend,
    parse_backend_spec,
)
from repro.exec.backend.local import LocalPoolBackend
from repro.exec.backend.queuedir import QueueDirBackend
from repro.exec.backend.ssh import HostSpec, SubprocessSSHBackend

__all__ = [
    "BackendBroken",
    "BackendError",
    "BackendFuture",
    "ExecutionBackend",
    "HostSpec",
    "LocalPoolBackend",
    "QueueDirBackend",
    "RemoteShardError",
    "ShardRequest",
    "SubprocessSSHBackend",
    "WorkerTimeout",
    "make_backend",
    "parse_backend_spec",
]
