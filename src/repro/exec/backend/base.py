"""The execution-backend contract: where shards run.

``repro.exec.workers`` owns the *strategy* of a run — cache scan,
retry/backoff, shard-order results, inline degradation — but is
agnostic about *where* a shard executes. That question is this
package's: an :class:`ExecutionBackend` accepts a
:class:`ShardRequest`, runs it somewhere (a local process pool, a
remote worker over a stdio RPC pipe, a filesystem job queue), and hands
back a :class:`BackendFuture` resolving to the shard's payload.

The contract the orchestrator relies on:

- :meth:`ExecutionBackend.submit` never blocks on shard execution; it
  may queue internally when every worker is busy.
- ``future.result(timeout)`` returns a payload dict with ``result``
  (the shard's return value), ``worker_seconds`` (worker-side wall
  time), and ``worker`` (a lane label for telemetry/Perfetto). It
  raises :class:`concurrent.futures.TimeoutError` when the caller's
  deadline passes (retryable), :class:`WorkerTimeout` when the backend
  itself declared the worker dead (retryable), any other exception for
  a shard-level failure (retryable), and :class:`BackendBroken` when
  the whole backend is unusable — the orchestrator then degrades to
  in-process sequential execution, exactly like the historical
  ``BrokenProcessPool`` path.
- :meth:`ExecutionBackend.capacity` is the number of shards the
  backend can run concurrently *right now* (blacklisted hosts and dead
  workers excluded); 0 means "do not submit".
- :meth:`ExecutionBackend.health` is a JSON-able snapshot for
  telemetry and operators; :meth:`ExecutionBackend.shutdown` releases
  workers without waiting for stuck ones.

Backends emit ``backend.*`` trace events (taxonomy in
:mod:`repro.obs.trace`) when a bus is attached; timestamps are wall
seconds since the backend started — harness time, never sim time.
"""

from __future__ import annotations

import abc
import base64
import pickle
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.trace import TraceBus


class BackendError(RuntimeError):
    """Base class for backend-layer failures."""


class BackendBroken(BackendError):
    """The whole backend is unusable; degrade to inline execution."""


class WorkerTimeout(BackendError):
    """A worker stopped heartbeating or died mid-shard; retryable."""


class RemoteShardError(BackendError):
    """The shard itself raised in a remote worker.

    Carries the remote traceback text so the failure is debuggable
    from the orchestrator side.
    """

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback


@dataclass(frozen=True)
class ShardRequest:
    """One unit of work handed to a backend.

    ``module_name``/``func_name``/``params`` mirror
    :func:`repro.exec.shards.invoke_shard`; ``key`` and ``experiment``
    ride along for progress lines, trace events, and spool filenames.
    """

    experiment: str
    module_name: str
    func_name: str
    key: str
    params: Dict[str, Any] = field(default_factory=dict)


class BackendFuture(abc.ABC):
    """Handle for one submitted shard; see the module docstring."""

    @abc.abstractmethod
    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the payload is ready (or ``timeout`` passes)."""


class SettableFuture(BackendFuture):
    """Event-backed future the backend resolves from a reader thread.

    ``watchdog`` (if given) runs once per wait slice and may raise to
    fail the wait early — the SSH backend uses it to enforce heartbeat
    deadlines without a dedicated monitor thread.
    """

    _POLL = 0.05

    def __init__(self, watchdog: Optional[Callable[[], None]] = None):
        self._event = threading.Event()
        self._payload: Optional[Dict[str, Any]] = None
        self._error: Optional[BaseException] = None
        self._watchdog = watchdog

    def set_result(self, payload: Dict[str, Any]) -> None:
        self._payload = payload
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        if not self._event.is_set():
            self._error = error
            self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._event.is_set():
            if self._watchdog is not None:
                self._watchdog()
                if self._event.is_set():
                    break
            remaining = self._POLL if deadline is None else min(self._POLL, deadline - time.monotonic())
            if remaining <= 0:
                raise FutureTimeoutError()
            self._event.wait(remaining)
        if self._error is not None:
            raise self._error
        assert self._payload is not None
        return self._payload


class ExecutionBackend(abc.ABC):
    """Abstract "where shards run"; see the module docstring."""

    #: Short backend id for telemetry/trace/health ("pool", "ssh", "queue").
    name: str = "backend"

    def __init__(self, bus: Optional[TraceBus] = None):
        self.bus = bus
        self._t0 = time.monotonic()

    @abc.abstractmethod
    def submit(self, request: ShardRequest) -> BackendFuture:
        """Queue one shard; raises :class:`BackendBroken` when unusable."""

    @abc.abstractmethod
    def capacity(self) -> int:
        """Usable concurrent-shard slots right now (0 = don't submit)."""

    def health(self) -> Dict[str, Any]:
        """JSON-able status snapshot; subclasses extend the base dict."""
        return {"backend": self.name, "capacity": self.capacity()}

    @abc.abstractmethod
    def shutdown(self, wait: bool = False) -> None:
        """Release workers; must not block on stuck shards."""

    # -- trace plumbing --------------------------------------------------
    #
    # Backends emit ``backend.*`` events directly on ``self.bus`` under
    # the usual `bus is not None` guard (call sites name the taxonomy
    # constants, so SL004 can verify them); this is their time axis.

    def trace_time(self) -> float:
        """Seconds since backend construction (the bus's time axis)."""
        return time.monotonic() - self._t0


# -- wire helpers ------------------------------------------------------------
#
# Shard parameters and results are arbitrary picklable values, but the
# RPC envelopes (stdio lines, spool task files) are JSON for
# inspectability. Pickle-inside-base64 bridges the two without mangling
# tuples into lists the way raw JSON would — tuple-vs-list matters to
# cache keys' spelling stability and to experiments' parameter types.


def encode_payload(value: Any) -> str:
    """Pickle ``value`` and wrap it base64 for a JSON envelope."""
    return base64.b64encode(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_payload(text: str) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


# -- backend spec parsing ----------------------------------------------------
#
# The CLI selects a backend with one string (the ``backend.*`` config
# surface): ``local[:N]``, ``ssh:host[*slots][,host...][?opt=v&...]``,
# ``queuedir:PATH[?workers=N&...]``. Options after ``?`` are the
# backend's keyword knobs; unknown options fail fast.


def parse_backend_spec(spec: str) -> Tuple[str, str, Dict[str, str]]:
    """``"kind:arg?k=v&k=v"`` → ``(kind, arg, options)``."""
    head, _, query = spec.partition("?")
    kind, _, arg = head.partition(":")
    options: Dict[str, str] = {}
    if query:
        for pair in query.split("&"):
            key, sep, value = pair.partition("=")
            if not sep or not key:
                raise ValueError(f"backend spec {spec!r}: malformed option {pair!r}")
            options[key] = value
    return kind.strip().lower(), arg, options


def _float_option(options: Dict[str, str], key: str, default: float) -> float:
    raw = options.pop(key, None)
    return default if raw is None else float(raw)


def _int_option(options: Dict[str, str], key: str, default: int) -> int:
    raw = options.pop(key, None)
    return default if raw is None else int(raw)


def make_backend(
    spec: Optional[str], jobs: int = 1, bus: Optional[TraceBus] = None
) -> Optional["ExecutionBackend"]:
    """Build a backend from a CLI spec string.

    ``None`` and ``"local"`` (without an explicit worker count) return
    ``None`` — the orchestrator then uses its built-in local-pool
    strategy, sized per call, exactly as before this subsystem existed.
    """
    if spec is None:
        return None
    kind, arg, options = parse_backend_spec(spec)
    if kind == "local":
        if options:
            raise ValueError(f"backend spec {spec!r}: local takes no ?options")
        if not arg:
            return None
        from repro.exec.backend.local import LocalPoolBackend

        return LocalPoolBackend(max_workers=int(arg), bus=bus)
    if kind == "ssh":
        from repro.exec.backend.ssh import HostSpec, SubprocessSSHBackend

        if not arg:
            raise ValueError(f"backend spec {spec!r}: ssh needs host[,host...]")
        hosts: List[HostSpec] = []
        for chunk in arg.split(","):
            host, _, slots = chunk.partition("*")
            if not host:
                raise ValueError(f"backend spec {spec!r}: empty host in {chunk!r}")
            hosts.append(HostSpec(host=host.strip(), slots=int(slots) if slots else 1))
        heartbeat = _float_option(options, "heartbeat", 30.0)
        hb_interval = _float_option(options, "hb-interval", 1.0)
        blacklist_after = _int_option(options, "blacklist-after", 3)
        if options:
            raise ValueError(f"backend spec {spec!r}: unknown option(s) {sorted(options)}")
        return SubprocessSSHBackend(
            hosts,
            heartbeat_timeout=heartbeat,
            hb_interval=hb_interval,
            blacklist_after=blacklist_after,
            bus=bus,
        )
    if kind == "queuedir":
        from repro.exec.backend.queuedir import QueueDirBackend

        if not arg:
            raise ValueError(f"backend spec {spec!r}: queuedir needs a spool path")
        workers = _int_option(options, "workers", jobs)
        poll = _float_option(options, "poll", 0.05)
        if options:
            raise ValueError(f"backend spec {spec!r}: unknown option(s) {sorted(options)}")
        return QueueDirBackend(arg, workers=workers, poll_interval=poll, bus=bus)
    raise ValueError(f"unknown backend kind {kind!r} (known: local, ssh, queuedir)")
