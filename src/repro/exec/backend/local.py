"""``LocalPoolBackend``: today's process pool behind the backend ABC.

This is the behavior-identical refactor of the historical
``workers.py`` pool: shards fan out over a ``ProcessPoolExecutor`` via
the picklable :func:`repro.exec.shards.invoke_shard_timed` entry point,
a dead pool (``BrokenProcessPool``) surfaces as
:class:`~repro.exec.backend.base.BackendBroken` so the orchestrator
degrades to sequential execution, and a host that refuses worker
processes outright fails at construction the same way.

This module is (with the other backend implementations) the only place
in the tree allowed to touch ``concurrent.futures`` — simlint SL010
keeps every other module behind the ABC.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Any, Dict, Optional

from repro.exec.backend.base import (
    BackendBroken,
    BackendFuture,
    ExecutionBackend,
    ShardRequest,
)
from repro.exec.shards import invoke_shard_timed
from repro.obs.trace import TraceBus


class _PoolFuture(BackendFuture):
    """Adapter: ``concurrent.futures.Future`` → backend payload."""

    def __init__(self, future: "Future[Dict[str, Any]]", worker: str):
        self._future = future
        self._worker = worker

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        try:
            payload = self._future.result(timeout=timeout)
        except BrokenExecutor as exc:
            raise BackendBroken(f"process pool died: {exc!r}") from exc
        payload.setdefault("worker", self._worker)
        return payload


class LocalPoolBackend(ExecutionBackend):
    """One machine, N worker processes."""

    name = "pool"

    def __init__(self, max_workers: int, bus: Optional[TraceBus] = None):
        super().__init__(bus=bus)
        self.max_workers = max(1, max_workers)
        try:
            self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
                max_workers=self.max_workers
            )
        except (OSError, ValueError) as exc:
            # The host refuses worker processes; the orchestrator's
            # BackendBroken handling degrades to inline execution.
            raise BackendBroken(f"cannot start process pool: {exc!r}") from exc
        self._submitted = 0

    def submit(self, request: ShardRequest) -> BackendFuture:
        pool = self._pool
        if pool is None:
            raise BackendBroken("process pool is shut down")
        try:
            future = pool.submit(
                invoke_shard_timed, request.module_name, request.func_name, request.params
            )
        except (BrokenExecutor, RuntimeError) as exc:
            raise BackendBroken(f"process pool rejected submit: {exc!r}") from exc
        self._submitted += 1
        return _PoolFuture(future, worker=self.name)

    def capacity(self) -> int:
        return 0 if self._pool is None else self.max_workers

    def health(self) -> Dict[str, Any]:
        health = super().health()
        health.update(workers=self.max_workers, submitted=self._submitted)
        return health

    def shutdown(self, wait: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            # wait=False: a worker stuck past its shard timeout must not
            # stall the (already complete) run at shutdown.
            pool.shutdown(wait=wait, cancel_futures=True)
