"""Filesystem-queue worker: drains a ``QueueDirBackend`` spool.

Run as ``python -m repro.exec.backend.queue_worker SPOOL``. Any number
of these can run concurrently against the same spool — on this host or
on any host sharing the filesystem — because a task is *claimed* with
``os.rename``, which the filesystem makes atomic: exactly one claimant
wins, the losers see ``FileNotFoundError`` and move on.

Lifecycle: poll ``pending/``, claim, execute, write the result
atomically into ``results/``, repeat. Exit when the spool's ``stop``
marker exists and no pending work remains, when ``--idle-exit``
seconds pass without work, or after ``--max-tasks`` tasks (test hook).

A worker that dies mid-task leaves its claim file behind; the
orchestrator's retry loop resubmits the shard under a fresh task id,
so stale claims are garbage, not lost work.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional

PENDING = "pending"
CLAIMED = "claimed"
RESULTS = "results"
STOP = "stop"


def write_atomic(path: Path, payload: Dict[str, Any]) -> None:
    """Pickle ``payload`` to ``path`` via temp file + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def claim_one(spool: Path) -> Optional[Path]:
    """Atomically claim the oldest pending task; None when empty."""
    pending = spool / PENDING
    try:
        names = sorted(entry.name for entry in pending.iterdir() if entry.suffix == ".task")
    except FileNotFoundError:
        return None
    for name in names:
        target = spool / CLAIMED / f"{name}.{os.getpid()}"
        target.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(pending / name, target)
        except FileNotFoundError:
            continue  # another worker won the rename
        return target
    return None


def execute_claim(spool: Path, claim: Path) -> None:
    """Run one claimed task and publish its result."""
    import traceback

    from repro.exec.shards import invoke_shard

    with open(claim, "rb") as handle:
        task = pickle.load(handle)
    started = time.perf_counter()
    try:
        result = invoke_shard(task["module"], task["func"], task["params"])
        payload: Dict[str, Any] = {
            "ok": True,
            "result": result,
            "worker_seconds": time.perf_counter() - started,
        }
    except BaseException as exc:  # a shard failure must not kill the worker
        payload = {"ok": False, "error": repr(exc), "traceback": traceback.format_exc()}
    payload["worker"] = f"queue-worker/{os.getpid()}"
    write_atomic(spool / RESULTS / f"{task['id']}.pkl", payload)
    try:
        claim.unlink()
    except OSError:
        pass


def drain(
    spool: Path,
    poll: float = 0.05,
    idle_exit: float = 0.0,
    max_tasks: int = 0,
) -> int:
    """The worker loop; returns the number of tasks executed."""
    executed = 0
    idle_since = time.monotonic()
    while True:
        claim = claim_one(spool)
        if claim is not None:
            execute_claim(spool, claim)
            executed += 1
            idle_since = time.monotonic()
            if max_tasks and executed >= max_tasks:
                return executed
            continue
        if (spool / STOP).exists():
            return executed
        if idle_exit and time.monotonic() - idle_since > idle_exit:
            return executed
        time.sleep(poll)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.exec.backend.queue_worker")
    parser.add_argument("spool", help="spool directory shared with QueueDirBackend")
    parser.add_argument("--poll", type=float, default=0.05, metavar="S")
    parser.add_argument(
        "--idle-exit", type=float, default=0.0, metavar="S", help="exit after S idle seconds"
    )
    parser.add_argument(
        "--max-tasks", type=int, default=0, metavar="N", help="exit after N tasks (test hook)"
    )
    args = parser.parse_args(argv)
    drain(Path(args.spool), poll=args.poll, idle_exit=args.idle_exit, max_tasks=args.max_tasks)
    return 0


if __name__ == "__main__":
    sys.exit(main())
