"""``QueueDirBackend``: a filesystem job queue of serialized shards.

The spool directory is the whole coordination mechanism::

    <spool>/pending/<id>.task      submitted, unclaimed (pickle)
    <spool>/claimed/<id>.task.<pid> claimed by one worker (atomic rename)
    <spool>/results/<id>.pkl       finished (pickle, written atomically)
    <spool>/stop                   marker: workers drain and exit

``submit`` serializes the shard into ``pending/``; any number of
independent ``queue_worker`` processes — spawned by this backend
(``workers=N``), started by hand, or running on other hosts sharing
the filesystem — claim tasks via ``os.rename`` (exactly-once) and
publish results. The backend's future polls ``results/``.

This is the job-queue *stub* on the road to a real cluster scheduler:
the claim/result discipline is the same one a Slurm or batch-queue
backend would implement, with the filesystem standing in for the
queue service.
"""

from __future__ import annotations

import itertools
import os
import pickle
import subprocess
import sys
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exec.backend.base import (
    BackendBroken,
    BackendFuture,
    ExecutionBackend,
    RemoteShardError,
    ShardRequest,
    WorkerTimeout,
)
from repro.exec.backend.queue_worker import CLAIMED, PENDING, RESULTS, STOP, write_atomic
from repro.obs.trace import BACKEND_RESULT, BACKEND_SUBMIT, TraceBus


class _QueueFuture(BackendFuture):
    """Polls the spool's results directory for one task id."""

    def __init__(self, backend: "QueueDirBackend", task_id: str, key: str):
        self._backend = backend
        self._task_id = task_id
        self._key = key

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        deadline = None if timeout is None else time.monotonic() + timeout
        path = self._backend.results_dir / f"{self._task_id}.pkl"
        while True:
            payload = self._try_read(path)
            if payload is not None:
                return self._resolve(payload)
            if deadline is not None and time.monotonic() >= deadline:
                raise FutureTimeoutError()
            self._backend.check_workers()
            if self._backend.reap_orphaned_claim(self._task_id):
                raise WorkerTimeout(
                    f"queue worker died holding task {self._task_id!r}; resubmit"
                )
            time.sleep(self._backend.poll_interval)

    @staticmethod
    def _try_read(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError):
            return None  # mid-rename race or garbage; poll again
        try:
            path.unlink()
        except OSError:
            pass
        return payload

    def _resolve(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        backend = self._backend
        worker = str(payload.get("worker", "queue-worker"))
        bus = backend.bus
        if payload.get("ok"):
            if bus is not None:
                bus.emit(
                    BACKEND_RESULT,
                    backend.trace_time(),
                    backend=backend.name,
                    key=self._key,
                    worker=worker,
                    ok=True,
                    worker_seconds=float(payload.get("worker_seconds", 0.0)),
                )
            return {
                "result": payload["result"],
                "worker_seconds": float(payload.get("worker_seconds", 0.0)),
                "worker": worker,
            }
        if bus is not None:
            bus.emit(
                BACKEND_RESULT,
                backend.trace_time(),
                backend=backend.name,
                key=self._key,
                worker=worker,
                ok=False,
            )
        raise RemoteShardError(
            f"shard {self._key!r} failed on {worker}: {payload.get('error', 'unknown error')}",
            remote_traceback=str(payload.get("traceback", "")),
        )


class QueueDirBackend(ExecutionBackend):
    """Shards through a spool directory; N independent workers drain it."""

    name = "queue"

    def __init__(
        self,
        root: Union[str, Path],
        workers: int = 1,
        poll_interval: float = 0.05,
        python: Optional[str] = None,
        bus: Optional[TraceBus] = None,
    ):
        super().__init__(bus=bus)
        self.root = Path(root)
        self.poll_interval = poll_interval
        self.python = python or sys.executable
        self.workers = max(0, workers)
        self._counter = itertools.count()
        self._procs: List["subprocess.Popen[bytes]"] = []
        self._spawned = 0
        self._shutdown = False
        for sub in (PENDING, RESULTS):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        # A fresh backend on a used spool (resume) must restart workers.
        try:
            (self.root / STOP).unlink()
        except OSError:
            pass
        self._top_up()

    @property
    def results_dir(self) -> Path:
        return self.root / RESULTS

    # -- worker management -----------------------------------------------

    def _top_up(self) -> None:
        """(Re)spawn owned workers up to the configured count."""
        if self._shutdown or self.workers == 0:
            return
        self._procs = [proc for proc in self._procs if proc.poll() is None]
        # Bounded respawn: a spool whose workers die instantly (broken
        # interpreter, full disk) must not fork-bomb the host.
        while len(self._procs) < self.workers and self._spawned < self.workers * 4:
            try:
                proc = subprocess.Popen(
                    [
                        self.python,
                        "-m",
                        "repro.exec.backend.queue_worker",
                        str(self.root),
                        "--poll",
                        str(self.poll_interval),
                    ],
                    stdin=subprocess.DEVNULL,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            except OSError as exc:
                raise BackendBroken(f"cannot spawn queue worker: {exc!r}") from exc
            self._procs.append(proc)
            self._spawned += 1

    def check_workers(self) -> None:
        """Called from waiting futures: fail fast when every owned
        worker is gone instead of polling an abandoned spool forever.

        External-worker spools (``workers=0``) have nothing to check —
        liveness is the operator's contract there.
        """
        if self.workers == 0 or self._shutdown:
            return
        if any(proc.poll() is None for proc in self._procs):
            return
        if self._spawned < self.workers * 4:
            self._top_up()
            return
        raise WorkerTimeout("every owned queue worker exited; shard abandoned in spool")

    def reap_orphaned_claim(self, task_id: str) -> bool:
        """True when ``task_id`` was claimed by a now-dead local worker.

        A worker that dies mid-task leaves ``claimed/<id>.task.<pid>``
        behind and never publishes a result; without this check the
        waiting future would sit out its whole caller timeout. Claimant
        liveness is only checkable for pids on this machine, so
        external-worker spools (``workers=0``, possibly cross-host)
        skip it — there the caller timeout is the backstop.
        """
        if self.workers == 0:
            return False
        claimed = self.root / CLAIMED
        try:
            entries = list(claimed.iterdir())
        except OSError:
            return False
        prefix = f"{task_id}.task."
        for entry in entries:
            if not entry.name.startswith(prefix):
                continue
            try:
                pid = int(entry.name.rsplit(".", 1)[-1])
            except ValueError:
                continue
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                try:
                    entry.unlink()
                except OSError:
                    pass
                return True
            except OSError:
                return False  # can't signal it (permissions): assume alive
        return False

    # -- backend API -----------------------------------------------------

    def submit(self, request: ShardRequest) -> BackendFuture:
        if self._shutdown:
            raise BackendBroken("queue backend is shut down")
        if self.workers:
            self._top_up()
            if not any(proc.poll() is None for proc in self._procs):
                raise BackendBroken("queue workers keep dying; spool is unserviced")
        task_id = f"{os.getpid()}-{next(self._counter)}"
        write_atomic(
            self.root / PENDING / f"{task_id}.task",
            {
                "id": task_id,
                "module": request.module_name,
                "func": request.func_name,
                "params": request.params,
                "experiment": request.experiment,
                "key": request.key,
            },
        )
        bus = self.bus
        if bus is not None:
            bus.emit(
                BACKEND_SUBMIT,
                self.trace_time(),
                backend=self.name,
                key=request.key,
                worker="spool",
            )
        return _QueueFuture(self, task_id, request.key)

    def capacity(self) -> int:
        if self._shutdown:
            return 0
        if self.workers == 0:
            return 1  # external workers: assume at least one is attached
        return sum(1 for proc in self._procs if proc.poll() is None) or self.workers

    def health(self) -> Dict[str, Any]:
        try:
            pending = sum(1 for _ in (self.root / PENDING).iterdir())
        except OSError:
            pending = 0
        return {
            "backend": self.name,
            "capacity": self.capacity(),
            "spool": str(self.root),
            "pending": pending,
            "workers": sum(1 for proc in self._procs if proc.poll() is None),
            "spawned": self._spawned,
        }

    def shutdown(self, wait: bool = False) -> None:
        self._shutdown = True
        try:
            (self.root / STOP).touch()
        except OSError:
            pass
        deadline = time.monotonic() + (5.0 if wait else 1.0)
        for proc in self._procs:
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
        self._procs.clear()
