"""``SubprocessSSHBackend``: remote workers over a stdio shard-RPC pipe.

Each host gets ``slots`` persistent worker processes, each reached by
``<command prefix> python -m repro.exec.backend.worker`` where the
prefix is ``ssh -o BatchMode=yes <host>`` for real remotes and empty
for ``localhost`` — "ssh-ing to localhost" is then a plain subprocess,
which is exactly how the backend is exercised in tests and CI without
any sshd. The wire format is documented in
:mod:`repro.exec.backend.worker`.

Fault model (everything here is *transport*-level; a shard raising
cleanly inside a worker is the shard's problem and never counts
against the host):

- A worker whose stdout hits EOF died (crash, OOM-kill, dropped ssh
  connection): its in-flight shard fails with
  :class:`~repro.exec.backend.base.WorkerTimeout` (the orchestrator
  retries it elsewhere) and the host takes one failure.
- A worker that keeps running but stops heartbeating for
  ``heartbeat_timeout`` seconds is indistinguishable from dead: same
  treatment, enforced by the future's watchdog while the orchestrator
  waits (no dedicated monitor thread).
- A host with ``blacklist_after`` transport failures is blacklisted:
  its workers are killed, nothing respawns there, and if it was the
  last usable host the backend declares itself
  :class:`~repro.exec.backend.base.BackendBroken` so the orchestrator
  degrades to inline execution.

Dead workers on healthy hosts are respawned lazily when there is
queued work to give them.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.exec.backend.base import (
    BackendBroken,
    BackendFuture,
    ExecutionBackend,
    RemoteShardError,
    SettableFuture,
    ShardRequest,
    WorkerTimeout,
    decode_payload,
    encode_payload,
)
from repro.obs.trace import (
    BACKEND_BLACKLIST,
    BACKEND_RESULT,
    BACKEND_SUBMIT,
    BACKEND_WORKER_DEAD,
    TraceBus,
)

#: Host names that mean "this machine, no ssh": the worker is launched
#: as a plain subprocess with an empty command prefix.
LOCAL_HOSTS = frozenset({"localhost", "local", "127.0.0.1", "::1"})


@dataclass(frozen=True)
class HostSpec:
    """One host and its concurrency limit (worker slots)."""

    host: str
    slots: int = 1


def default_command(host: str) -> List[str]:
    """The command prefix that reaches ``host``."""
    if host in LOCAL_HOSTS:
        return []
    return ["ssh", "-o", "BatchMode=yes", host]


class _Host:
    """Mutable per-host state: failures, blacklist, worker serials."""

    def __init__(self, spec: HostSpec):
        self.spec = spec
        self.failures = 0
        self.blacklisted = False
        self.serial = 0


class _Pending:
    """One submitted request: queued until assigned to a worker."""

    def __init__(self, request: ShardRequest, future: SettableFuture):
        self.request = request
        self.future = future
        self.worker: Optional["_Worker"] = None


_SPAWNING = "spawning"
_READY = "ready"
_BUSY = "busy"
_DEAD = "dead"


class _Worker:
    """One worker subprocess plus its reader thread."""

    def __init__(self, host: _Host, label: str, proc: "subprocess.Popen[str]"):
        self.host = host
        self.label = label
        self.proc = proc
        self.state = _SPAWNING
        self.last_seen = time.monotonic()
        self.current: Optional[_Pending] = None
        self.next_id = 0


class SubprocessSSHBackend(ExecutionBackend):
    """Remote (or localhost-subprocess) workers over shard RPC."""

    name = "ssh"

    def __init__(
        self,
        hosts: List[HostSpec],
        python: Optional[str] = None,
        command_for: Optional[Callable[[str], List[str]]] = None,
        heartbeat_timeout: float = 30.0,
        hb_interval: float = 1.0,
        blacklist_after: int = 3,
        bus: Optional[TraceBus] = None,
    ):
        super().__init__(bus=bus)
        if not hosts:
            raise ValueError("SubprocessSSHBackend needs at least one host")
        self.python = python or sys.executable
        self.command_for = command_for or default_command
        self.heartbeat_timeout = heartbeat_timeout
        self.hb_interval = hb_interval
        self.blacklist_after = max(1, blacklist_after)
        self._lock = threading.Lock()
        self._hosts = [_Host(spec) for spec in hosts]
        self._workers: List[_Worker] = []
        self._queue: Deque[_Pending] = deque()
        self._shutdown = False
        with self._lock:
            self._top_up()

    # -- public API ------------------------------------------------------

    def submit(self, request: ShardRequest) -> BackendFuture:
        pending_box: List[_Pending] = []
        future = SettableFuture(watchdog=lambda: self._watchdog(pending_box[0]))
        pending = _Pending(request, future)
        pending_box.append(pending)
        with self._lock:
            if self._shutdown:
                raise BackendBroken("ssh backend is shut down")
            if not self._usable_hosts():
                raise BackendBroken("every ssh host is blacklisted")
            self._queue.append(pending)
            self._top_up()
            self._dispatch()
        return future

    def capacity(self) -> int:
        with self._lock:
            return sum(host.spec.slots for host in self._usable_hosts())

    def health(self) -> Dict[str, Any]:
        with self._lock:
            live: Dict[str, int] = {}
            for worker in self._workers:
                live[worker.host.spec.host] = live.get(worker.host.spec.host, 0) + 1
            return {
                "backend": self.name,
                "capacity": sum(host.spec.slots for host in self._usable_hosts()),
                "queued": len(self._queue),
                "hosts": [
                    {
                        "host": host.spec.host,
                        "slots": host.spec.slots,
                        "workers": live.get(host.spec.host, 0),
                        "failures": host.failures,
                        "blacklisted": host.blacklisted,
                    }
                    for host in self._hosts
                ],
            }

    def shutdown(self, wait: bool = False) -> None:
        with self._lock:
            self._shutdown = True
            workers, self._workers = self._workers, []
            for pending in self._queue:
                pending.future.set_exception(BackendBroken("ssh backend shut down"))
            self._queue.clear()
        for worker in workers:
            try:
                if worker.proc.stdin is not None:
                    worker.proc.stdin.write(json.dumps({"op": "exit"}) + "\n")
                    worker.proc.stdin.flush()
                    worker.proc.stdin.close()
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + (5.0 if wait else 0.5)
        for worker in workers:
            try:
                worker.proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                worker.proc.kill()

    # -- internals (all called with self._lock held) ---------------------

    def _usable_hosts(self) -> List[_Host]:
        return [host for host in self._hosts if not host.blacklisted]

    def _top_up(self) -> None:
        """Respawn workers on healthy hosts up to their slot counts."""
        if self._shutdown:
            return
        live: Dict[str, int] = {}
        for worker in self._workers:
            live[worker.host.spec.host] = live.get(worker.host.spec.host, 0) + 1
        for host in self._usable_hosts():
            while live.get(host.spec.host, 0) < host.spec.slots:
                if self._spawn(host) is None:
                    break  # spawn failure already recorded; try later
                live[host.spec.host] = live.get(host.spec.host, 0) + 1

    def _spawn(self, host: _Host) -> Optional[_Worker]:
        argv = list(self.command_for(host.spec.host)) + [
            self.python,
            "-m",
            "repro.exec.backend.worker",
            "--hb-interval",
            str(self.hb_interval),
        ]
        host.serial += 1
        label = f"{host.spec.host}/{host.serial}"
        try:
            proc = subprocess.Popen(
                argv,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
            )
        except OSError as exc:
            self._host_failure(host, f"spawn failed: {exc!r}")
            return None
        worker = _Worker(host, label, proc)
        self._workers.append(worker)
        reader = threading.Thread(target=self._reader, args=(worker,), daemon=True)
        reader.start()
        return worker

    def _dispatch(self) -> None:
        """Hand queued requests to idle ready workers."""
        while self._queue:
            idle = next((w for w in self._workers if w.state == _READY), None)
            if idle is None:
                return
            pending = self._queue.popleft()
            pending.worker = idle
            idle.current = pending
            idle.state = _BUSY
            idle.next_id += 1
            idle.last_seen = time.monotonic()
            line = json.dumps(
                {
                    "op": "run",
                    "id": idle.next_id,
                    "module": pending.request.module_name,
                    "func": pending.request.func_name,
                    "params": encode_payload(pending.request.params),
                    "hb_interval": self.hb_interval,
                }
            )
            try:
                assert idle.proc.stdin is not None
                idle.proc.stdin.write(line + "\n")
                idle.proc.stdin.flush()
            except (OSError, ValueError):
                self._worker_died(idle, "stdin closed")
                continue
            bus = self.bus
            if bus is not None:
                bus.emit(
                    BACKEND_SUBMIT,
                    self.trace_time(),
                    backend=self.name,
                    key=pending.request.key,
                    worker=idle.label,
                )

    def _reader(self, worker: _Worker) -> None:
        """Per-worker thread: consume protocol lines until EOF."""
        stdout = worker.proc.stdout
        assert stdout is not None
        for line in stdout:
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                continue
            with self._lock:
                if worker.state == _DEAD:
                    return
                worker.last_seen = time.monotonic()
                op = message.get("op")
                if op == "ready":
                    worker.state = _READY
                    self._dispatch()
                elif op == "done":
                    self._complete(worker, message)
        with self._lock:
            self._worker_died(worker, "eof")

    def _complete(self, worker: _Worker, message: Dict[str, Any]) -> None:
        pending = worker.current
        worker.current = None
        worker.state = _READY
        if pending is None:
            return
        bus = self.bus
        if message.get("ok"):
            if bus is not None:
                bus.emit(
                    BACKEND_RESULT,
                    self.trace_time(),
                    backend=self.name,
                    key=pending.request.key,
                    worker=worker.label,
                    ok=True,
                    worker_seconds=float(message.get("worker_seconds", 0.0)),
                )
            pending.future.set_result(
                {
                    "result": decode_payload(message["result"]),
                    "worker_seconds": float(message.get("worker_seconds", 0.0)),
                    "worker": worker.label,
                }
            )
        else:
            if bus is not None:
                bus.emit(
                    BACKEND_RESULT,
                    self.trace_time(),
                    backend=self.name,
                    key=pending.request.key,
                    worker=worker.label,
                    ok=False,
                )
            pending.future.set_exception(
                RemoteShardError(
                    f"shard {pending.request.key!r} failed on {worker.label}: "
                    f"{message.get('error', 'unknown error')}",
                    remote_traceback=str(message.get("traceback", "")),
                )
            )
        self._dispatch()

    def _worker_died(self, worker: _Worker, reason: str) -> None:
        if worker.state == _DEAD:
            return
        worker.state = _DEAD
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.proc.kill()
        except OSError:
            pass
        bus = self.bus
        if bus is not None:
            bus.emit(
                BACKEND_WORKER_DEAD,
                self.trace_time(),
                backend=self.name,
                worker=worker.label,
                reason=reason,
            )
        pending = worker.current
        worker.current = None
        if pending is not None:
            pending.future.set_exception(
                WorkerTimeout(f"worker {worker.label} died ({reason})")
            )
        self._host_failure(worker.host, reason)

    def _host_failure(self, host: _Host, reason: str) -> None:
        host.failures += 1
        if host.failures >= self.blacklist_after and not host.blacklisted:
            host.blacklisted = True
            bus = self.bus
            if bus is not None:
                bus.emit(
                    BACKEND_BLACKLIST,
                    self.trace_time(),
                    backend=self.name,
                    host=host.spec.host,
                    failures=host.failures,
                )
            for worker in [w for w in self._workers if w.host is host]:
                self._worker_died(worker, "host blacklisted")
        if not self._usable_hosts():
            # Last host gone: fail everything still queued so waiters
            # degrade instead of hanging.
            for pending in self._queue:
                pending.future.set_exception(BackendBroken("every ssh host is blacklisted"))
            self._queue.clear()

    def _watchdog(self, pending: _Pending) -> None:
        """Run from the waiting future: enforce heartbeat deadlines."""
        with self._lock:
            if pending.future.done:
                return
            worker = pending.worker
            now = time.monotonic()
            if worker is not None:
                if worker.state in (_BUSY, _SPAWNING) and (
                    now - worker.last_seen > self.heartbeat_timeout
                ):
                    self._worker_died(worker, "heartbeat timeout")
                return
            # Still queued: reap any stuck spawns so the queue drains or
            # the backend declares itself broken.
            for candidate in list(self._workers):
                if candidate.state == _SPAWNING and (
                    now - candidate.last_seen > self.heartbeat_timeout
                ):
                    self._worker_died(candidate, "never became ready")
            if not self._usable_hosts() and pending in self._queue:
                self._queue.remove(pending)
                pending.future.set_exception(BackendBroken("every ssh host is blacklisted"))
            elif not self._workers:
                self._top_up()
                self._dispatch()
