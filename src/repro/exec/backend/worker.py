"""Shard-RPC worker: the remote end of ``SubprocessSSHBackend``.

Run as ``python -m repro.exec.backend.worker`` (typically behind
``ssh <host>``). Speaks newline-delimited JSON over stdio:

controller → worker (stdin)::

    {"op": "run", "id": N, "module": "...", "func": "...", "params": "<b64 pickle>"}
    {"op": "exit"}

worker → controller (stdout)::

    {"op": "ready", "pid": P}                                   on startup
    {"op": "hb", "id": N}                                       every --hb-interval while a shard runs
    {"op": "done", "id": N, "ok": true,
     "result": "<b64 pickle>", "worker_seconds": S}             on success
    {"op": "done", "id": N, "ok": false,
     "error": "...", "traceback": "..."}                        on shard failure

The heartbeat is the liveness signal: a worker that keeps running but
stops heartbeating (swapped out, stuck in uninterruptible I/O, frozen
host) is indistinguishable from a dead one, so the controller declares
it dead after ``heartbeat_timeout`` and resubmits the shard elsewhere.

Shard code must never corrupt the protocol stream, so the real stdout
is dup'ed away for protocol use and fd 1 is pointed at stderr before
any experiment module is imported — even C-level prints from a shard
land in the (discarded or logged) stderr stream.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
import traceback
from typing import Any, Dict, Optional, TextIO


def _claim_stdout() -> TextIO:
    """Reserve the protocol channel; route shard prints to stderr."""
    proto = os.fdopen(os.dup(1), "w", encoding="utf-8")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    return proto


def _send(proto: TextIO, message: Dict[str, Any]) -> None:
    proto.write(json.dumps(message) + "\n")
    proto.flush()


class _Heartbeat:
    """Emits ``hb`` lines for one shard from a daemon thread."""

    def __init__(self, proto: TextIO, lock: threading.Lock, request_id: int, interval: float):
        self._proto = proto
        self._lock = lock
        self._id = request_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        if self._interval > 0:
            self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            with self._lock:
                _send(self._proto, {"op": "hb", "id": self._id})


def _run_request(proto: TextIO, lock: threading.Lock, request: Dict[str, Any]) -> None:
    from repro.exec.backend.base import decode_payload, encode_payload
    from repro.exec.shards import invoke_shard

    request_id = int(request["id"])
    started = time.perf_counter()
    try:
        params = decode_payload(request["params"])
        with _Heartbeat(proto, lock, request_id, float(request.get("hb_interval", 1.0))):
            result = invoke_shard(request["module"], request["func"], params)
        done = {
            "op": "done",
            "id": request_id,
            "ok": True,
            "result": encode_payload(result),
            "worker_seconds": time.perf_counter() - started,
        }
    except BaseException as exc:  # a shard failure must not kill the worker
        done = {
            "op": "done",
            "id": request_id,
            "ok": False,
            "error": repr(exc),
            "traceback": traceback.format_exc(),
        }
    with lock:
        _send(proto, done)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.exec.backend.worker")
    parser.add_argument(
        "--hb-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="default heartbeat period while a shard runs (seconds)",
    )
    args = parser.parse_args(argv)

    proto = _claim_stdout()
    lock = threading.Lock()
    with lock:
        _send(proto, {"op": "ready", "pid": os.getpid()})
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError:
            continue  # garbage on stdin (e.g. a motd leaking through ssh)
        op = request.get("op")
        if op == "exit":
            break
        if op == "run":
            request.setdefault("hb_interval", args.hb_interval)
            _run_request(proto, lock, request)
    return 0


if __name__ == "__main__":
    sys.exit(main())
