"""Content-addressed on-disk cache of shard results.

A shard's output is fully determined by (experiment id, shard key,
resolved parameters, code version): simulations are deterministic per
seed, and the PR-1 run manifests already established the git SHA as the
code-version key. The cache therefore addresses each result by the
SHA-256 of exactly those fields — a warm rerun of an unchanged
evaluation skips simulation entirely, and *any* change to a parameter,
a seed, or the checked-out commit changes the key and misses.

Layout: ``<root>/<experiment>/<digest>.pkl``, one pickle per shard,
written atomically (temp file + ``os.replace``) so a crashed or
concurrent run can never leave a truncated entry behind. Unreadable
entries are treated as misses and removed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

#: Bump when the on-disk entry format changes: stale formats then miss
#: instead of unpickling garbage.
CACHE_FORMAT = 1


def default_code_version() -> str:
    """The cache's code-version key: git SHA, plus a dirty marker.

    A tree with uncommitted changes is *not* the commit it reports, so
    results computed from it must never collide with (nor later shadow)
    the clean-SHA entries — ``<sha>+dirty`` keeps the two populations
    disjoint. Dirty-tree entries still hit across reruns of the same
    dirty tree, which is the common edit-run-edit loop.
    """
    from repro.obs.report import git_dirty, git_sha

    sha = git_sha() or "unknown"
    return f"{sha}+dirty" if git_dirty() else sha


def canonical_text(value: Any) -> str:
    """A deterministic text form of a parameter structure.

    Dict keys are sorted, tuples/sets collapse to lists, dataclasses to
    their field dicts; anything else falls back to ``repr``. Two
    parameter sets get the same text iff they are semantically equal,
    independent of dict insertion order or tuple-vs-list spelling.
    """
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


def _canonical(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_canonical(item) for item in value)
    if is_dataclass(value) and not isinstance(value, type):
        return {type(value).__name__: _canonical(asdict(value))}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class ResultCache:
    """Content-addressed shard-result store under one root directory."""

    def __init__(self, root: Union[str, Path], code_version: Optional[str] = None):
        self.root = Path(root)
        if code_version is None:
            code_version = default_code_version()
        self.code_version = code_version
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ------------------------------------------------------------

    def key(self, experiment: str, shard_key: str, params: Dict[str, Any]) -> str:
        material = canonical_text(
            {
                "format": CACHE_FORMAT,
                "experiment": experiment,
                "shard": shard_key,
                "params": params,
                "code": self.code_version,
            }
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, experiment: str, key: str) -> Path:
        return self.root / experiment / f"{key}.pkl"

    # -- access ----------------------------------------------------------

    def get(self, experiment: str, shard_key: str, params: Dict[str, Any]) -> Tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss."""
        path = self.path_for(experiment, self.key(experiment, shard_key, params))
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            # Truncated/stale entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return False, None
        self.hits += 1
        return True, result

    def put(self, experiment: str, shard_key: str, params: Dict[str, Any], result: Any) -> Path:
        """Store ``result`` atomically; returns the entry path."""
        path = self.path_for(experiment, self.key(experiment, shard_key, params))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # -- reporting -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}
