"""Campaign orchestration: experiments → shard plans → merged results.

:func:`execute_experiment` is the exec-engine equivalent of
``runner.run_experiment``: it resolves an experiment id and parameter
overrides, builds a :class:`~repro.exec.shards.ShardPlan`, executes it
(pool / inline / cache per the :class:`~repro.exec.workers.ExecPolicy`),
and merges shard results deterministically.

:func:`run_campaign` fans the whole evaluation (or any subset) out over
one shared policy and cache, streams per-shard progress, and assembles
the aggregated campaign manifest (one PR-1 run manifest per experiment
plus campaign-level totals) for the report writer in ``repro.obs``.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.backend.base import ExecutionBackend
from repro.exec.cache import ResultCache
from repro.exec.journal import CampaignJournal
from repro.exec.shards import ShardPlan, build_plan
from repro.exec.workers import (
    SOURCE_CACHE,
    SOURCE_INLINE,
    SOURCE_POOL,
    ExecPolicy,
    ShardOutcome,
    execute_shards,
)
from repro.obs.spans import SPAN_EXPERIMENT, current_profiler


class CampaignAborted(RuntimeError):
    """The campaign stopped early on purpose (``--die-after`` fault
    injection). Everything completed so far is cached and journaled, so
    ``--resume`` picks up exactly where this raise left off."""

    def __init__(self, completed: int, planned: int):
        super().__init__(
            f"campaign aborted after {completed} of {planned} shard outcome(s) (--die-after)"
        )
        self.completed = completed
        self.planned = planned


@dataclass
class ExperimentExecution:
    """One experiment's merged result plus per-shard accounting."""

    name: str
    result: Dict
    plan: ShardPlan
    outcomes: List[ShardOutcome]
    parameters: Dict
    jobs: int
    wall_seconds: float

    @property
    def shards_total(self) -> int:
        return len(self.outcomes)

    def count(self, source: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.source == source)

    @property
    def cache_hits(self) -> int:
        return self.count(SOURCE_CACHE)

    def sources(self) -> Dict[str, int]:
        """Executed-shard counts by source (cache excluded): ``pool``,
        ``inline``, or whichever backend ran them (``ssh``, ``queue``)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.source != SOURCE_CACHE:
                counts[outcome.source] = counts.get(outcome.source, 0) + 1
        return counts

    def workers(self) -> Dict[str, Dict[str, float]]:
        """Per-worker rollup for backend-executed shards: how many
        shards each worker lane ran and how much compute it did."""
        rollup: Dict[str, Dict[str, float]] = {}
        for outcome in self.outcomes:
            if not outcome.worker:
                continue
            entry = rollup.setdefault(outcome.worker, {"shards": 0, "worker_seconds": 0.0})
            entry["shards"] += 1
            entry["worker_seconds"] = round(entry["worker_seconds"] + outcome.worker_seconds, 6)
        return rollup

    def summary_line(self) -> str:
        sources = self.sources()
        by_source = "".join(
            f" {source}={sources[source]}" for source in sorted(sources)
        ) or " executed=0"
        return (
            f"exec: {self.name} shards={self.shards_total} jobs={self.jobs}"
            f" cached={self.cache_hits}/{self.shards_total}"
            f"{by_source}"
            f" wall={self.wall_seconds:.2f}s"
        )

    @property
    def retries(self) -> int:
        """Attempts beyond the first, summed over executed shards."""
        return sum(
            max(0, outcome.attempts - 1)
            for outcome in self.outcomes
            if outcome.source != SOURCE_CACHE
        )

    def telemetry(self) -> Dict:
        """Execution telemetry for the run manifest: where shards came
        from (including which backend and which worker), how often they
        retried, and where their time went."""
        return {
            "shards": self.shards_total,
            "cached": self.cache_hits,
            "pool": self.count(SOURCE_POOL),
            "inline": self.count(SOURCE_INLINE),
            "sources": self.sources(),
            "workers": self.workers(),
            "retries": self.retries,
            "wall_seconds": round(self.wall_seconds, 6),
            "worker_seconds": round(sum(o.worker_seconds for o in self.outcomes), 6),
            "queue_seconds": round(sum(o.queue_seconds for o in self.outcomes), 6),
            "shard_detail": [
                {
                    "key": outcome.shard.key,
                    "source": outcome.source,
                    "attempts": outcome.attempts,
                    "wall": round(outcome.wall_seconds, 6),
                    "worker": round(outcome.worker_seconds, 6),
                    "queue": round(outcome.queue_seconds, 6),
                    "worker_id": outcome.worker,
                }
                for outcome in self.outcomes
            ],
        }


def resolve_plan(
    name: str, fast: bool = False, overrides: Optional[Dict] = None
) -> Tuple[ShardPlan, Dict]:
    """Resolve an experiment id + overrides into ``(plan, parameters)``
    without executing anything.

    Split out of :func:`execute_experiment` so the campaign loop can
    pre-plan every experiment up front — knowing the total shard count
    is what makes honest progress/ETA lines possible.
    """
    from repro.experiments import runner  # runner imports us lazily; avoid a cycle

    entry = runner.REGISTRY.get(name)
    if entry is None:
        raise KeyError(f"unknown experiment: {name!r} (try 'list')")
    module = importlib.import_module(entry["module"])
    overrides = dict(overrides or {})
    runner._validate_overrides(name, module, overrides)
    kwargs = dict(entry["fast"]) if fast else {}
    kwargs.update(overrides)
    return build_plan(name, module, kwargs), kwargs


def execute_experiment(
    name: str,
    fast: bool = False,
    overrides: Optional[Dict] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[ExecPolicy] = None,
    on_outcome: Optional[Callable[[ShardOutcome], None]] = None,
    plan: Optional[ShardPlan] = None,
    parameters: Optional[Dict] = None,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentExecution:
    """Run one experiment through the exec engine; returns its result
    dict (identical to ``run_experiment``'s) plus shard accounting.

    ``plan``/``parameters`` accept a pre-resolved :func:`resolve_plan`
    result so the campaign loop does not plan twice. ``backend``
    overrides shard placement (see ``repro.exec.backend``); ``None``
    keeps the default local pool / inline strategy.
    """
    if plan is None:
        plan, parameters = resolve_plan(name, fast=fast, overrides=overrides)
    kwargs = dict(parameters or {})

    if policy is None:
        policy = ExecPolicy(jobs=jobs)
    else:
        policy.jobs = jobs

    started = time.perf_counter()
    outcomes = execute_shards(
        plan.module_name,
        plan.func_name,
        plan.shards,
        policy=policy,
        cache=cache,
        experiment=name,
        on_outcome=on_outcome,
        backend=backend,
    )
    result = plan.merge([outcome.result for outcome in outcomes])
    wall = time.perf_counter() - started
    return ExperimentExecution(
        name=name,
        result=result,
        plan=plan,
        outcomes=outcomes,
        parameters=kwargs,
        jobs=policy.jobs,
        wall_seconds=wall,
    )


@dataclass
class CampaignResult:
    """Everything a campaign produced, ready for reporting."""

    executions: List[ExperimentExecution] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs: int = 1
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def shards_total(self) -> int:
        return sum(execution.shards_total for execution in self.executions)

    @property
    def cache_hits(self) -> int:
        return sum(execution.cache_hits for execution in self.executions)

    def summary_line(self) -> str:
        cached = f" cached={self.cache_hits}/{self.shards_total}" if self.cache_stats else ""
        return (
            f"campaign: {len(self.executions)} experiments"
            f" shards={self.shards_total}{cached} jobs={self.jobs}"
            f" wall={self.wall_seconds:.2f}s"
        )

    def telemetry(self) -> Dict:
        """Campaign-level execution counters (per-experiment detail
        lives in each run manifest's own ``telemetry``)."""
        sources: Dict[str, int] = {}
        workers: Dict[str, Dict[str, float]] = {}
        for execution in self.executions:
            for source, count in execution.sources().items():
                sources[source] = sources.get(source, 0) + count
            for worker, entry in execution.workers().items():
                rollup = workers.setdefault(worker, {"shards": 0, "worker_seconds": 0.0})
                rollup["shards"] += entry["shards"]
                rollup["worker_seconds"] = round(
                    rollup["worker_seconds"] + entry["worker_seconds"], 6
                )
        return {
            "shards": self.shards_total,
            "cached": self.cache_hits,
            "pool": sum(e.count(SOURCE_POOL) for e in self.executions),
            "inline": sum(e.count(SOURCE_INLINE) for e in self.executions),
            "sources": sources,
            "workers": workers,
            "retries": sum(e.retries for e in self.executions),
            "wall_seconds": round(self.wall_seconds, 6),
            "worker_seconds": round(
                sum(o.worker_seconds for e in self.executions for o in e.outcomes), 6
            ),
            "queue_seconds": round(
                sum(o.queue_seconds for e in self.executions for o in e.outcomes), 6
            ),
        }


def run_campaign(
    names: Sequence[str],
    fast: bool = False,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    policy: Optional[ExecPolicy] = None,
    progress: Optional[Callable[[str], None]] = None,
    on_experiment: Optional[Callable[[ExperimentExecution], None]] = None,
    backend: Optional[ExecutionBackend] = None,
    journal: Optional[CampaignJournal] = None,
    die_after: Optional[int] = None,
) -> CampaignResult:
    """Fan a list of experiments out through one shared policy/cache.

    ``progress`` receives one line per completed shard and per
    experiment boundary; ``on_experiment`` fires after each experiment
    merges (the CLI prints the paper report there).

    The whole campaign is planned up front (plans are pure, no
    simulation runs), so every shard line carries campaign-wide
    progress ``[done/total]`` and an ETA extrapolated from the observed
    per-shard rate — shown as ``eta=?`` until at least one shard has
    actually *executed* (cache hits land in microseconds and would
    extrapolate an absurd ETA for the real work remaining).

    ``backend`` places every experiment's shards (one backend spans the
    campaign); ``journal`` receives plan/outcome records as they
    happen (see ``repro.exec.journal``); ``die_after`` aborts the
    campaign with :class:`CampaignAborted` after that many shard
    outcomes — fault injection for testing ``--resume``.
    """
    campaign = CampaignResult(jobs=jobs, cache_stats=None)
    started = time.perf_counter()
    profiler = current_profiler()

    plans = [resolve_plan(name, fast=fast) for name in names]
    shards_planned = sum(len(plan) for plan, _ in plans)
    done_total = 0
    executed_total = 0

    if journal is not None:
        for name, (plan, _) in zip(names, plans):
            journal.plan(name, [shard.key for shard in plan.shards])

    for position, (name, (plan, parameters)) in enumerate(zip(names, plans), start=1):
        if progress is not None:
            progress(
                f"[{position}/{len(names)}] {name}: {len(plan)} shard(s),"
                f" {shards_planned - done_total} of {shards_planned} left in campaign"
            )
        done = 0

        def on_outcome(outcome: ShardOutcome, name: str = name) -> None:
            nonlocal done, done_total, executed_total
            done += 1
            done_total += 1
            if outcome.source != SOURCE_CACHE:
                executed_total += 1
            if journal is not None:
                journal.outcome(
                    name,
                    outcome.shard.key,
                    outcome.source,
                    outcome.attempts,
                    outcome.wall_seconds,
                )
            if progress is not None:
                remaining = shards_planned - done_total
                eta = ""
                if remaining > 0:
                    # Extrapolate from *executed* shards only: cache
                    # hits land in microseconds, and dividing wall time
                    # by a done-count dominated by them is the old
                    # eta=0s bug. Until one shard has actually run there
                    # is nothing to extrapolate from, so say so.
                    elapsed = time.perf_counter() - started
                    if executed_total > 0 and elapsed > 0:
                        eta = f" eta={elapsed / executed_total * remaining:.0f}s"
                    else:
                        eta = " eta=?"
                progress(
                    f"  {name} shard {outcome.shard.key} -> {outcome.source}"
                    f" ({done} done, attempts={outcome.attempts},"
                    f" {outcome.wall_seconds:.2f}s)"
                    f" [{done_total}/{shards_planned}{eta}]"
                )
            if die_after is not None and done_total >= die_after:
                raise CampaignAborted(done_total, shards_planned)

        def run_one() -> ExperimentExecution:
            return execute_experiment(
                name,
                fast=fast,
                jobs=jobs,
                cache=cache,
                policy=policy,
                on_outcome=on_outcome,
                plan=plan,
                parameters=parameters,
                backend=backend,
            )

        if profiler is not None:
            with profiler.span(SPAN_EXPERIMENT, experiment=name, shards=len(plan)) as span:
                execution = run_one()
                span.add(cached=execution.cache_hits, retries=execution.retries)
        else:
            execution = run_one()
        campaign.executions.append(execution)
        if progress is not None:
            progress(f"  {execution.summary_line()}")
        if on_experiment is not None:
            on_experiment(execution)
    campaign.wall_seconds = time.perf_counter() - started
    campaign.cache_stats = cache.stats() if cache is not None else None
    if journal is not None:
        journal.end(campaign.shards_total, campaign.cache_hits, campaign.wall_seconds)
    return campaign


def campaign_manifest(
    campaign: CampaignResult, fast: bool, started_at: float, spans: Optional[object] = None
) -> Dict:
    """The aggregated obs manifest: per-experiment manifests + totals.

    Each experiment entry carries its shard telemetry; the campaign
    level carries the aggregated counters and, when a span profiler
    ran, the wall-time span tree under ``spans``.
    """
    from repro.obs.report import build_campaign_manifest, build_manifest

    manifests = [
        build_manifest(
            experiment=execution.name,
            parameters=execution.parameters,
            fast=fast,
            started_at=started_at,
            wall_seconds=execution.wall_seconds,
            jobs=execution.jobs,
            shards_total=execution.shards_total,
            shards_cached=execution.cache_hits,
            telemetry=execution.telemetry(),
        )
        for execution in campaign.executions
    ]
    manifest = build_campaign_manifest(
        manifests,
        started_at=started_at,
        wall_seconds=campaign.wall_seconds,
        jobs=campaign.jobs,
        shards_total=campaign.shards_total,
        shards_cached=campaign.cache_hits,
        cache_stats=campaign.cache_stats,
        telemetry=campaign.telemetry(),
    )
    if spans is not None:
        manifest["spans"] = spans.to_dict()
    return manifest
