"""Append-only campaign journal: the record that makes ``--resume`` work.

A campaign writes one JSONL journal (``--journal PATH``): a ``begin``
record with the campaign's arguments and cache configuration, a
``plan`` record per experiment naming every planned shard key, an
``outcome`` record per completed shard, and an ``end`` record when the
campaign finishes. Every record is flushed as it is appended, so a
campaign killed mid-run leaves a journal that is truncated, never
corrupt — later records are simply missing.

``--resume PATH`` replays the journal: the campaign re-runs with the
*recorded* arguments (experiment list, fast flag, cache directory,
backend spec — overridable from the CLI) against the same result
cache. Because the exec engine caches every outcome as it lands,
shards the killed run completed come back as cache hits and only the
remainder executes; the deterministic plan-order merge then makes the
resumed output byte-identical to an uninterrupted run.

The journal is *advisory* for correctness — the cache alone guarantees
no completed shard re-executes — but it is the durable record of what
a campaign was (arguments, plans, per-shard history across resumes),
and the resume summary (``N of M shards already complete``) is read
from it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, TextIO, Union


class JournalError(RuntimeError):
    """The journal file cannot be read or is not a campaign journal."""


class CampaignJournal:
    """Append-only JSONL writer for one campaign (and its resumes).

    Opened in append mode: resuming a campaign appends a ``resume``
    record and continues the same file, so the full history of a
    campaign — original run, every crash, every resume — is one
    document in order.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = open(self.path, "a", encoding="utf-8")

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        record["ts"] = round(time.time(), 3)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def begin(
        self,
        names: Sequence[str],
        fast: bool,
        backend: Optional[str],
        cache_dir: Optional[str],
        code_version: str,
    ) -> None:
        self._append(
            {
                "op": "begin",
                "names": list(names),
                "fast": fast,
                "backend": backend,
                "cache_dir": cache_dir,
                "code_version": code_version,
                "pid": os.getpid(),
            }
        )

    def resume(self, completed: int, planned: int) -> None:
        self._append(
            {"op": "resume", "completed": completed, "planned": planned, "pid": os.getpid()}
        )

    def plan(self, experiment: str, keys: Sequence[str]) -> None:
        self._append({"op": "plan", "experiment": experiment, "shards": list(keys)})

    def outcome(
        self, experiment: str, key: str, source: str, attempts: int, wall_seconds: float
    ) -> None:
        self._append(
            {
                "op": "outcome",
                "experiment": experiment,
                "key": key,
                "source": source,
                "attempts": attempts,
                "wall": round(wall_seconds, 6),
            }
        )

    def end(self, shards: int, cached: int, wall_seconds: float) -> None:
        self._append(
            {"op": "end", "shards": shards, "cached": cached, "wall": round(wall_seconds, 6)}
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class JournalState:
    """What a parsed journal says about a campaign so far."""

    names: List[str] = field(default_factory=list)
    fast: bool = False
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    code_version: str = ""
    #: experiment -> planned shard keys, in plan order.
    plans: Dict[str, List[str]] = field(default_factory=dict)
    #: experiment -> keys with at least one recorded outcome.
    completed: Dict[str, Set[str]] = field(default_factory=dict)
    ended: bool = False
    resumes: int = 0

    @property
    def planned_shards(self) -> int:
        return sum(len(keys) for keys in self.plans.values())

    @property
    def completed_shards(self) -> int:
        return sum(len(keys) for keys in self.completed.values())

    def summary_line(self) -> str:
        state = "complete" if self.ended else "interrupted"
        return (
            f"journal: {len(self.names)} experiment(s), "
            f"{self.completed_shards} of {self.planned_shards} shard(s) done, "
            f"{state}"
            + (f", {self.resumes} prior resume(s)" if self.resumes else "")
        )


def load_journal(path: Union[str, Path]) -> JournalState:
    """Parse a journal, tolerating a torn final line (killed mid-write)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    state = JournalState()
    saw_begin = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail from a kill mid-append
        op = record.get("op")
        if op == "begin" and not saw_begin:
            saw_begin = True
            state.names = [str(name) for name in record.get("names", [])]
            state.fast = bool(record.get("fast", False))
            backend = record.get("backend")
            state.backend = None if backend is None else str(backend)
            cache_dir = record.get("cache_dir")
            state.cache_dir = None if cache_dir is None else str(cache_dir)
            state.code_version = str(record.get("code_version", ""))
        elif op == "resume":
            state.resumes += 1
        elif op == "plan":
            state.plans[str(record["experiment"])] = [str(k) for k in record.get("shards", [])]
        elif op == "outcome":
            state.completed.setdefault(str(record["experiment"]), set()).add(str(record["key"]))
        elif op == "end":
            state.ended = True
    if not saw_begin:
        raise JournalError(f"{path} is not a campaign journal (no begin record)")
    return state
