"""The shard protocol: how experiments expose independent work units.

Every evaluation artifact in this repo is a loop over *independent*
simulations — per-seed vehicular runs, per-configuration Table rows,
per-grid-point model evaluations — whose outputs are combined by pure
post-processing (CDFs, means, row assembly). That structure is exactly
what parallel execution needs, so it is made explicit: an experiment
module opts in by defining three module-level functions

``shards(**kwargs) -> List[Shard]``
    Enumerate the run's independent units, in a stable order. Pure:
    no simulation happens here. ``kwargs`` are the experiment's own
    ``run()`` parameters.

``run_shard(**shard.params) -> Any``
    Execute one unit and return a picklable result. This is the only
    function that may run in a worker process, so its parameters and
    return value must survive ``pickle``.

``merge(results, **kwargs) -> Dict``
    Combine per-shard results — given in ``shards()`` order — into the
    experiment's result dict. Pure and deterministic: the sequential
    ``run()`` is *defined* as ``merge(map(run_shard, shards))`` in the
    opted-in modules, which is what makes parallel output byte-identical
    to sequential output.

Modules that do not opt in still execute through the same machinery via
the *whole-run fallback*: a single shard that calls ``run(**kwargs)``
and an identity merge. They gain result caching and the campaign
summary, just not intra-experiment parallelism.
"""

from __future__ import annotations

import importlib
import time
import types
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

#: Shard key of the whole-run fallback.
WHOLE_RUN = "whole-run"


@dataclass(frozen=True)
class Shard:
    """One independent unit of an experiment.

    ``key`` is a stable human-readable id ("case=0/seed=2") used for
    progress reporting and as part of the cache key; ``params`` are the
    keyword arguments for the module's ``run_shard`` and must be
    picklable.
    """

    key: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ShardPlan:
    """A resolved execution plan for one experiment run."""

    experiment: str
    module_name: str
    func_name: str
    shards: List[Shard]
    merge: Callable[[Sequence[Any]], Any]
    sharded: bool

    def __len__(self) -> int:
        return len(self.shards)


def supports_sharding(module: types.ModuleType) -> bool:
    """True if ``module`` implements the full shard protocol."""
    return all(callable(getattr(module, name, None)) for name in ("shards", "run_shard", "merge"))


def build_plan(experiment: str, module: types.ModuleType, kwargs: Dict[str, Any]) -> ShardPlan:
    """Resolve ``experiment`` + parameters into a :class:`ShardPlan`.

    Opted-in modules contribute their own shards and merge; everything
    else gets the whole-run fallback (one shard, identity merge).
    """
    if supports_sharding(module):
        shards = list(module.shards(**kwargs))
        if not shards:
            raise ValueError(f"experiment {experiment!r}: shards(**{kwargs!r}) returned no shards")
        return ShardPlan(
            experiment=experiment,
            module_name=module.__name__,
            func_name="run_shard",
            shards=shards,
            merge=lambda results: module.merge(list(results), **kwargs),
            sharded=True,
        )
    return ShardPlan(
        experiment=experiment,
        module_name=module.__name__,
        func_name="run",
        shards=[Shard(key=WHOLE_RUN, params=dict(kwargs))],
        merge=lambda results: results[0],
        sharded=False,
    )


def invoke_shard(module_name: str, func_name: str, params: Dict[str, Any]) -> Any:
    """Import and call one shard function.

    Module-level on purpose: this is the entry point submitted to
    worker processes, so it must be picklable by reference and
    self-contained (the worker re-imports the experiment module).
    """
    module = importlib.import_module(module_name)
    return getattr(module, func_name)(**params)


def invoke_shard_timed(module_name: str, func_name: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Like :func:`invoke_shard`, but measures the worker-side wall time.

    Returns ``{"result": ..., "worker_seconds": ...}``. The caller's
    submit-to-result wall clock includes queue wait and IPC; subtracting
    the worker-side figure separates "the shard was slow" from "the
    shard waited for a worker" in the telemetry.
    """
    started = time.perf_counter()
    result = invoke_shard(module_name, func_name, params)
    return {"result": result, "worker_seconds": time.perf_counter() - started}
