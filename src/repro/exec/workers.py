"""Fault-tolerant shard execution: strategy over pluggable backends.

Execution strategy, in order of preference:

1. **Cache** — shards whose key is already in the :class:`ResultCache`
   never execute at all; results are cached per-outcome as they land,
   so a killed run loses nothing that already finished (the basis of
   campaign ``--resume``).
2. **Backend** — remaining shards fan out through an
   :class:`~repro.exec.backend.ExecutionBackend`: the local process
   pool by default (``jobs`` workers), or whatever ``--backend``
   selected (SSH workers, a queue-dir spool). Each shard gets a
   per-shard timeout and a bounded number of retries with exponential
   backoff; a shard that keeps failing in the backend gets one final
   in-process attempt before the run is declared failed.
3. **In-process sequential** — used outright for ``jobs <= 1`` or a
   single pending shard (no pool overhead, default backend only), and
   as the graceful degradation path when the backend dies
   (:class:`~repro.exec.backend.BackendBroken`: the pool's workers
   were OOM-killed, every SSH host is blacklisted, the spool is
   unserviced).

Whatever the path, outcomes are returned **in shard order**, never in
completion order — together with the experiments' pure ``merge`` this
makes distributed output byte-identical to sequential output.

This module holds the *strategy* (retries, timeouts, ordering,
degradation); *placement* lives behind the backend ABC, and simlint
SL010 keeps executor/subprocess primitives inside
``repro.exec.backend``.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exec.backend.base import (
    BackendBroken,
    BackendFuture,
    ExecutionBackend,
    ShardRequest,
)
from repro.exec.cache import ResultCache
from repro.exec.shards import Shard, invoke_shard
from repro.obs.spans import (
    SPAN_BACKEND_TASK,
    SPAN_EXEC_CACHE,
    SPAN_EXEC_SHARD,
    SPAN_EXEC_SHARDS,
    current_profiler,
)

#: How a shard's result was obtained. Backend-executed shards report
#: the backend's name (the local pool keeps the historical "pool").
SOURCE_CACHE = "cache"
SOURCE_POOL = "pool"
SOURCE_INLINE = "inline"
SOURCE_SSH = "ssh"
SOURCE_QUEUE = "queue"


class ShardError(RuntimeError):
    """A shard failed on every attempt, including the in-process one."""

    def __init__(self, experiment: str, shard: Shard, attempts: int, cause: BaseException):
        super().__init__(
            f"experiment {experiment!r} shard {shard.key!r} failed after "
            f"{attempts} attempt(s): {cause!r}"
        )
        self.experiment = experiment
        self.shard = shard
        self.attempts = attempts
        self.cause = cause


@dataclass
class ExecPolicy:
    """Knobs of the execution strategy."""

    jobs: int = 1
    #: Seconds a single backend attempt may take; ``None`` disables the
    #: timeout. A timed-out attempt counts as a failure and is retried
    #: (the stuck worker is abandoned at shutdown, not joined).
    shard_timeout: Optional[float] = None
    #: Retries *after* the first attempt, per shard.
    max_retries: int = 2
    #: Backoff before retry ``n`` is ``backoff_base * 2**(n-1)`` seconds.
    backoff_base: float = 0.25
    #: Injectable for tests; never called when ``backoff_base == 0``.
    sleep: Callable[[float], None] = field(default=time.sleep)

    def backoff(self, retry: int) -> float:
        return self.backoff_base * (2 ** max(retry - 1, 0))


@dataclass
class ShardOutcome:
    """One shard's result plus how it was obtained.

    ``wall_seconds`` is submit-to-result as seen by the orchestrator;
    ``worker_seconds`` is the time the shard function itself ran (in
    the worker process for backend shards); ``queue_seconds`` is the
    difference — queue wait plus IPC — clamped at zero. ``worker`` is
    the executing worker's lane label (``host/3``,
    ``queue-worker/<pid>``) when a backend reported one. Cached shards
    report zero time and no worker.
    """

    shard: Shard
    result: object
    source: str
    attempts: int
    wall_seconds: float
    worker_seconds: float = 0.0
    queue_seconds: float = 0.0
    worker: str = ""


def execute_shards(
    module_name: str,
    func_name: str,
    shards: Sequence[Shard],
    policy: Optional[ExecPolicy] = None,
    cache: Optional[ResultCache] = None,
    experiment: str = "",
    on_outcome: Optional[Callable[[ShardOutcome], None]] = None,
    backend: Optional[ExecutionBackend] = None,
) -> List[ShardOutcome]:
    """Run every shard; returns outcomes in shard order.

    Raises :class:`ShardError` if any shard fails on all attempts —
    partial evaluations are worse than loud failures.

    ``backend=None`` keeps the historical behavior: inline for
    ``jobs <= 1`` or a single pending shard, a per-call local process
    pool otherwise. An explicit backend receives every pending shard
    (its capacity, not ``jobs``, bounds concurrency) and is *not* shut
    down here — the caller that built it owns its lifecycle, so one
    backend spans a whole campaign.

    With an ambient :class:`~repro.obs.spans.SpanProfiler` installed,
    the call is wrapped in an ``exec.shards`` span, the cache scan in
    an ``exec.cache`` span, every outcome is recorded as a retroactive
    ``exec.shard`` span on its own ``shard:<key>`` lane, and
    backend-executed shards additionally get a ``backend.task`` span on
    a per-worker ``worker:<label>`` lane.
    """
    policy = policy or ExecPolicy()
    profiler = current_profiler()
    outcomes: List[Optional[ShardOutcome]] = [None] * len(shards)

    def finish(index: int, outcome: ShardOutcome) -> None:
        outcomes[index] = outcome
        if cache is not None and outcome.source != SOURCE_CACHE:
            # Per-outcome, not end-of-run: a killed campaign keeps every
            # shard that finished, which is what --resume replays.
            cache.put(experiment, outcome.shard.key, outcome.shard.params, outcome.result)
        if profiler is not None:
            t1 = profiler.now()
            profiler.record(
                SPAN_EXEC_SHARD,
                t1 - outcome.wall_seconds,
                t1,
                key=outcome.shard.key,
                source=outcome.source,
                attempts=outcome.attempts,
                worker=round(outcome.worker_seconds, 6),
                queue=round(outcome.queue_seconds, 6),
                lane=f"shard:{outcome.shard.key}",
            )
            if outcome.worker:
                profiler.record(
                    SPAN_BACKEND_TASK,
                    t1 - outcome.worker_seconds,
                    t1,
                    key=outcome.shard.key,
                    backend=outcome.source,
                    worker=outcome.worker,
                    lane=f"worker:{outcome.worker}",
                )
        if on_outcome is not None:
            on_outcome(outcome)

    pending: List[int] = []

    def scan_cache() -> None:
        for index, shard in enumerate(shards):
            if cache is not None:
                hit, result = cache.get(experiment, shard.key, shard.params)
                if hit:
                    finish(index, ShardOutcome(shard, result, SOURCE_CACHE, 0, 0.0))
                    continue
            pending.append(index)

    def execute_pending() -> None:
        if not pending:
            return
        if backend is not None:
            if backend.capacity() > 0:
                _run_backend(
                    backend, module_name, func_name, shards, pending, policy, experiment, finish
                )
            else:
                _run_inline(module_name, func_name, shards, pending, policy, experiment, finish)
            return
        if policy.jobs <= 1 or len(pending) == 1:
            _run_inline(module_name, func_name, shards, pending, policy, experiment, finish)
            return
        from repro.exec.backend.local import LocalPoolBackend

        try:
            pool = LocalPoolBackend(max_workers=min(policy.jobs, len(pending)))
        except BackendBroken:
            # The host refuses worker processes; degrade immediately.
            _run_inline(module_name, func_name, shards, pending, policy, experiment, finish)
            return
        try:
            _run_backend(
                pool, module_name, func_name, shards, pending, policy, experiment, finish
            )
        finally:
            pool.shutdown(wait=False)

    if profiler is not None:
        with profiler.span(SPAN_EXEC_SHARDS, experiment=experiment, shards=len(shards)) as span:
            with profiler.span(SPAN_EXEC_CACHE, experiment=experiment) as cache_span:
                scan_cache()
                cache_span.add(hits=len(shards) - len(pending), pending=len(pending))
            execute_pending()
            span.add(cached=len(shards) - len(pending))
    else:
        scan_cache()
        execute_pending()

    return [outcome for outcome in outcomes if outcome is not None]


# -- strategies ---------------------------------------------------------


def _run_inline(
    module_name: str,
    func_name: str,
    shards: Sequence[Shard],
    pending: Sequence[int],
    policy: ExecPolicy,
    experiment: str,
    finish: Callable[[int, ShardOutcome], None],
    prior_attempts: int = 0,
) -> None:
    """Sequential in-process execution with retry/backoff."""
    for index in pending:
        shard = shards[index]
        attempts = prior_attempts
        started = time.perf_counter()
        while True:
            attempts += 1
            attempt_started = time.perf_counter()
            try:
                result = invoke_shard(module_name, func_name, shard.params)
            except Exception as exc:
                if attempts - prior_attempts > policy.max_retries:
                    raise ShardError(experiment, shard, attempts, exc) from exc
                backoff = policy.backoff(attempts - prior_attempts)
                if backoff > 0:
                    policy.sleep(backoff)
                continue
            now = time.perf_counter()
            # Wall includes failed attempts and backoff; worker is the
            # successful attempt alone. No queue: nothing waited.
            finish(
                index,
                ShardOutcome(
                    shard,
                    result,
                    SOURCE_INLINE,
                    attempts,
                    now - started,
                    worker_seconds=now - attempt_started,
                ),
            )
            break


def _run_backend(
    backend: ExecutionBackend,
    module_name: str,
    func_name: str,
    shards: Sequence[Shard],
    pending: Sequence[int],
    policy: ExecPolicy,
    experiment: str,
    finish: Callable[[int, ShardOutcome], None],
) -> None:
    """Backend execution with per-shard timeout, retry, and degradation."""
    source = backend.name
    broken = False
    started: Dict[int, float] = {}
    futures: Dict[int, BackendFuture] = {}

    def submit(index: int) -> bool:
        """Submit one shard; flips ``broken`` instead of raising."""
        nonlocal broken
        request = ShardRequest(
            experiment=experiment,
            module_name=module_name,
            func_name=func_name,
            key=shards[index].key,
            params=shards[index].params,
        )
        started[index] = time.perf_counter()
        try:
            futures[index] = backend.submit(request)
        except BackendBroken:
            broken = True
            return False
        return True

    for index in pending:
        if not submit(index):
            break

    for index in pending:
        shard = shards[index]
        attempts = 0
        while True:
            if broken:
                # The backend is gone. Work already in flight may still
                # have landed (the break was discovered later) — harvest
                # it non-blockingly before paying for an inline run.
                future = futures.pop(index, None)
                if future is not None:
                    try:
                        payload = future.result(timeout=0)
                    except Exception:
                        pass
                    else:
                        wall = time.perf_counter() - started[index]
                        worker = float(payload.get("worker_seconds", 0.0))
                        finish(
                            index,
                            ShardOutcome(
                                shard,
                                payload["result"],
                                source,
                                attempts + 1,
                                wall,
                                worker_seconds=worker,
                                queue_seconds=max(0.0, wall - worker),
                                worker=str(payload.get("worker", "")),
                            ),
                        )
                        break
                # Run this shard (and implicitly every later one)
                # in-process. Attempts so far still count toward the
                # reported total.
                _run_inline(
                    module_name,
                    func_name,
                    shards,
                    [index],
                    policy,
                    experiment,
                    finish,
                    prior_attempts=attempts,
                )
                break
            if index not in futures and not submit(index):
                continue
            attempts += 1
            try:
                payload = futures[index].result(timeout=policy.shard_timeout)
                wall = time.perf_counter() - started[index]
                worker = float(payload.get("worker_seconds", 0.0))
                finish(
                    index,
                    ShardOutcome(
                        shard,
                        payload["result"],
                        source,
                        attempts,
                        wall,
                        worker_seconds=worker,
                        queue_seconds=max(0.0, wall - worker),
                        worker=str(payload.get("worker", "")),
                    ),
                )
                break
            except BackendBroken:
                broken = True
                continue
            except FutureTimeoutError as exc:
                failure: BaseException = exc
            except Exception as exc:
                failure = exc
            futures.pop(index, None)  # that attempt is abandoned
            if attempts > policy.max_retries:
                # Last resort before giving up: one in-process try.
                attempt_started = time.perf_counter()
                try:
                    result = invoke_shard(module_name, func_name, shard.params)
                except Exception as final_exc:
                    raise ShardError(experiment, shard, attempts + 1, final_exc) from final_exc
                now = time.perf_counter()
                finish(
                    index,
                    ShardOutcome(
                        shard,
                        result,
                        SOURCE_INLINE,
                        attempts + 1,
                        now - started[index],
                        worker_seconds=now - attempt_started,
                    ),
                )
                break
            backoff = policy.backoff(attempts)
            if backoff > 0:
                policy.sleep(backoff)
            submit(index)
