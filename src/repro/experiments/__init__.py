"""Experiment runners: one module per paper table/figure.

Every runner returns a plain-dict result that prints the same
rows/series the paper reports; the benchmark harness
(``benchmarks/``) wraps these. See DESIGN.md §4 for the index.
"""

from repro.experiments.common import (
    LabScenario,
    RunResult,
    ScenarioConfig,
    VehicularScenario,
)

__all__ = [
    "LabScenario",
    "RunResult",
    "ScenarioConfig",
    "VehicularScenario",
]
