"""Ablations of Spider's design choices (DESIGN.md §5).

Not a paper artifact — these quantify the contribution of each design
decision the paper motivates qualitatively:

- AP selection policy: join-history (Spider) vs best-RSSI vs random;
- DHCP lease caching on vs off;
- fake-PSM buffering on vs off;
- channel-based slicing (Spider) vs AP-based slicing (FatVAP-style).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import SpiderConfig
from repro.core.fatvap import FatVapConfig
from repro.scenario import build, scenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def _run_spider(config: SpiderConfig, seed: int, duration: float):
    world = build(scenario("vehicular-amherst", seed=seed))
    return world.run(world.make_spider(config), duration)


def selection_policy(seed: int = 3, duration: float = 600.0) -> List[Dict]:
    rows = []
    for policy in ("history", "rssi", "random"):
        config = SpiderConfig.single_channel_multi_ap(
            channel=1, selection_policy=policy, **REDUCED
        )
        result = _run_spider(config, seed, duration)
        rows.append(
            {
                "policy": policy,
                "throughput_kBps": result.throughput_kbytes_per_s,
                "connectivity_pct": result.connectivity * 100,
                "join_successes": result.join_successes,
            }
        )
    return rows


def lease_cache(seed: int = 3, duration: float = 900.0) -> List[Dict]:
    rows = []
    for enabled in (True, False):
        config = SpiderConfig.single_channel_multi_ap(
            channel=1, lease_cache_enabled=enabled, **REDUCED
        )
        result = _run_spider(config, seed, duration)
        rows.append(
            {
                "lease_cache": enabled,
                "throughput_kBps": result.throughput_kbytes_per_s,
                "connectivity_pct": result.connectivity * 100,
            }
        )
    return rows


def psm(seed: int = 3, duration: float = 600.0) -> List[Dict]:
    rows = []
    for enabled in (True, False):
        config = SpiderConfig.multi_channel_multi_ap(period=0.6, use_psm=enabled, **REDUCED)
        result = _run_spider(config, seed, duration)
        rows.append(
            {
                "psm": enabled,
                "throughput_kBps": result.throughput_kbytes_per_s,
                "connectivity_pct": result.connectivity * 100,
            }
        )
    return rows


def slicing_architecture(seed: int = 3, duration: float = 600.0) -> List[Dict]:
    """Channel-based (Spider) vs AP-based (FatVAP-style) slicing."""
    rows = []
    world = build(scenario("vehicular-amherst", seed=seed))
    spider = world.make_spider(
        SpiderConfig.single_channel_multi_ap(channel=1, **REDUCED)
    )
    result = world.run(spider, duration)
    rows.append(
        {
            "architecture": "channel-based (Spider)",
            "throughput_kBps": result.throughput_kbytes_per_s,
            "connectivity_pct": result.connectivity * 100,
        }
    )
    world = build(scenario("vehicular-amherst", seed=seed))
    fatvap = world.make_fatvap(
        FatVapConfig(channels=(1,), link_timeout=0.1, dhcp_retry_timeout=0.2,
                     dhcp_restart_immediately=True, teardown_on_dhcp_failure=False)
    )
    result = world.run(fatvap, duration)
    rows.append(
        {
            "architecture": "AP-based (FatVAP-style)",
            "throughput_kBps": result.throughput_kbytes_per_s,
            "connectivity_pct": result.connectivity * 100,
        }
    )
    return rows


def run(seed: int = 3, duration: float = 600.0) -> Dict:
    return {
        "experiment": "ablations",
        "selection_policy": selection_policy(seed, duration),
        "lease_cache": lease_cache(seed, duration),
        "psm": psm(seed, duration),
        "slicing": slicing_architecture(seed, duration),
    }


def print_report(result: Dict) -> None:
    print("Ablations")
    print(" AP selection policy:")
    for row in result["selection_policy"]:
        print(f"   {row['policy']:8s} thr={row['throughput_kBps']:7.1f} KB/s"
              f" conn={row['connectivity_pct']:5.1f}%")
    print(" lease cache:")
    for row in result["lease_cache"]:
        print(f"   enabled={row['lease_cache']!s:5s} thr={row['throughput_kBps']:7.1f}"
              f" conn={row['connectivity_pct']:5.1f}%")
    print(" fake PSM:")
    for row in result["psm"]:
        print(f"   enabled={row['psm']!s:5s} thr={row['throughput_kBps']:7.1f}"
              f" conn={row['connectivity_pct']:5.1f}%")
    print(" slicing architecture:")
    for row in result["slicing"]:
        print(f"   {row['architecture']:25s} thr={row['throughput_kBps']:7.1f}"
              f" conn={row['connectivity_pct']:5.1f}%")
