"""Compatibility layer over the scenario subsystem.

World construction lives in :mod:`repro.scenario` (spec → build →
run); this module keeps the historical experiment-facing names alive:

- :class:`RunResult` — re-exported from ``repro.scenario.results``;
- :class:`VehicularScenario` / :class:`LabScenario` — thin
  :class:`~repro.scenario.build.World` subclasses with the original
  constructors, for tests and callers that wire worlds imperatively.

New code should declare a :class:`~repro.scenario.ScenarioSpec`
(usually via ``repro.scenario.scenario(name, ...)``) and call
``build``; see DESIGN.md §"Scenario subsystem".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.phy.propagation import PropagationModel
from repro.scenario.build import World
from repro.scenario.results import RunResult, result_from_driver
from repro.world.deployment import DeploymentConfig
from repro.world.geometry import Point

__all__ = [
    "LabScenario",
    "RunResult",
    "ScenarioConfig",
    "VehicularScenario",
    "result_from_driver",
]


@dataclass
class ScenarioConfig:
    """Knobs of a vehicular run (imperative spelling of the spec)."""

    seed: int = 1
    speed: float = 10.0  # m/s (~22 mph, the paper's dividing speed)
    route_width: float = 900.0
    route_height: float = 350.0
    deployment: DeploymentConfig = field(default_factory=DeploymentConfig)
    #: Urban propagation: buildings shadow the fringe, so the usable
    #: core is ~half the nominal range — this is what produces the
    #: paper's short encounters (median 8 s at town speeds).
    propagation: PropagationModel = field(
        default_factory=lambda: PropagationModel(range_m=100.0, base_loss=0.10, edge_start=0.50)
    )
    wired_latency: float = 0.075  # one-way; yields ~200 ms effective RTTs


class VehicularScenario(World):
    """A car on a downtown loop lined with generated APs."""

    def __init__(self, config: Optional[ScenarioConfig] = None):
        config = config or ScenarioConfig()
        super().__init__(
            config.seed, config.propagation, config.wired_latency, name="vehicular"
        )
        self.config = config
        self.populate_loop(
            config.route_width,
            config.route_height,
            config.speed,
            config.deployment,
            config.wired_latency,
        )


class LabScenario(World):
    """Static client + hand-placed APs (indoor micro-benchmarks)."""

    def __init__(
        self,
        seed: int = 1,
        propagation: Optional[PropagationModel] = None,
        wired_latency: float = 0.075,
    ):
        # A short-range, clean indoor channel: no fringe, low loss.
        propagation = propagation or PropagationModel(
            range_m=50.0, base_loss=0.02, edge_start=0.95
        )
        super().__init__(seed, propagation, wired_latency, name="lab")
        self.client_position = Point(0.0, 0.0)
