"""Shared scenario machinery for the evaluation experiments.

Two worlds cover every experiment in the paper:

- :class:`VehicularScenario` — the outdoor testbed substitute: a car
  repeatedly driving a downtown loop lined with generated APs
  (Amherst/Boston channel mixes, per-AP backhaul and DHCP profiles).
- :class:`LabScenario` — the indoor/static micro-benchmark substitute:
  a stationary client and a small set of APs with shaped backhauls.

Both hand back fully wired worlds: every AP gets a DHCP server, a
backhaul shaper, and a router; a ``router_lookup`` lets drivers build
TCP flows through whichever AP they join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import SpiderConfig
from repro.core.fatvap import FatVapConfig, FatVapDriver
from repro.core.spider import SpiderDriver
from repro.drivers.multicard import MultiCardDriver
from repro.drivers.stock import StockConfig, StockDriver
from repro.mac.ap import AccessPoint, ApConfig
from repro.net.backhaul import ApRouter, WiredBackhaul
from repro.net.dhcp import DhcpServer, DhcpServerConfig
from repro.phy.propagation import PropagationModel
from repro.phy.radio import Medium
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.world.deployment import Deployment, DeploymentConfig, generate_deployment
from repro.world.geometry import Point
from repro.world.mobility import (
    LoopRouteMobility,
    MobilityModel,
    StaticMobility,
    rectangular_loop,
)


@dataclass
class ScenarioConfig:
    """Knobs of a vehicular run."""

    seed: int = 1
    speed: float = 10.0  # m/s (~22 mph, the paper's dividing speed)
    route_width: float = 900.0
    route_height: float = 350.0
    deployment: DeploymentConfig = field(default_factory=DeploymentConfig)
    #: Urban propagation: buildings shadow the fringe, so the usable
    #: core is ~half the nominal range — this is what produces the
    #: paper's short encounters (median 8 s at town speeds).
    propagation: PropagationModel = field(
        default_factory=lambda: PropagationModel(range_m=100.0, base_loss=0.10, edge_start=0.50)
    )
    wired_latency: float = 0.075  # one-way; yields ~200 ms effective RTTs


@dataclass
class RunResult:
    """Everything the evaluation metrics need from one run."""

    duration: float
    throughput_kbytes_per_s: float
    connectivity: float
    connection_durations: List[float]
    disruption_durations: List[float]
    instantaneous_kbytes: List[float]
    join_attempts: int
    join_successes: int
    dhcp_failure_rate: float
    association_times: List[float]
    join_times: List[float]

    def summary(self) -> Dict[str, float]:
        return {
            "throughput_KBps": round(self.throughput_kbytes_per_s, 1),
            "connectivity_pct": round(self.connectivity * 100.0, 1),
            "join_attempts": self.join_attempts,
            "join_successes": self.join_successes,
            "dhcp_failure_pct": round(self.dhcp_failure_rate * 100.0, 1),
        }


class _World:
    """Common plumbing: sim, medium, APs, routers."""

    def __init__(self, seed: int, propagation: PropagationModel):
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.medium = Medium(self.sim, propagation, self.streams)
        self.aps: Dict[str, AccessPoint] = {}
        self.routers: Dict[str, ApRouter] = {}

    def add_ap(
        self,
        name: str,
        channel: int,
        position: Point,
        backhaul_bps: float,
        beta_min: float,
        beta_max: float,
        wired_latency: float,
        ap_config: Optional[ApConfig] = None,
    ) -> AccessPoint:
        rng = self.streams.get(f"ap:{name}")
        ap = AccessPoint(
            self.sim,
            self.medium,
            name,
            channel,
            position,
            config=ap_config or ApConfig(),
            rng=rng,
        )
        dhcp = DhcpServer(
            self.sim,
            name,
            config=DhcpServerConfig(beta_min=beta_min, beta_max=beta_max),
            rng=rng,
        )
        backhaul = WiredBackhaul(self.sim, backhaul_bps, latency_s=wired_latency)
        self.routers[name] = ApRouter(self.sim, ap, backhaul, dhcp)
        self.aps[name] = ap
        ap.start()
        return ap

    def router_lookup(self) -> Callable[[str], Optional[ApRouter]]:
        return lambda name: self.routers.get(name)

    @staticmethod
    def _result_from_driver(driver, duration: float) -> RunResult:
        recorder = driver.recorder
        join_log = getattr(driver, "join_log", None)
        return RunResult(
            duration=duration,
            throughput_kbytes_per_s=recorder.average_throughput_kbytes_per_s(),
            connectivity=recorder.connectivity_fraction(),
            connection_durations=recorder.connection_durations(),
            disruption_durations=recorder.disruption_durations(),
            instantaneous_kbytes=recorder.instantaneous_bandwidths_kbytes(),
            join_attempts=join_log.attempts() if join_log else 0,
            join_successes=join_log.successes() if join_log else 0,
            dhcp_failure_rate=join_log.dhcp_failure_rate() if join_log else 0.0,
            association_times=join_log.association_times() if join_log else [],
            join_times=join_log.join_times() if join_log else [],
        )


class VehicularScenario(_World):
    """A car on a downtown loop lined with generated APs."""

    def __init__(self, config: Optional[ScenarioConfig] = None):
        config = config or ScenarioConfig()
        super().__init__(config.seed, config.propagation)
        self.config = config
        route = rectangular_loop(config.route_width, config.route_height)
        self.mobility: MobilityModel = LoopRouteMobility(route, config.speed)
        self.deployment: Deployment = generate_deployment(
            route, config.deployment, self.streams.get("deployment")
        )
        for site in self.deployment.open_sites():
            self.add_ap(
                site.name,
                site.channel,
                site.position,
                site.backhaul_bps,
                site.beta_min,
                site.beta_max,
                config.wired_latency,
            )

    # -- driver factories -------------------------------------------------

    def make_spider(self, config: SpiderConfig, address: str = "spider") -> SpiderDriver:
        return SpiderDriver(
            self.sim,
            self.medium,
            self.mobility,
            address=address,
            config=config,
            router_lookup=self.router_lookup(),
            rng=self.streams.get("spider"),
        )

    def make_stock(
        self, config: Optional[StockConfig] = None, address: str = "stock"
    ) -> StockDriver:
        return StockDriver(
            self.sim,
            self.medium,
            self.mobility,
            address,
            config=config or StockConfig(),
            router_lookup=self.router_lookup(),
        )

    def make_fatvap(
        self, config: Optional[FatVapConfig] = None, address: str = "fatvap"
    ) -> FatVapDriver:
        return FatVapDriver(
            self.sim,
            self.medium,
            self.mobility,
            address,
            config=config or FatVapConfig(),
            router_lookup=self.router_lookup(),
            rng=self.streams.get("fatvap"),
        )

    # -- execution ----------------------------------------------------------

    def run(self, driver, duration: float) -> RunResult:
        driver.start()
        self.sim.run(until=self.sim.now + duration)
        driver.stop()
        return self._result_from_driver(driver, duration)


class LabScenario(_World):
    """Static client + hand-placed APs (indoor micro-benchmarks)."""

    def __init__(
        self,
        seed: int = 1,
        propagation: Optional[PropagationModel] = None,
        wired_latency: float = 0.075,
    ):
        # A short-range, clean indoor channel: no fringe, low loss.
        propagation = propagation or PropagationModel(
            range_m=50.0, base_loss=0.02, edge_start=0.95
        )
        super().__init__(seed, propagation)
        self.wired_latency = wired_latency
        self.client_position = Point(0.0, 0.0)

    def add_lab_ap(
        self,
        name: str,
        channel: int,
        backhaul_bps: float,
        beta_min: float = 0.2,
        beta_max: float = 1.0,
        distance_m: float = 10.0,
        index: int = 0,
    ) -> AccessPoint:
        position = Point(distance_m, float(index))
        return self.add_ap(
            name, channel, position, backhaul_bps, beta_min, beta_max, self.wired_latency
        )

    def static_mobility(self) -> StaticMobility:
        return StaticMobility(self.client_position)

    def make_spider(self, config: SpiderConfig, address: str = "spider") -> SpiderDriver:
        return SpiderDriver(
            self.sim,
            self.medium,
            self.static_mobility(),
            address=address,
            config=config,
            router_lookup=self.router_lookup(),
            rng=self.streams.get("spider"),
        )

    def make_stock(
        self, config: Optional[StockConfig] = None, address: str = "stock"
    ) -> StockDriver:
        return StockDriver(
            self.sim,
            self.medium,
            self.static_mobility(),
            address,
            config=config or StockConfig(),
            router_lookup=self.router_lookup(),
        )

    def make_multicard(self, cards: int = 2, address: str = "multicard") -> MultiCardDriver:
        return MultiCardDriver(
            self.sim,
            self.medium,
            self.static_mobility(),
            address,
            cards=cards,
            router_lookup=self.router_lookup(),
        )

    def make_fatvap(
        self, config: Optional[FatVapConfig] = None, address: str = "fatvap"
    ) -> FatVapDriver:
        return FatVapDriver(
            self.sim,
            self.medium,
            self.static_mobility(),
            address,
            config=config or FatVapConfig(),
            router_lookup=self.router_lookup(),
            rng=self.streams.get("fatvap"),
        )

    def run(self, driver, duration: float) -> RunResult:
        driver.start()
        self.sim.run(until=self.sim.now + duration)
        driver.stop()
        return self._result_from_driver(driver, duration)
