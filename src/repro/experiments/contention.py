"""Multi-client contention (extension, Sec. 4.8).

"Exploring potential problems raised by interference as more users
adopt concurrent Wi-Fi schemes require[s] future work."

This experiment puts N concurrent Spider clients in the same lab world
(two APs on one channel) and sweeps N. The shared medium and the AP
backhauls are the contended resources: aggregate throughput should
saturate at the bottleneck while per-client throughput decays roughly
as 1/N — quantifying how well concurrent-Wi-Fi gains survive adoption.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.config import SpiderConfig
from repro.scenario import build, scenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def run_population(
    clients: int,
    duration: float = 45.0,
    backhaul_bps: float = 4e6,
    aps: int = 2,
    seed: int = 17,
) -> Dict:
    """One population size: N Spiders sharing the same channel-1 APs."""
    lab = build(scenario("lab", seed=seed))
    for index in range(aps):
        lab.add_lab_ap(f"ap{index}", 1, backhaul_bps, index=2 * index)
    drivers = []
    for index in range(clients):
        driver = lab.make_spider(
            SpiderConfig.single_channel_multi_ap(1, **REDUCED),
            address=f"client{index}",
        )
        driver.start()
        drivers.append(driver)
    lab.sim.run(until=duration)
    throughputs = [d.recorder.average_throughput_kbytes_per_s() for d in drivers]
    joined = [len(d.connected_interfaces()) for d in drivers]
    for driver in drivers:
        driver.stop()
    aggregate = sum(throughputs)
    return {
        "clients": clients,
        "aggregate_kBps": aggregate,
        "per_client_kBps": aggregate / clients if clients else 0.0,
        "min_client_kBps": min(throughputs) if throughputs else 0.0,
        "joined_interfaces": joined,
    }


def run(
    populations: Sequence[int] = (1, 2, 4, 8),
    duration: float = 45.0,
    backhaul_bps: float = 4e6,
    aps: int = 2,
) -> Dict:
    rows = [
        run_population(n, duration=duration, backhaul_bps=backhaul_bps, aps=aps)
        for n in populations
    ]
    return {
        "experiment": "contention",
        "bottleneck_kBps": aps * backhaul_bps / 8.0 / 1000.0,
        "rows": rows,
    }


def print_report(result: Dict) -> None:
    print("Extension — multi-client contention (shared channel & APs)")
    print(f"  backhaul bottleneck: {result['bottleneck_kBps']:.0f} KB/s aggregate")
    print("  clients  aggregate(KB/s)  per-client(KB/s)  min-client(KB/s)")
    for row in result["rows"]:
        print(
            f"  {row['clients']:7d}  {row['aggregate_kBps']:15.1f}"
            f"  {row['per_client_kBps']:16.1f}  {row['min_client_kBps']:16.1f}"
        )
