"""Fig. 10 — CDFs of connection duration, disruption, instantaneous bw.

The same four Spider configurations as Table 2, reported as three CDFs:

- (a) connection durations: longest by staying on one channel with
  many APs; shortest for multi-channel multi-AP (joins on orthogonal
  channels chop connections up);
- (b) disruptions: shortest for multi-channel multi-AP (largest AP
  pool), longest for single-channel (dead zones on that channel);
- (c) instantaneous bandwidth: single-channel multi-AP dominates
  (60th pct ≈ 300 KB/s, 90th ≈ 1000 KB/s in the paper).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.tab2_throughput_connectivity import run_config
from repro.metrics.stats import empirical_cdf, median, percentile

CONFIGS = ("ch1-multi-ap", "ch1-single-ap", "3ch-multi-ap", "3ch-single-ap")


def run(
    seed: int = 3,
    duration: float = 900.0,
    configs: Sequence[str] = CONFIGS,
) -> Dict:
    series = []
    for name in configs:
        result = run_config(name, seed=seed, duration=duration)
        connections = result.connection_durations
        disruptions = result.disruption_durations
        bandwidths = result.instantaneous_kbytes
        series.append(
            {
                "config": name,
                "connection_durations": connections,
                "disruption_durations": disruptions,
                "instantaneous_kBps": bandwidths,
                "connection_cdf": empirical_cdf(connections),
                "disruption_cdf": empirical_cdf(disruptions),
                "bandwidth_cdf": empirical_cdf(bandwidths),
                "median_connection": median(connections),
                "median_disruption": median(disruptions),
                "bw_p60": percentile(bandwidths, 60),
                "bw_p90": percentile(bandwidths, 90),
            }
        )
    return {"experiment": "fig10", "series": series}


def print_report(result: Dict) -> None:
    from repro.metrics.plots import cdf_plot

    print("Fig. 10 — connection/disruption/instantaneous-bandwidth CDFs")
    print("  config          med-conn(s)  med-disr(s)  bw p60(KB/s)  bw p90(KB/s)")
    for series in result["series"]:
        print(
            f"  {series['config']:15s} {series['median_connection']:10.1f}"
            f"  {series['median_disruption']:10.1f}"
            f"  {series['bw_p60']:12.0f}  {series['bw_p90']:12.0f}"
        )
    print("\n  (c) instantaneous bandwidth CDF:")
    print(
        cdf_plot(
            [(s["config"], s["instantaneous_kBps"]) for s in result["series"]],
            x_label="KB/s",
            width=56,
            height=12,
        )
    )
