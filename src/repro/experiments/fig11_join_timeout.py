"""Fig. 11 — CDF of time-to-join vs DHCP timeout.

The counterpart of Table 3: although reduced timers *fail* more often,
the successful joins complete faster — median 2–3 s on a dedicated
channel, roughly doubling when switching among three channels.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.fig5_association import collect_join_samples
from repro.metrics.stats import empirical_cdf, median

#: (label, fraction on ch1, dhcp retransmit timer)
CASES = (
    ("200ms, channel 1", 1.0, 0.2),
    ("400ms, channel 1", 1.0, 0.4),
    ("600ms, channel 1", 1.0, 0.6),
    ("default, channel 1", 1.0, 1.0),
    ("default, 3 channels", 1.0 / 3.0, 1.0),
    ("200ms, 3 channels", 1.0 / 3.0, 0.2),
)


def run(
    seeds: Sequence[int] = (1, 2, 3),
    duration: float = 240.0,
    cases: Sequence = CASES,
) -> Dict:
    series = []
    for label, fraction, dhcp_timeout in cases:
        samples = collect_join_samples(
            fraction,
            seeds,
            duration,
            link_timeout=0.1,
            dhcp_retry_timeout=dhcp_timeout,
            period=0.6,
            primary_channel=1,
        )
        times = samples["join_times"]
        xs, ys = empirical_cdf(times)
        series.append(
            {
                "label": label,
                "fraction": fraction,
                "dhcp_timeout": dhcp_timeout,
                "join_times": times,
                "cdf_x": xs,
                "cdf_y": ys,
                "median": median(times),
            }
        )
    return {"experiment": "fig11", "series": series}


def print_report(result: Dict) -> None:
    print("Fig. 11 — time to join (association + DHCP) vs dhcp timeout")
    print("  case                    n    median(s)")
    for series in result["series"]:
        print(
            f"  {series['label']:22s} {len(series['join_times']):4d}"
            f"  {series['median']:8.2f}"
        )
