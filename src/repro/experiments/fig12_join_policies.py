"""Fig. 12 — join delay CDFs for different scheduling policies.

Compares single- vs multi-interface drivers, 1/2/3-channel schedules,
and default vs reduced timers. The paper's conclusion: switching
between channels during association is the primary source of join
overhead — the single-channel reduced-timeout case is fastest, and
equal 3-channel schedules are slowest.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import SpiderConfig
from repro.exec.shards import Shard
from repro.metrics.stats import empirical_cdf, median
from repro.scenario import build, scenario


def _case_config(
    channels: Sequence[int],
    interfaces: int,
    link_timeout: float,
    dhcp_timeout: float,
) -> SpiderConfig:
    fraction = 1.0 / len(channels)
    return SpiderConfig(
        schedule={ch: fraction for ch in channels},
        period=0.6 if len(channels) > 1 else 0.6,
        multi_ap=interfaces > 1,
        max_interfaces=interfaces,
        link_timeout=link_timeout,
        dhcp_retry_timeout=dhcp_timeout,
        lease_cache_enabled=False,
    )


#: (label, channels, interfaces, link timeout, dhcp timeout)
CASES = (
    ("1 iface, ch1, default TO", (1,), 1, 1.0, 1.0),
    ("7 ifaces, ch1, default TO", (1,), 7, 1.0, 1.0),
    ("7 ifaces, ch1, dhcp=200ms ll=100ms", (1,), 7, 0.1, 0.2),
    ("7 ifaces, ch1+ch6, default TO", (1, 6), 7, 1.0, 1.0),
    ("7 ifaces, 3 chans, default TO", (1, 6, 11), 7, 1.0, 1.0),
    ("7 ifaces, 3 chans, dhcp=200ms ll=100ms", (1, 6, 11), 7, 0.1, 0.2),
)


# -- shard protocol (see repro.exec.shards) -----------------------------


def shards(
    seeds: Sequence[int] = (1, 2, 3),
    duration: float = 240.0,
    cases: Sequence = CASES,
) -> List[Shard]:
    return [
        Shard(
            key=f"case={label}/seed={seed}",
            params={
                "channels": tuple(channels),
                "interfaces": interfaces,
                "link_timeout": link_timeout,
                "dhcp_timeout": dhcp_timeout,
                "seed": seed,
                "duration": duration,
            },
        )
        for label, channels, interfaces, link_timeout, dhcp_timeout in cases
        for seed in seeds
    ]


def run_shard(
    channels: Sequence[int],
    interfaces: int,
    link_timeout: float,
    dhcp_timeout: float,
    seed: int,
    duration: float,
) -> List[float]:
    world = build(scenario("vehicular-amherst", seed=seed))
    driver = world.make_spider(
        _case_config(channels, interfaces, link_timeout, dhcp_timeout)
    )
    world.run(driver, duration)
    return driver.join_log.join_times()


def merge(
    results: Sequence[List[float]],
    seeds: Sequence[int] = (1, 2, 3),
    duration: float = 240.0,
    cases: Sequence = CASES,
) -> Dict:
    series = []
    for index, (label, channels, _ifaces, _link_timeout, _dhcp_timeout) in enumerate(cases):
        times: List[float] = []
        for per_seed in results[index * len(seeds) : (index + 1) * len(seeds)]:
            times.extend(per_seed)
        xs, ys = empirical_cdf(times)
        series.append(
            {
                "label": label,
                "channels": list(channels),
                "join_times": times,
                "cdf_x": xs,
                "cdf_y": ys,
                "median": median(times),
            }
        )
    return {"experiment": "fig12", "series": series}


def run(
    seeds: Sequence[int] = (1, 2, 3),
    duration: float = 240.0,
    cases: Sequence = CASES,
) -> Dict:
    results = [run_shard(**shard.params) for shard in shards(seeds, duration, cases)]
    return merge(results, seeds=seeds, duration=duration, cases=cases)


def print_report(result: Dict) -> None:
    print("Fig. 12 — join delay by scheduling policy")
    print("  policy                                     n   median(s)")
    for series in result["series"]:
        print(
            f"  {series['label']:40s} {len(series['join_times']):4d}"
            f"  {series['median']:8.2f}"
        )
