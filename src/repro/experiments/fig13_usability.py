"""Fig. 13 — connection lengths: mesh users vs Spider.

Compares the CDF of real users' TCP connection durations (synthetic
mesh trace) with the CDF of connection lengths Spider sustains in its
single-channel and multi-channel multi-AP modes. The paper's reading:
Spider's connections are long enough to cover essentially all the TCP
flows users actually create.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.tab2_throughput_connectivity import run_config
from repro.metrics.stats import cdf_at, empirical_cdf, median, percentile
from repro.usability.mesh_trace import MeshTraceConfig, generate_mesh_trace

CONFIGS = ("ch1-multi-ap", "3ch-multi-ap")


def run(
    seed: int = 3,
    duration: float = 900.0,
    configs: Sequence[str] = CONFIGS,
    trace_config: MeshTraceConfig = MeshTraceConfig(),
) -> Dict:
    trace = generate_mesh_trace(trace_config)
    user_durations = trace.durations
    series = [
        {
            "label": "users connection duration",
            "durations": user_durations,
            "cdf": empirical_cdf(user_durations),
            "median": median(user_durations),
        }
    ]
    coverage = {}
    for name in configs:
        result = run_config(name, seed=seed, duration=duration)
        connections = result.connection_durations
        series.append(
            {
                "label": f"multiple APs ({name})",
                "durations": connections,
                "cdf": empirical_cdf(connections),
                "median": median(connections),
            }
        )
        # Fraction of user flows short enough to fit inside the 90th
        # percentile Spider connection — "can Spider carry user flows?"
        p90_connection = percentile(connections, 90)
        coverage[name] = cdf_at(user_durations, p90_connection)
    return {
        "experiment": "fig13",
        "series": series,
        "coverage": coverage,
        "trace_summary": trace.summary(),
    }


def print_report(result: Dict) -> None:
    from repro.metrics.plots import cdf_plot

    print("Fig. 13 — connection lengths: users vs Spider")
    for series in result["series"]:
        print(f"  {series['label']:35s} n={len(series['durations']):6d}"
              f"  median={series['median']:6.1f}s")
    for name, frac in result["coverage"].items():
        print(f"  user flows covered by {name} p90 connection: {frac:.0%}")
    print(
        cdf_plot(
            [(s["label"], s["durations"]) for s in result["series"]],
            x_label="connection duration (s)",
            x_max=100.0,
            width=56,
            height=12,
        )
    )
