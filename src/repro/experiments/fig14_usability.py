"""Fig. 14 — disruption lengths: mesh users vs Spider.

Compares users' inter-connection times (how long they naturally go
between TCP connections) with the disruptions Spider experiences. The
paper's reading: the multi-channel multi-AP mode's disruptions are
comparable to the gaps users already tolerate.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.tab2_throughput_connectivity import run_config
from repro.metrics.stats import empirical_cdf, median
from repro.usability.mesh_trace import MeshTraceConfig, generate_mesh_trace

CONFIGS = ("ch1-multi-ap", "3ch-multi-ap")


def run(
    seed: int = 3,
    duration: float = 900.0,
    configs: Sequence[str] = CONFIGS,
    trace_config: MeshTraceConfig = MeshTraceConfig(),
) -> Dict:
    trace = generate_mesh_trace(trace_config)
    series = [
        {
            "label": "user inter-connection",
            "values": trace.gaps,
            "cdf": empirical_cdf(trace.gaps),
            "median": median(trace.gaps),
        }
    ]
    for name in configs:
        result = run_config(name, seed=seed, duration=duration)
        disruptions = result.disruption_durations
        series.append(
            {
                "label": f"multiple APs ({name})",
                "values": disruptions,
                "cdf": empirical_cdf(disruptions),
                "median": median(disruptions),
            }
        )
    return {"experiment": "fig14", "series": series}


def print_report(result: Dict) -> None:
    from repro.metrics.plots import cdf_plot

    print("Fig. 14 — disruption lengths: users vs Spider")
    for series in result["series"]:
        print(f"  {series['label']:35s} n={len(series['values']):6d}"
              f"  median={series['median']:6.1f}s")
    print(
        cdf_plot(
            [(s["label"], s["values"]) for s in result["series"]],
            x_label="disruption length (s)",
            x_max=300.0,
            width=56,
            height=12,
        )
    )
