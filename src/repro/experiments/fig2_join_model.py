"""Fig. 2 — join-success probability vs fraction of time on channel.

Model (Eq. 7) against the Monte-Carlo simulation, for βmax = 5 s and
10 s, with the paper's parameters: D = 500 ms, t = 4 s, βmin = 500 ms,
w = 7 ms, c = 100 ms, h = 10%; 100 runs × 100 trials per point.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.model.join_model import JoinModelParams, join_success_probability
from repro.model.join_simulation import simulate_join_probability

DEFAULT_FRACTIONS = [round(0.05 * i, 2) for i in range(1, 21)]


def run(
    fractions: Optional[Sequence[float]] = None,
    beta_maxes: Sequence[float] = (5.0, 10.0),
    in_range_time: float = 4.0,
    runs: int = 100,
    trials_per_run: int = 100,
    seed: int = 0,
) -> Dict:
    """Compute the model and simulation series for each βmax."""
    fractions = list(fractions or DEFAULT_FRACTIONS)
    series = []
    for beta_max in beta_maxes:
        params = JoinModelParams(beta_max=beta_max)
        model = [
            join_success_probability(params, fraction, in_range_time)
            for fraction in fractions
        ]
        simulated = [
            simulate_join_probability(
                params, fraction, in_range_time, runs=runs,
                trials_per_run=trials_per_run, seed=seed,
            )
            for fraction in fractions
        ]
        series.append(
            {
                "beta_max": beta_max,
                "model": model,
                "sim_mean": [s.mean for s in simulated],
                "sim_std": [s.std for s in simulated],
            }
        )
    return {"experiment": "fig2", "fractions": fractions, "series": series}


def max_model_sim_gap(result: Dict) -> float:
    """Largest |model − sim| across all points (corroboration check)."""
    gap = 0.0
    for series in result["series"]:
        for model, sim in zip(series["model"], series["sim_mean"]):
            gap = max(gap, abs(model - sim))
    return gap


def print_report(result: Dict) -> None:
    print("Fig. 2 — P(join success) vs fraction of time on channel")
    header = "  f_i   " + "   ".join(
        f"model(b={s['beta_max']:g})  sim(b={s['beta_max']:g})" for s in result["series"]
    )
    print(header)
    for i, fraction in enumerate(result["fractions"]):
        row = f"  {fraction:4.2f} "
        for series in result["series"]:
            row += (
                f"      {series['model'][i]:5.3f}      "
                f"{series['sim_mean'][i]:5.3f}±{series['sim_std'][i]:.3f}"
            )
        print(row)
    print(f"  max |model - sim| = {max_model_sim_gap(result):.3f}")
