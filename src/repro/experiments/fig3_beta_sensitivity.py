"""Fig. 3 — join-success probability vs maximum AP response time βmax.

Model curves for f_i ∈ {0.10, 0.25, 0.40, 0.50}, with the w = 0 ms
variants for f_i = 0.10 and 0.50 showing that removing the switching
delay barely helps — channel schedule and DHCP response times dominate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.model.join_model import JoinModelParams, join_success_probability

DEFAULT_BETA_MAXES = [0.5 + 0.5 * i for i in range(20)]  # 0.5 .. 10 s

CURVES = (
    {"fraction": 0.10, "switch_delay": 0.0, "label": "fi=.10 (w=0 ms)"},
    {"fraction": 0.10, "switch_delay": 0.007, "label": "fi=.10"},
    {"fraction": 0.25, "switch_delay": 0.007, "label": "fi=.25"},
    {"fraction": 0.40, "switch_delay": 0.007, "label": "fi=.40"},
    {"fraction": 0.50, "switch_delay": 0.007, "label": "fi=.50"},
    {"fraction": 0.50, "switch_delay": 0.0, "label": "fi=.50 (w=0 ms)"},
)


def run(
    beta_maxes: Optional[Sequence[float]] = None,
    in_range_time: float = 4.0,
) -> Dict:
    beta_maxes = list(beta_maxes or DEFAULT_BETA_MAXES)
    series = []
    for curve in CURVES:
        values: List[float] = []
        for beta_max in beta_maxes:
            params = JoinModelParams(
                beta_max=max(beta_max, 0.5), switch_delay=curve["switch_delay"]
            )
            values.append(
                join_success_probability(params, curve["fraction"], in_range_time)
            )
        series.append({"label": curve["label"], "fraction": curve["fraction"],
                       "switch_delay": curve["switch_delay"], "values": values})
    return {"experiment": "fig3", "beta_maxes": beta_maxes, "series": series}


def switch_delay_effect(result: Dict) -> float:
    """Max gap between a w=0 curve and its w=7 ms twin (should be small)."""
    by_label = {s["label"]: s for s in result["series"]}
    gap = 0.0
    for fraction in (0.10, 0.50):
        with_w = by_label[f"fi=.{int(fraction * 100):02d}"]["values"]
        without_w = by_label[f"fi=.{int(fraction * 100):02d} (w=0 ms)"]["values"]
        gap = max(gap, max(abs(a - b) for a, b in zip(with_w, without_w)))
    return gap


def print_report(result: Dict) -> None:
    print("Fig. 3 — P(join success) vs beta_max")
    labels = [s["label"] for s in result["series"]]
    print("  bmax  " + "  ".join(f"{label:>16s}" for label in labels))
    for i, beta_max in enumerate(result["beta_maxes"]):
        row = f"  {beta_max:4.1f}  "
        row += "  ".join(f"{s['values'][i]:16.3f}" for s in result["series"])
        print(row)
    print(f"  max effect of removing switch delay: {switch_delay_effect(result):.3f}")
