"""Fig. 4 — optimal per-channel bandwidth vs node speed (Eqs. 8–10).

Three offered-bandwidth splits between a joined channel 1 and a
channel 2 that requires joining: (25%, 75%), (50%, 50%), (75%, 25%) of
Bw = 11 Mbps, with βmax = 10 s and a 100 m Wi-Fi range. Each scenario
exhibits a *dividing speed* above which the optimal schedule abandons
channel 2 entirely.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.model.join_model import JoinModelParams
from repro.model.throughput_opt import (
    ChannelScenario,
    dividing_speed,
    sweep_speeds,
)

PAPER_SPEEDS = (2.5, 3.3, 5.0, 6.6, 10.0, 20.0)

SPLITS = (
    (0.25, 0.75),
    (0.50, 0.50),
    (0.75, 0.25),
)


def run(
    speeds: Optional[Sequence[float]] = None,
    grid_step: float = 0.02,
    beta_max: float = 10.0,
) -> Dict:
    speeds = list(speeds or PAPER_SPEEDS)
    params = JoinModelParams(beta_max=beta_max)
    scenarios = []
    for joined, available in SPLITS:
        one = ChannelScenario(joined_fraction=joined)
        two = ChannelScenario(available_fraction=available)
        schedules = sweep_speeds(one, two, speeds, params=params, grid_step=grid_step)
        divide = dividing_speed(one, two, speeds, params=params, grid_step=grid_step)
        scenarios.append(
            {
                "split": (joined, available),
                "ch1_bps": [s.per_channel_bps[0] for s in schedules],
                "ch2_bps": [s.per_channel_bps[1] for s in schedules],
                "fractions": [s.fractions for s in schedules],
                "dividing_speed": divide,
            }
        )
    return {"experiment": "fig4", "speeds": speeds, "scenarios": scenarios}


def print_report(result: Dict) -> None:
    from repro.metrics.plots import line_plot

    print("Fig. 4 — optimal per-channel bandwidth (kbps) vs speed")
    for scenario in result["scenarios"]:
        joined, available = scenario["split"]
        print(f"  scenario joined={joined:.0%} / available={available:.0%}:")
        for i, speed in enumerate(result["speeds"]):
            print(
                f"    v={speed:5.1f} m/s  ch1={scenario['ch1_bps'][i] / 1e3:7.0f}"
                f"  ch2={scenario['ch2_bps'][i] / 1e3:7.0f}"
            )
        print(f"    dividing speed: {scenario['dividing_speed']} m/s")
        print(
            line_plot(
                [
                    ("ch1 bw", result["speeds"], [b / 1e3 for b in scenario["ch1_bps"]]),
                    ("ch2 bw", result["speeds"], [b / 1e3 for b in scenario["ch2_bps"]]),
                ],
                x_label="speed (m/s)",
                y_label="kbps",
                width=48,
                height=10,
            )
        )
