"""Fig. 5 — CDF of link-layer association time vs channel schedule.

Vehicular runs with D = 400 ms: the driver spends a fraction
f6 = x ∈ {25%, 50%, 75%, 100%} on channel 6 and (1−x)/2 on channels 1
and 11; link-layer timeouts reduced to 100 ms. The CDF is over
association times with channel-6 APs. The paper finds association is
fairly robust to switching: f=1 median ≈ 200 ms, and degradation is
modest down to f = 0.25.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import SpiderConfig
from repro.experiments.common import ScenarioConfig, VehicularScenario
from repro.metrics.stats import cdf_at, empirical_cdf, median


def schedule_for(fraction: float, channel: int = 6) -> Dict[int, float]:
    """The paper's Fig. 5/6 schedule: x on the primary channel, the
    remainder split equally over the other two orthogonal channels."""
    if fraction >= 1.0:
        return {channel: 1.0}
    others = [c for c in (1, 6, 11) if c != channel][:2]
    rest = (1.0 - fraction) / 2.0
    return {others[0]: rest, channel: fraction, others[1]: rest}


def collect_join_samples(
    fraction: float,
    seeds: Sequence[int],
    duration: float,
    link_timeout: float = 0.1,
    dhcp_retry_timeout: float = 0.1,
    dhcp_attempt_window: float = 3.0,
    period: float = 0.4,
    primary_channel: int = 6,
    lease_cache: bool = False,
) -> Dict[str, List[float]]:
    """Run the schedule over several seeds; gather per-AP join timings.

    The lease cache is disabled so every encounter exercises the full
    join (the paper measures raw association/DHCP costs).
    """
    association_times: List[float] = []
    join_times: List[float] = []
    attempts = 0
    dhcp_failures = 0
    successes = 0
    for seed in seeds:
        scenario = VehicularScenario(ScenarioConfig(seed=seed))
        config = SpiderConfig(
            schedule=schedule_for(fraction, primary_channel),
            period=period,
            link_timeout=link_timeout,
            dhcp_retry_timeout=dhcp_retry_timeout,
            dhcp_attempt_window=dhcp_attempt_window,
            lease_cache_enabled=lease_cache,
        )
        driver = scenario.make_spider(config)
        scenario.run(driver, duration)
        for record in driver.join_log.records:
            if record.channel != primary_channel:
                continue
            attempts += 1
            dhcp_failures += record.dhcp_failures
            if record.association_time is not None:
                association_times.append(record.association_time)
            if record.join_time is not None:
                join_times.append(record.join_time)
                successes += 1
    return {
        "association_times": association_times,
        "join_times": join_times,
        "attempts": attempts,
        "dhcp_failures": dhcp_failures,
        "successes": successes,
    }


def run(
    fractions: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
    seeds: Optional[Sequence[int]] = None,
    duration: float = 240.0,
) -> Dict:
    seeds = list(seeds or (1, 2, 3))
    series = []
    for fraction in fractions:
        samples = collect_join_samples(fraction, seeds, duration)
        times = samples["association_times"]
        xs, ys = empirical_cdf(times)
        series.append(
            {
                "fraction": fraction,
                "association_times": times,
                "cdf_x": xs,
                "cdf_y": ys,
                "median": median(times),
                "within_400ms": cdf_at(times, 0.4),
            }
        )
    return {"experiment": "fig5", "series": series}


def print_report(result: Dict) -> None:
    print("Fig. 5 — association time vs fraction of time on channel 6")
    print("  f6      n   median(ms)  done<=400ms")
    for series in result["series"]:
        print(
            f"  {series['fraction']:4.0%} {len(series['association_times']):5d}"
            f"  {series['median'] * 1000:9.0f}  {series['within_400ms']:10.0%}"
        )
