"""Fig. 5 — CDF of link-layer association time vs channel schedule.

Vehicular runs with D = 400 ms: the driver spends a fraction
f6 = x ∈ {25%, 50%, 75%, 100%} on channel 6 and (1−x)/2 on channels 1
and 11; link-layer timeouts reduced to 100 ms. The CDF is over
association times with channel-6 APs. The paper finds association is
fairly robust to switching: f=1 median ≈ 200 ms, and degradation is
modest down to f = 0.25.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import SpiderConfig
from repro.exec.shards import Shard
from repro.metrics.stats import cdf_at, empirical_cdf, median
from repro.scenario import build, scenario

DEFAULT_SEEDS = (1, 2, 3)


def schedule_for(fraction: float, channel: int = 6) -> Dict[int, float]:
    """The paper's Fig. 5/6 schedule: x on the primary channel, the
    remainder split equally over the other two orthogonal channels."""
    if fraction >= 1.0:
        return {channel: 1.0}
    others = [c for c in (1, 6, 11) if c != channel][:2]
    rest = (1.0 - fraction) / 2.0
    return {others[0]: rest, channel: fraction, others[1]: rest}


def collect_join_samples(
    fraction: float,
    seeds: Sequence[int],
    duration: float,
    link_timeout: float = 0.1,
    dhcp_retry_timeout: float = 0.1,
    dhcp_attempt_window: float = 3.0,
    period: float = 0.4,
    primary_channel: int = 6,
    lease_cache: bool = False,
) -> Dict[str, List[float]]:
    """Run the schedule over several seeds; gather per-AP join timings.

    The lease cache is disabled so every encounter exercises the full
    join (the paper measures raw association/DHCP costs).
    """
    association_times: List[float] = []
    join_times: List[float] = []
    attempts = 0
    dhcp_failures = 0
    successes = 0
    for seed in seeds:
        world = build(scenario("vehicular-amherst", seed=seed))
        config = SpiderConfig(
            schedule=schedule_for(fraction, primary_channel),
            period=period,
            link_timeout=link_timeout,
            dhcp_retry_timeout=dhcp_retry_timeout,
            dhcp_attempt_window=dhcp_attempt_window,
            lease_cache_enabled=lease_cache,
        )
        driver = world.make_spider(config)
        world.run(driver, duration)
        for record in driver.join_log.records:
            if record.channel != primary_channel:
                continue
            attempts += 1
            dhcp_failures += record.dhcp_failures
            if record.association_time is not None:
                association_times.append(record.association_time)
            if record.join_time is not None:
                join_times.append(record.join_time)
                successes += 1
    return {
        "association_times": association_times,
        "join_times": join_times,
        "attempts": attempts,
        "dhcp_failures": dhcp_failures,
        "successes": successes,
    }


def combine_samples(per_seed: Sequence[Dict]) -> Dict:
    """Fold per-seed sample dicts (in seed order) into one.

    Equivalent to ``collect_join_samples`` over the whole seed list:
    lists concatenate in order, counters sum — the pure half of the
    shard protocol shared by Fig. 5 and Fig. 6.
    """
    combined: Dict = {}
    for samples in per_seed:
        for key, value in samples.items():
            if isinstance(value, list):
                combined.setdefault(key, []).extend(value)
            else:
                combined[key] = combined.get(key, 0) + value
    return combined


# -- shard protocol (see repro.exec.shards) -----------------------------


def shards(
    fractions: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
    seeds: Optional[Sequence[int]] = None,
    duration: float = 240.0,
) -> List[Shard]:
    seeds = list(seeds or DEFAULT_SEEDS)
    return [
        Shard(
            key=f"fraction={fraction}/seed={seed}",
            params={"fraction": fraction, "seed": seed, "duration": duration},
        )
        for fraction in fractions
        for seed in seeds
    ]


def run_shard(fraction: float, seed: int, duration: float) -> Dict:
    return collect_join_samples(fraction, [seed], duration)


def merge(
    results: Sequence[Dict],
    fractions: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
    seeds: Optional[Sequence[int]] = None,
    duration: float = 240.0,
) -> Dict:
    seeds = list(seeds or DEFAULT_SEEDS)
    series = []
    for index, fraction in enumerate(fractions):
        samples = combine_samples(results[index * len(seeds) : (index + 1) * len(seeds)])
        times = samples["association_times"]
        xs, ys = empirical_cdf(times)
        series.append(
            {
                "fraction": fraction,
                "association_times": times,
                "cdf_x": xs,
                "cdf_y": ys,
                "median": median(times),
                "within_400ms": cdf_at(times, 0.4),
            }
        )
    return {"experiment": "fig5", "series": series}


def run(
    fractions: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
    seeds: Optional[Sequence[int]] = None,
    duration: float = 240.0,
) -> Dict:
    results = [run_shard(**shard.params) for shard in shards(fractions, seeds, duration)]
    return merge(results, fractions=fractions, seeds=seeds, duration=duration)


def print_report(result: Dict) -> None:
    print("Fig. 5 — association time vs fraction of time on channel 6")
    print("  f6      n   median(ms)  done<=400ms")
    for series in result["series"]:
        print(
            f"  {series['fraction']:4.0%} {len(series['association_times']):5d}"
            f"  {series['median'] * 1000:9.0f}  {series['within_400ms']:10.0%}"
        )
