"""Fig. 6 — CDF of full join (association + DHCP) vs schedule & timers.

Same vehicular setup as Fig. 5, comparing the reduced 100 ms DHCP
retransmit timer against the stock 1 s default. The paper's findings:
dedicating 100% of time to the channel with the default timer gives a
median join of ~2.5 s; reducing the timer cuts it to ~1.3 s; at
f = 25% the accumulated off-channel time degrades DHCP badly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.exec.shards import Shard
from repro.experiments.fig5_association import (
    DEFAULT_SEEDS,
    collect_join_samples,
    combine_samples,
)
from repro.metrics.stats import empirical_cdf, median

#: (fraction on channel 6, dhcp retransmit timer, label)
CASES = (
    (0.25, 0.1, "25% - 100ms"),
    (0.50, 0.1, "50% - 100ms"),
    (1.00, 0.1, "100% - 100ms"),
    (1.00, 1.0, "100% - default"),
)


# -- shard protocol (see repro.exec.shards) -----------------------------


def shards(
    cases: Sequence = CASES,
    seeds: Optional[Sequence[int]] = None,
    duration: float = 240.0,
) -> List[Shard]:
    seeds = list(seeds or DEFAULT_SEEDS)
    return [
        Shard(
            key=f"fraction={fraction}/dhcp={dhcp_timeout}/seed={seed}",
            params={
                "fraction": fraction,
                "dhcp_timeout": dhcp_timeout,
                "seed": seed,
                "duration": duration,
            },
        )
        for fraction, dhcp_timeout, _label in cases
        for seed in seeds
    ]


def run_shard(fraction: float, dhcp_timeout: float, seed: int, duration: float) -> Dict:
    return collect_join_samples(
        fraction, [seed], duration, dhcp_retry_timeout=dhcp_timeout
    )


def merge(
    results: Sequence[Dict],
    cases: Sequence = CASES,
    seeds: Optional[Sequence[int]] = None,
    duration: float = 240.0,
) -> Dict:
    seeds = list(seeds or DEFAULT_SEEDS)
    series = []
    for index, (fraction, dhcp_timeout, label) in enumerate(cases):
        samples = combine_samples(results[index * len(seeds) : (index + 1) * len(seeds)])
        times = samples["join_times"]
        xs, ys = empirical_cdf(times)
        total = samples["successes"] + samples["dhcp_failures"]
        series.append(
            {
                "label": label,
                "fraction": fraction,
                "dhcp_timeout": dhcp_timeout,
                "join_times": times,
                "cdf_x": xs,
                "cdf_y": ys,
                "median": median(times),
                "failure_rate": samples["dhcp_failures"] / total if total else 0.0,
            }
        )
    return {"experiment": "fig6", "series": series}


def run(
    cases: Sequence = CASES,
    seeds: Optional[Sequence[int]] = None,
    duration: float = 240.0,
) -> Dict:
    results = [run_shard(**shard.params) for shard in shards(cases, seeds, duration)]
    return merge(results, cases=cases, seeds=seeds, duration=duration)


def print_report(result: Dict) -> None:
    print("Fig. 6 — time to acquire a lease (association + DHCP)")
    print("  schedule          n   median(s)  dhcp-failure-rate")
    for series in result["series"]:
        print(
            f"  {series['label']:15s} {len(series['join_times']):4d}"
            f"  {series['median']:8.2f}  {series['failure_rate']:16.0%}"
        )
