"""Fig. 7 — TCP throughput vs % of time on the primary channel.

Indoor (static) experiment: one AP on the primary channel, a fixed
scheduling period of D = 400 ms, and the fraction of time on the
primary channel swept; the remainder splits over the two other
orthogonal channels. Since the whole period is under two typical RTTs,
throughput grows monotonically (roughly proportionally) with the
fraction.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.config import SpiderConfig
from repro.scenario import build, scenario

DEFAULT_FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def run_one(
    fraction: float,
    duration: float = 60.0,
    backhaul_bps: float = 4e6,
    period: float = 0.4,
    seed: int = 7,
) -> float:
    """Average TCP throughput (kb/s) at one primary-channel fraction."""
    lab = build(scenario("lab", seed=seed))
    lab.add_lab_ap("primary", 1, backhaul_bps)
    if fraction >= 1.0:
        schedule = {1: 1.0}
    else:
        rest = (1.0 - fraction) / 2.0
        schedule = {1: fraction, 6: rest, 11: rest}
    spider = lab.make_spider(
        SpiderConfig(schedule=schedule, period=period,
                     link_timeout=0.1, dhcp_retry_timeout=0.2)
    )
    result = lab.run(spider, duration)
    return result.throughput_kbytes_per_s * 8.0


def run(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    duration: float = 60.0,
    backhaul_bps: float = 4e6,
) -> Dict:
    throughputs = [run_one(f, duration, backhaul_bps) for f in fractions]
    return {
        "experiment": "fig7",
        "fractions": list(fractions),
        "throughput_kbps": throughputs,
    }


def is_roughly_monotonic(result: Dict, slack: float = 0.35) -> bool:
    """Monotone up to ``slack`` relative noise between adjacent points."""
    values = result["throughput_kbps"]
    return all(
        later >= earlier * (1.0 - slack)
        for earlier, later in zip(values, values[1:])
    )


def print_report(result: Dict) -> None:
    print("Fig. 7 — TCP throughput vs % time on primary channel (D=400 ms)")
    for fraction, kbps in zip(result["fractions"], result["throughput_kbps"]):
        print(f"  {fraction:4.0%}: {kbps:8.0f} kb/s")
    print(f"  roughly monotonic: {is_roughly_monotonic(result)}")
