"""Fig. 8 — TCP throughput vs absolute per-channel dwell time.

Indoor experiment with the schedule split equally across channels 1, 6,
and 11 (f = 1/3 each) while the *absolute* dwell per channel sweeps
from 25 ms to 400 ms: for dwell x the card is away 2x. Unlike Fig. 7,
throughput is non-monotonic — long absences cross the TCP RTO and
overflow AP power-save buffers, triggering timeouts and slow-start.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.config import SpiderConfig
from repro.scenario import build, scenario

DEFAULT_DWELLS = (0.025, 0.05, 0.1, 0.2, 0.3, 0.4)


def run_one(
    dwell: float,
    duration: float = 60.0,
    backhaul_bps: float = 4e6,
    seed: int = 7,
) -> float:
    lab = build(scenario("lab", seed=seed))
    lab.add_lab_ap("primary", 1, backhaul_bps)
    spider = lab.make_spider(
        SpiderConfig(
            schedule={1: 1 / 3, 6: 1 / 3, 11: 1 / 3},
            period=dwell * 3,
            link_timeout=0.1,
            dhcp_retry_timeout=0.2,
        )
    )
    result = lab.run(spider, duration)
    return result.throughput_kbytes_per_s * 8.0


def run(
    dwells: Sequence[float] = DEFAULT_DWELLS,
    duration: float = 60.0,
    backhaul_bps: float = 4e6,
) -> Dict:
    throughputs = [run_one(d, duration, backhaul_bps) for d in dwells]
    return {
        "experiment": "fig8",
        "dwells": list(dwells),
        "throughput_kbps": throughputs,
    }


def is_non_monotonic(result: Dict, slack: float = 0.1) -> bool:
    """True if the series rises and falls (the paper's sensitivity)."""
    values = result["throughput_kbps"]
    rises = any(b > a * (1 + slack) for a, b in zip(values, values[1:]))
    falls = any(b < a * (1 - slack) for a, b in zip(values, values[1:]))
    return rises and falls


def print_report(result: Dict) -> None:
    print("Fig. 8 — TCP throughput vs per-channel dwell (equal thirds)")
    for dwell, kbps in zip(result["dwells"], result["throughput_kbps"]):
        print(f"  {dwell * 1000:4.0f} ms: {kbps:8.0f} kb/s")
    print(f"  non-monotonic: {is_non_monotonic(result)}")
