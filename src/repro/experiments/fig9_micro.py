"""Fig. 9 — throughput micro-benchmark vs backhaul bandwidth.

Static lab: large HTTP-style downloads through two APs whose backhauls
are shaped to the same rate, swept from 0.5 to 5 Mbps. Configurations
(the triplet is milliseconds on channels 1/6/11 per the paper):

- one card, stock driver (one AP);
- two physical cards, stock drivers (one AP each);
- Spider (100, 0, 0): both APs on channel 1, no switching;
- Spider (50, 0, 50): one AP on ch 1, one on ch 11, 50 ms each;
- Spider (100, 0, 100): same split, 100 ms each.

Expected shape: Spider on a single channel ≈ two physical cards ≈ 2×
one card; the multi-channel schedules trade some of that for the
ability to discover APs elsewhere, with the faster schedule better at
high backhaul rates.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.config import SpiderConfig
from repro.scenario import World, build, scenario

DEFAULT_BACKHAULS = (0.5e6, 1e6, 2e6, 3e6, 4e6, 5e6)

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def _throughput(lab: World, driver, duration: float) -> float:
    result = lab.run(driver, duration)
    return result.throughput_kbytes_per_s


def run_config(name: str, backhaul_bps: float, duration: float, seed: int) -> float:
    """Average throughput (KB/s) for one configuration at one rate."""
    lab = build(scenario("lab", seed=seed))
    if name == "one-card-stock":
        lab.add_lab_ap("apA", 1, backhaul_bps, index=0)
        return _throughput(lab, lab.make_stock(), duration)
    if name == "two-cards-stock":
        lab.add_lab_ap("apA", 1, backhaul_bps, index=0)
        lab.add_lab_ap("apB", 11, backhaul_bps, index=2)
        return _throughput(lab, lab.make_multicard(cards=2), duration)
    if name == "spider-100-0-0":
        lab.add_lab_ap("apA", 1, backhaul_bps, index=0)
        lab.add_lab_ap("apB", 1, backhaul_bps, index=2)
        config = SpiderConfig(schedule={1: 1.0}, **REDUCED)
        return _throughput(lab, lab.make_spider(config), duration)
    if name == "spider-50-0-50":
        lab.add_lab_ap("apA", 1, backhaul_bps, index=0)
        lab.add_lab_ap("apB", 11, backhaul_bps, index=2)
        config = SpiderConfig(schedule={1: 0.5, 11: 0.5}, period=0.1, **REDUCED)
        return _throughput(lab, lab.make_spider(config), duration)
    if name == "spider-100-0-100":
        lab.add_lab_ap("apA", 1, backhaul_bps, index=0)
        lab.add_lab_ap("apB", 11, backhaul_bps, index=2)
        config = SpiderConfig(schedule={1: 0.5, 11: 0.5}, period=0.2, **REDUCED)
        return _throughput(lab, lab.make_spider(config), duration)
    raise ValueError(f"unknown configuration: {name}")


CONFIG_NAMES = (
    "one-card-stock",
    "two-cards-stock",
    "spider-100-0-0",
    "spider-50-0-50",
    "spider-100-0-100",
)


def run(
    backhauls: Sequence[float] = DEFAULT_BACKHAULS,
    duration: float = 45.0,
    seed: int = 9,
) -> Dict:
    series = []
    for name in CONFIG_NAMES:
        values = [run_config(name, rate, duration, seed) for rate in backhauls]
        series.append({"config": name, "throughput_kBps": values})
    return {
        "experiment": "fig9",
        "backhauls_bps": list(backhauls),
        "series": series,
    }


def print_report(result: Dict) -> None:
    print("Fig. 9 — throughput (KB/s) vs backhaul bandwidth per AP")
    header = "  backhaul(Mbps) " + "".join(f"{s['config']:>18s}" for s in result["series"])
    print(header)
    for i, rate in enumerate(result["backhauls_bps"]):
        row = f"  {rate / 1e6:13.1f} "
        row += "".join(f"{s['throughput_kBps'][i]:18.0f}" for s in result["series"])
        print(row)
