"""Model-vs-system cross-validation (extension of Sec. 2.2).

The paper observes that its analytical model is *optimistic*: it
assumes a one-shot join handshake and no TCP interactions, so
"multi-channel switching performs better in the model than can be
expected in a real scenario". This experiment quantifies that gap on
our full stack: for each channel fraction, compare

- Eq. 7's predicted probability of joining within ``t`` seconds, and
- the measured fraction of full-stack joins (scan + 4-way association
  + 4-message DHCP) that complete within ``t`` on the simulator,

under matched parameters (the client's DHCP retry spacing as ``c``; the
AP's β profile; the same loss floor).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.config import SpiderConfig
from repro.exec.shards import Shard
from repro.model.join_model import JoinModelParams, join_success_probability
from repro.scenario import build, scenario


def measure_system_join_probability(
    fraction: float,
    within: float,
    trials: int,
    beta_min: float,
    beta_max: float,
    period: float = 0.5,
    request_spacing: float = 0.1,
) -> float:
    """Fraction of full-stack joins completing within ``within`` seconds.

    Each trial is a fresh static world: one AP on channel 1, the client
    scheduling ``fraction`` of its period there. A trial succeeds if the
    interface reaches the bound state within the window.
    """
    successes = 0
    for trial in range(trials):
        lab = build(scenario("lab", seed=1000 + trial))
        lab.add_lab_ap("ap", 1, 2e6, beta_min=beta_min, beta_max=beta_max)
        if fraction >= 1.0:
            schedule = {1: 1.0}
        else:
            rest = (1.0 - fraction) / 2.0
            schedule = {1: fraction, 6: rest, 11: rest}
        spider = lab.make_spider(
            SpiderConfig(
                schedule=schedule,
                period=period,
                link_timeout=request_spacing,
                dhcp_retry_timeout=request_spacing,
                lease_cache_enabled=False,
            )
        )
        spider.start()
        lab.sim.run(until=within)
        if any(iface.connected for iface in spider.interfaces.values()):
            successes += 1
        spider.stop()
    return successes / trials


# -- shard protocol (see repro.exec.shards) -----------------------------


def shards(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    within: float = 4.0,
    trials: int = 40,
    beta_min: float = 0.5,
    beta_max: float = 4.0,
) -> List[Shard]:
    return [
        Shard(
            key=f"fraction={fraction}",
            params={
                "fraction": fraction,
                "within": within,
                "trials": trials,
                "beta_min": beta_min,
                "beta_max": beta_max,
            },
        )
        for fraction in fractions
    ]


def run_shard(
    fraction: float, within: float, trials: int, beta_min: float, beta_max: float
) -> Dict:
    params = JoinModelParams(
        period=0.5,
        request_spacing=0.1,
        beta_min=beta_min,
        beta_max=beta_max,
        loss_rate=0.02,  # the lab propagation floor
    )
    model = join_success_probability(params, fraction, within)
    system = measure_system_join_probability(
        fraction, within, trials, beta_min, beta_max
    )
    return {
        "fraction": fraction,
        "model": model,
        "system": system,
        "gap": model - system,
    }


def merge(
    results: Sequence[Dict],
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    within: float = 4.0,
    trials: int = 40,
    beta_min: float = 0.5,
    beta_max: float = 4.0,
) -> Dict:
    return {"experiment": "model_vs_system", "within": within, "rows": list(results)}


def run(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    within: float = 4.0,
    trials: int = 40,
    beta_min: float = 0.5,
    beta_max: float = 4.0,
) -> Dict:
    results = [
        run_shard(**shard.params)
        for shard in shards(fractions, within, trials, beta_min, beta_max)
    ]
    return merge(
        results,
        fractions=fractions,
        within=within,
        trials=trials,
        beta_min=beta_min,
        beta_max=beta_max,
    )


def print_report(result: Dict) -> None:
    print(f"Model vs full stack: P(join within {result['within']:.0f}s)")
    print("  fraction   model   system   gap(model - system)")
    for row in result["rows"]:
        print(
            f"  {row['fraction']:7.2f}  {row['model']:6.3f}  {row['system']:6.3f}"
            f"  {row['gap']:+6.3f}"
        )
