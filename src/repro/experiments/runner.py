"""Experiment registry and CLI.

``spider-repro list`` shows every reproducible artifact;
``spider-repro run fig2 tab2 …`` regenerates them (``all`` for the
full evaluation). ``--fast`` shrinks durations/samples for smoke runs.

Parallel execution & caching (see ``repro.exec`` and
``docs: Parallel execution``):

- ``--jobs N`` fans an experiment's independent shards (per-seed runs,
  per-configuration rows) out over N worker processes; output is
  byte-identical to the sequential run;
- ``--cache-dir PATH`` (default ``.spider-cache`` once any exec flag is
  used) caches shard results keyed on experiment + parameters + seed +
  git SHA, so warm reruns skip simulation; ``--no-cache`` disables it;
- ``spider-repro campaign [ids|all]`` regenerates the whole evaluation
  through one shared worker pool and cache, with per-shard progress and
  an aggregated manifest (``--manifest PATH``).

Observability flags (see ``docs: Observability``):

- ``--trace [PATH]`` records every structured trace event of the run
  and exports them as JSONL (default path ``<name>-trace.jsonl``);
- ``--metrics`` prints the metrics-registry snapshot after each run;
- ``--profile`` wraps the run in cProfile and prints the top of the
  cumulative-time table;
- ``--spans [PATH]`` records the hierarchical wall-time span tree
  (scenario build, sim run, per-shard execution) as JSON (default
  ``<name>-spans.json``) and prints it as an indented tree;
- ``--flight [PATH]`` arms the crash flight recorder: if the run
  raises, a post-mortem JSON (last trace events per layer, open span
  stack, error) is written (default ``<name>-crash.json``).

Any of these also prints a one-line run manifest (parameters, git SHA,
wall-clock, simulated-event throughput). Trace/metrics/flight need the
simulators in-process, so they force shards inline (``--jobs`` is
ignored with a note); ``--spans`` composes with worker pools — the
per-shard spans are recorded on the orchestrator side.

Artifact post-processing lives in delegated sub-CLIs:
``spider-repro trace export RUN-trace.jsonl --chrome`` converts traces
and span trees to Perfetto-compatible JSON, and ``spider-repro perf``
renders the benchmark trend/regression report over ``BENCH_*.json``.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import os
import sys
import time
from typing import Dict, Optional

#: experiment id → (module path, fast-mode kwargs, description)
REGISTRY: Dict[str, Dict] = {
    "fig2": {
        "module": "repro.experiments.fig2_join_model",
        "fast": {"runs": 20, "trials_per_run": 50},
        "description": "join model vs simulation (P(join) vs fraction)",
    },
    "fig3": {
        "module": "repro.experiments.fig3_beta_sensitivity",
        "fast": {},
        "description": "P(join) vs beta_max for several fractions",
    },
    "fig4": {
        "module": "repro.experiments.fig4_dividing_speed",
        "fast": {"grid_step": 0.05},
        "description": "optimal per-channel bandwidth vs speed; dividing speed",
    },
    "fig5": {
        "module": "repro.experiments.fig5_association",
        "fast": {"seeds": (1,), "duration": 120.0},
        "description": "association-time CDF vs channel schedule",
    },
    "fig6": {
        "module": "repro.experiments.fig6_dhcp",
        "fast": {"seeds": (1,), "duration": 120.0},
        "description": "assoc+DHCP join-time CDF vs schedule and timers",
    },
    "fig7": {
        "module": "repro.experiments.fig7_tcp_fraction",
        "fast": {"duration": 30.0},
        "description": "TCP throughput vs % time on primary channel",
    },
    "fig8": {
        "module": "repro.experiments.fig8_tcp_dwell",
        "fast": {"duration": 30.0},
        "description": "TCP throughput vs absolute per-channel dwell",
    },
    "tab1": {
        "module": "repro.experiments.tab1_switch_latency",
        "fast": {"duration": 10.0},
        "description": "channel-switch latency vs #connected interfaces",
    },
    "fig9": {
        "module": "repro.experiments.fig9_micro",
        "fast": {"duration": 20.0, "backhauls": (1e6, 3e6, 5e6)},
        "description": "throughput micro-benchmark vs backhaul bandwidth",
    },
    "tab2": {
        "module": "repro.experiments.tab2_throughput_connectivity",
        "fast": {"duration": 240.0},
        "description": "avg throughput & connectivity per configuration",
    },
    "fig10": {
        "module": "repro.experiments.fig10_cdfs",
        "fast": {"duration": 240.0},
        "description": "connection/disruption/instantaneous-bw CDFs",
    },
    "tab3": {
        "module": "repro.experiments.tab3_dhcp_failures",
        "fast": {"seeds": (1,), "duration": 150.0},
        "description": "DHCP failure probabilities vs timeout configs",
    },
    "fig11": {
        "module": "repro.experiments.fig11_join_timeout",
        "fast": {"seeds": (1,), "duration": 120.0},
        "description": "join-time CDF vs DHCP timeout",
    },
    "fig12": {
        "module": "repro.experiments.fig12_join_policies",
        "fast": {"seeds": (1,), "duration": 120.0},
        "description": "join-delay CDF per scheduling policy",
    },
    "tab4": {
        "module": "repro.experiments.tab4_channels",
        "fast": {"duration": 240.0},
        "description": "throughput/connectivity vs number of channels",
    },
    "fig13": {
        "module": "repro.experiments.fig13_usability",
        "fast": {"duration": 240.0},
        "description": "connection lengths: mesh users vs Spider",
    },
    "fig14": {
        "module": "repro.experiments.fig14_usability",
        "fast": {"duration": 240.0},
        "description": "disruption lengths: mesh users vs Spider",
    },
    "ablations": {
        "module": "repro.experiments.ablations",
        "fast": {"duration": 180.0},
        "description": "design-choice ablations (selection, cache, PSM, slicing)",
    },
    "model-gap": {
        "module": "repro.experiments.model_vs_system",
        "fast": {"trials": 15},
        "description": "extension: quantify how optimistic Eq. 7 is vs the full stack",
    },
    "contention": {
        "module": "repro.experiments.contention",
        "fast": {"populations": (1, 2, 4), "duration": 25.0},
        "description": "extension: N concurrent Spider clients sharing APs",
    },
}


def _validate_overrides(name: str, module, overrides: Dict) -> None:
    """Reject overrides the experiment's ``run()`` cannot accept.

    Without this, a typo'd parameter surfaces as a bare TypeError from
    deep inside the experiment module; here it fails fast and names the
    experiment and the valid parameters.
    """
    if not overrides:
        return
    parameters = inspect.signature(module.run).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return  # run(**kwargs) accepts anything; nothing to check
    allowed = {
        pname
        for pname, p in parameters.items()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    unknown = sorted(set(overrides) - allowed)
    if unknown:
        raise TypeError(
            f"experiment {name!r} does not accept override(s): {', '.join(unknown)}. "
            f"Valid parameters: {', '.join(sorted(allowed)) or '(none)'}"
        )


def run_experiment(name: str, fast: bool = False, **overrides):
    """Run one experiment by id; returns its result dict."""
    entry = REGISTRY.get(name)
    if entry is None:
        raise KeyError(f"unknown experiment: {name!r} (try 'list')")
    module = importlib.import_module(entry["module"])
    _validate_overrides(name, module, overrides)
    kwargs = dict(entry["fast"]) if fast else {}
    kwargs.update(overrides)
    return module.run(**kwargs)


def print_experiment(name: str, result) -> None:
    entry = REGISTRY[name]
    module = importlib.import_module(entry["module"])
    module.print_report(result)


#: Default on-disk location of the shard-result cache once any exec
#: flag (--jobs/--cache-dir/--no-cache) engages ``repro.exec``.
DEFAULT_CACHE_DIR = ".spider-cache"


def _exec_requested(args) -> bool:
    return (
        args.jobs is not None
        or args.cache_dir is not None
        or args.no_cache
        or args.backend is not None
    )


def _make_cache(args):
    if args.no_cache:
        return None
    from repro.exec import ResultCache

    return ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)


def _flag_path(value: Optional[str], default: str) -> str:
    """Resolve an optional-argument flag value (``auto`` → default)."""
    return value if value not in (None, "auto", "") else default


def _run_observed(name: str, args) -> None:
    """Run one experiment with the requested observability attached."""
    from repro.obs.flight import FlightRecorder, dump_postmortem
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.report import build_manifest, observe, profile_call
    from repro.obs.spans import SPAN_EXPERIMENT, SpanProfiler
    from repro.obs.trace import TraceBus, TraceRecorder, write_jsonl

    observed = (
        args.trace is not None
        or args.metrics
        or args.profile
        or args.spans is not None
        or args.flight is not None
    )
    #: These observers consume events in this process, so shards must
    #: stay inline; --spans alone composes with pools (per-shard spans
    #: are recorded orchestrator-side).
    inline_only = (
        args.trace is not None or args.metrics or args.profile or args.flight is not None
    )
    exec_mode = _exec_requested(args)
    execution = None
    profiler: Optional[SpanProfiler] = SpanProfiler() if args.spans is not None else None

    def compute():
        """The experiment run, through repro.exec when requested."""
        nonlocal execution
        if not exec_mode:
            if profiler is not None:
                with profiler.span(SPAN_EXPERIMENT, experiment=name, fast=args.fast):
                    return run_experiment(name, fast=args.fast)
            return run_experiment(name, fast=args.fast)
        from repro.exec import execute_experiment

        jobs = args.jobs or 1
        backend_spec = args.backend
        if inline_only and (jobs > 1 or backend_spec):
            # Trace buses, metrics registries, and flight recorders live
            # in this process; worker processes would simulate where
            # they can't be seen.
            print(
                "note: --trace/--metrics/--profile/--flight run shards in-process;"
                " ignoring --jobs/--backend"
            )
            jobs = 1
            backend_spec = None
        from repro.exec.backend import make_backend

        backend = make_backend(backend_spec, jobs=jobs)
        try:
            execution = execute_experiment(
                name, fast=args.fast, jobs=jobs, cache=_make_cache(args), backend=backend
            )
        finally:
            if backend is not None:
                backend.shutdown()
        return execution.result

    if not observed:
        result = compute()
        print_experiment(name, result)
        if execution is not None:
            print(execution.summary_line())
        return

    bus: Optional[TraceBus] = None
    recorder: Optional[TraceRecorder] = None
    if args.trace is not None:
        bus = TraceBus()
        recorder = TraceRecorder(bus)
    flight: Optional[FlightRecorder] = None
    if args.flight is not None:
        bus = bus or TraceBus()  # the recorder needs a bus even without --trace
        flight = FlightRecorder(bus)
    registry = MetricsRegistry()

    started = time.time()
    try:
        with observe(trace=bus, metrics=registry, spans=profiler, flight=flight):
            if args.profile:
                result, profile_text = profile_call(compute)
            else:
                result, profile_text = compute(), None
    except Exception as exc:
        if flight is not None:
            crash_path = _flag_path(args.flight, f"{name}-crash.json")
            dump_postmortem(
                crash_path,
                exc,
                recorder=flight,
                profiler=profiler,
                context={"experiment": name, "fast": args.fast},
            )
            print(f"flight recorder: post-mortem -> {crash_path}", file=sys.stderr)
        raise
    wall = time.time() - started

    print_experiment(name, result)
    if execution is not None:
        print(execution.summary_line())
    snapshot = registry.snapshot()
    if args.metrics:
        print()
        print(registry.format_snapshot())
    if profile_text is not None:
        print()
        print(profile_text.rstrip())
    if recorder is not None:
        path = _flag_path(args.trace, f"{name}-trace.jsonl")
        count = write_jsonl(recorder.events, path)
        print(f"trace: {count} events -> {path}")
    if profiler is not None:
        spans_path = _flag_path(args.spans, f"{name}-spans.json")
        profiler.write(spans_path)
        print(f"spans: {profiler.spans_recorded} -> {spans_path}")
        tree = profiler.format_tree()
        if tree:
            print(tree)

    entry = REGISTRY[name]
    manifest = build_manifest(
        experiment=name,
        parameters=dict(entry["fast"]) if args.fast else {},
        fast=args.fast,
        started_at=started,
        wall_seconds=wall,
        events_executed=int(snapshot.get("sim.events_executed", 0)),
        trace_events=bus.events_emitted if bus is not None else 0,
        jobs=execution.jobs if execution is not None else 1,
        shards_total=execution.shards_total if execution is not None else 0,
        shards_cached=execution.cache_hits if execution is not None else 0,
        telemetry=execution.telemetry() if execution is not None else None,
    )
    print(manifest.summary())
    if recorder is not None:
        manifest_path = (
            _flag_path(args.trace, f"{name}-trace.jsonl").rsplit(".", 1)[0] + "-manifest.json"
        )
        manifest.write(manifest_path)
        print(f"manifest -> {manifest_path}")


def _run_campaign(names, args) -> int:
    """``spider-repro campaign``: the whole evaluation, fanned out.

    Prints per-shard progress with campaign-wide ``[done/total]``
    counters and an ETA, and writes the aggregated manifest including
    per-experiment shard telemetry. ``--spans`` additionally records
    the campaign's wall-time span tree (one ``shard:<key>`` lane per
    executed shard); ``--flight`` arms a crash post-mortem dump.

    ``--backend`` places shards (local pool, SSH workers, queue dir);
    ``--journal`` records the campaign durably; ``--resume JOURNAL``
    re-runs a killed campaign against the same cache, so completed
    shards are skipped and the merged output is byte-identical to an
    uninterrupted run.
    """
    from repro.exec import campaign_manifest, run_campaign
    from repro.exec.backend import make_backend
    from repro.exec.campaign import CampaignAborted
    from repro.exec.journal import CampaignJournal, JournalError, load_journal
    from repro.obs.flight import FlightRecorder, dump_postmortem
    from repro.obs.report import observe, write_campaign_manifest
    from repro.obs.spans import SpanProfiler
    from repro.obs.trace import TraceBus

    resume_state = None
    journal_path = args.journal
    if args.resume:
        if args.no_cache:
            print("error: --resume replays the result cache; drop --no-cache", file=sys.stderr)
            return 2
        try:
            resume_state = load_journal(args.resume)
        except JournalError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        journal_path = args.resume  # keep appending to the same history
        # The journal's recorded arguments are the defaults; anything
        # given explicitly on this command line wins over the record.
        if not args.experiments and resume_state.names:
            names = [name for name in resume_state.names if name in REGISTRY]
        args.fast = args.fast or resume_state.fast
        if args.cache_dir is None and resume_state.cache_dir:
            args.cache_dir = resume_state.cache_dir
        if args.backend is None and resume_state.backend:
            args.backend = resume_state.backend
        print(resume_state.summary_line())

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    cache = _make_cache(args)
    backend = make_backend(args.backend, jobs=jobs)
    journal = None
    if journal_path:
        journal = CampaignJournal(journal_path)
        if resume_state is not None:
            journal.resume(resume_state.completed_shards, resume_state.planned_shards)
        else:
            from repro.exec.cache import default_code_version

            journal.begin(
                names,
                args.fast,
                args.backend,
                (args.cache_dir or DEFAULT_CACHE_DIR) if cache is not None else None,
                default_code_version(),
            )
    profiler = SpanProfiler() if args.spans is not None else None
    flight = FlightRecorder(TraceBus()) if args.flight is not None else None
    started = time.time()
    try:
        with observe(spans=profiler, flight=flight):
            campaign = run_campaign(
                names,
                fast=args.fast,
                jobs=jobs,
                cache=cache,
                progress=print,
                on_experiment=lambda execution: (
                    print_experiment(execution.name, execution.result),
                    print(),
                ),
                backend=backend,
                journal=journal,
                die_after=args.die_after,
            )
    except CampaignAborted as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        if journal is not None:
            print(
                f"resume with: spider-repro campaign --resume {journal.path}", file=sys.stderr
            )
        return 3
    except Exception as exc:
        if flight is not None:
            crash_path = _flag_path(args.flight, "campaign-crash.json")
            dump_postmortem(
                crash_path,
                exc,
                recorder=flight,
                profiler=profiler,
                context={"campaign": list(names), "fast": args.fast, "jobs": jobs},
            )
            print(f"flight recorder: post-mortem -> {crash_path}", file=sys.stderr)
        raise
    finally:
        if backend is not None:
            backend.shutdown()
        if journal is not None:
            journal.close()
    manifest = campaign_manifest(campaign, fast=args.fast, started_at=started, spans=profiler)
    manifest_path = args.manifest or "campaign-manifest.json"
    write_campaign_manifest(manifest, manifest_path)
    if profiler is not None:
        spans_path = _flag_path(args.spans, "campaign-spans.json")
        profiler.write(spans_path)
        print(f"spans: {profiler.spans_recorded} -> {spans_path}")
    print(campaign.summary_line())
    print(f"manifest -> {manifest_path}")
    return 0


def _run_digest(names, args) -> int:
    """``spider-repro digest``: result digests for identity checking.

    The digest is the SHA-256 of the canonical serialization of the
    experiment's result dict — the same canonical form the exec cache
    keys on — so "digest unchanged" means "byte-identical results".
    """
    import hashlib
    import json

    from repro.exec.cache import canonical_text

    golden = None
    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            golden = json.load(handle)
        if bool(golden.get("fast", False)) != args.fast:
            print(
                f"error: goldens in {args.check} were recorded with "
                f"fast={golden.get('fast')}; rerun with matching --fast",
                file=sys.stderr,
            )
            return 2
        if not names:
            names = [n for n in golden["digests"] if n in REGISTRY]

    digests: Dict[str, str] = {}
    drift = []
    for name in names:
        result = run_experiment(name, fast=args.fast)
        digest = hashlib.sha256(canonical_text(result).encode()).hexdigest()
        digests[name] = digest
        if golden is not None:
            want = golden["digests"].get(name)
            status = "ok" if digest == want else ("missing" if want is None else "DRIFT")
            if digest != want:
                drift.append(name)
            print(f"  {name:12s} {digest}  {status}")
        else:
            print(f"  {name:12s} {digest}")

    if args.update:
        with open(args.update, "w", encoding="utf-8") as handle:
            json.dump({"fast": args.fast, "digests": digests}, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"goldens -> {args.update}")
    if drift:
        print(f"digest drift in: {', '.join(drift)}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[list] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # simlint has its own flag set (--format/--baseline/--select/...);
        # delegate before the experiment parser can reject them.
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["scenario"]:
        # Same pattern: the scenario CLI owns its subcommands/flags.
        from repro.scenario.cli import main as scenario_main

        return scenario_main(argv[1:])
    if argv[:1] == ["trace"]:
        # Trace/span artifact post-processing (Perfetto export).
        from repro.obs.cli import trace_main

        return trace_main(argv[1:])
    if argv[:1] == ["perf"]:
        # Benchmark trend/regression report over BENCH_*.json files.
        from repro.obs.cli import perf_main

        return perf_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="spider-repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "command",
        choices=["list", "run", "campaign", "digest", "lint", "scenario", "trace", "perf"],
        help="what to do",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (or 'all')")
    parser.add_argument("--fast", action="store_true", help="shrunk smoke-run parameters")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for shard execution (campaign default: all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=f"shard-result cache location (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the shard-result cache"
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="SPEC",
        help=(
            "shard placement: local[:N] | ssh:host[*slots],...[?heartbeat=S] |"
            " queuedir:PATH[?workers=N] (default: local pool)"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="campaign: append an execution journal (enables --resume)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="campaign: resume from a journal, skipping cached shards",
    )
    parser.add_argument(
        "--die-after",
        type=int,
        default=None,
        metavar="N",
        help="campaign: abort after N shard outcomes (fault injection for --resume tests)",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="campaign: aggregated manifest path (default campaign-manifest.json)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="GOLDENS",
        help="digest: compare against a committed goldens JSON (exit 1 on drift)",
    )
    parser.add_argument(
        "--update",
        default=None,
        metavar="GOLDENS",
        help="digest: (re)write the goldens JSON from this run",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="record trace events and export JSONL (default <name>-trace.jsonl)",
    )
    parser.add_argument(
        "--metrics", action="store_true", help="print the metrics snapshot after each run"
    )
    parser.add_argument(
        "--profile", action="store_true", help="profile the run and print hotspots"
    )
    parser.add_argument(
        "--spans",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="record the wall-time span tree as JSON (default <name>-spans.json)",
    )
    parser.add_argument(
        "--flight",
        nargs="?",
        const="auto",
        default=None,
        metavar="PATH",
        help="arm the crash flight recorder (post-mortem default <name>-crash.json)",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.die_after is not None and args.die_after < 1:
        parser.error("--die-after must be >= 1")
    if args.backend is not None:
        from repro.exec.backend import parse_backend_spec

        try:
            kind, _, _ = parse_backend_spec(args.backend)
            if kind not in ("local", "ssh", "queuedir"):
                raise ValueError(f"unknown backend kind {kind!r} (known: local, ssh, queuedir)")
        except ValueError as exc:
            parser.error(str(exc))
    if args.command != "campaign" and (args.resume or args.journal or args.die_after):
        parser.error("--resume/--journal/--die-after apply to the campaign command")

    if args.command == "list":
        for name, entry in REGISTRY.items():
            print(f"  {name:10s} {entry['description']}")
        return 0

    names = list(args.experiments)
    if not names:
        if args.command == "campaign":
            names = ["all"]
        elif args.command == "digest" and args.check:
            pass  # digest derives its ids from the goldens file
        else:
            parser.error("run requires experiment ids (or 'all')")
    if names == ["all"]:
        names = list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    if args.command == "digest":
        return _run_digest(names, args)
    if args.command == "campaign":
        return _run_campaign(names, args)

    for name in names:
        _run_observed(name, args)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
