"""Table 1 — channel-switching latency vs number of connected interfaces.

Static micro-benchmark: Spider alternates between channels 1 and 11
while connected to 0–4 APs. A switch = PSM null to each associated AP
on the old channel, a hardware reset (~4.94 ms), then a PSM poll to
each associated AP on the new channel — so latency grows with the
number of connected interfaces (paper: 4.94 ms at 0, ~5.9 ms at 4).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import SpiderConfig
from repro.metrics.stats import mean, stdev
from repro.scenario import build, scenario


def run_one(interfaces: int, duration: float = 30.0, seed: int = 11) -> List[float]:
    """Switch latencies (s) observed with exactly ``interfaces`` APs."""
    lab = build(scenario("lab", seed=seed))
    for index in range(interfaces):
        channel = 1 if index % 2 == 0 else 11
        lab.add_lab_ap(f"ap{index}", channel, 2e6, index=index)
    spider = lab.make_spider(
        SpiderConfig(
            schedule={1: 0.5, 11: 0.5},
            period=0.2,
            link_timeout=0.1,
            dhcp_retry_timeout=0.2,
        )
    )
    spider.start()
    lab.sim.run(until=duration)
    latencies = [
        record.latency
        for record in spider.scheduler.switches
        if record.connected_interfaces == interfaces
    ]
    spider.stop()
    return latencies


def run(max_interfaces: int = 4, duration: float = 30.0) -> Dict:
    rows = []
    for count in range(max_interfaces + 1):
        latencies = run_one(count, duration)
        rows.append(
            {
                "interfaces": count,
                "samples": len(latencies),
                "mean_ms": mean(latencies) * 1000.0,
                "std_ms": stdev(latencies) * 1000.0,
            }
        )
    return {"experiment": "tab1", "rows": rows}


def print_report(result: Dict) -> None:
    print("Table 1 — channel switching latency (ms)")
    print("  interfaces   mean    std    n")
    for row in result["rows"]:
        print(
            f"  {row['interfaces']:10d}  {row['mean_ms']:5.2f}  {row['std_ms']:5.2f}"
            f"  {row['samples']:4d}"
        )
