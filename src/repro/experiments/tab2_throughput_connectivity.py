"""Table 2 — average throughput and connectivity per configuration.

The paper's headline system result, from vehicular runs in Amherst
(channels 1/6/11, 28/33/34% of APs) plus a Boston-mix validation run:

1. Channel 1, Multi-AP       — best throughput (121.5 KB/s, 35.5%)
2. Channel 1, Single-AP      — (28.0 KB/s, 22.3%)
3. 3 channels, Multi-AP      — best connectivity (28.8 KB/s, 44.6%)
4. 3 channels, Single-AP     — (77.9 KB/s, 40.2%)
5. Channel 6, Single-AP (Boston) — (90.7 KB/s, 36.4%)
6. stock MadWiFi             — (35.9 KB/s, 18.0%)

Multi-channel rows use a static 200 ms schedule on channels 1/6/11
(D = 600 ms). The shapes that must reproduce: config 1 wins throughput
(several × its single-AP counterpart), config 3 wins connectivity,
stock is worst on connectivity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import SpiderConfig
from repro.exec.shards import Shard
from repro.scenario import RunResult, ScenarioSpec, build, scenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def _spider_configs() -> Dict[str, SpiderConfig]:
    return {
        "ch1-multi-ap": SpiderConfig.single_channel_multi_ap(channel=1, **REDUCED),
        "ch1-single-ap": SpiderConfig.single_channel_single_ap(channel=1, **REDUCED),
        "3ch-multi-ap": SpiderConfig.multi_channel_multi_ap(period=0.6, **REDUCED),
        "3ch-single-ap": SpiderConfig.multi_channel_single_ap(period=0.6, **REDUCED),
    }


def run_config(
    name: str,
    seed: int = 3,
    duration: float = 900.0,
    spec: Optional[ScenarioSpec] = None,
) -> RunResult:
    """One vehicular run of a named Table 2 configuration.

    ``spec`` substitutes a custom world (any loop scenario); the
    Boston row ignores it, since the row *is* the Boston-mix world.
    """
    if name == "ch6-single-ap-boston":
        world = build(scenario("vehicular-boston", seed=seed))
        driver = world.make_spider(
            SpiderConfig.single_channel_single_ap(channel=6, **REDUCED)
        )
    else:
        world = build(spec or scenario("vehicular-amherst", seed=seed))
        if name == "stock-madwifi":
            driver = world.make_stock()
        else:
            configs = _spider_configs()
            if name not in configs:
                raise ValueError(f"unknown configuration: {name}")
            driver = world.make_spider(configs[name])
    return world.run(driver, duration)


CONFIG_NAMES = (
    "ch1-multi-ap",
    "ch1-single-ap",
    "3ch-multi-ap",
    "3ch-single-ap",
    "ch6-single-ap-boston",
    "stock-madwifi",
)

PAPER_VALUES = {
    "ch1-multi-ap": (121.5, 35.5),
    "ch1-single-ap": (28.0, 22.3),
    "3ch-multi-ap": (28.8, 44.6),
    "3ch-single-ap": (77.9, 40.2),
    "ch6-single-ap-boston": (90.7, 36.4),
    "stock-madwifi": (35.9, 18.0),
}


# -- shard protocol (see repro.exec.shards) -----------------------------


def shards(
    seed: int = 3,
    duration: float = 900.0,
    configs: Sequence[str] = CONFIG_NAMES,
) -> List[Shard]:
    return [
        Shard(key=f"config={name}", params={"name": name, "seed": seed, "duration": duration})
        for name in configs
    ]


def run_shard(name: str, seed: int, duration: float) -> Dict:
    result = run_config(name, seed=seed, duration=duration)
    paper_thr, paper_conn = PAPER_VALUES.get(name, (None, None))
    return {
        "config": name,
        "throughput_kBps": result.throughput_kbytes_per_s,
        "connectivity_pct": result.connectivity * 100.0,
        "paper_throughput_kBps": paper_thr,
        "paper_connectivity_pct": paper_conn,
        "result": result,
    }


def merge(
    results: Sequence[Dict],
    seed: int = 3,
    duration: float = 900.0,
    configs: Sequence[str] = CONFIG_NAMES,
) -> Dict:
    return {"experiment": "tab2", "rows": list(results)}


def run(
    seed: int = 3,
    duration: float = 900.0,
    configs: Sequence[str] = CONFIG_NAMES,
) -> Dict:
    results = [run_shard(**shard.params) for shard in shards(seed, duration, configs)]
    return merge(results, seed=seed, duration=duration, configs=configs)


def print_report(result: Dict) -> None:
    print("Table 2 — average throughput and connectivity")
    print("  config                 thr(KB/s)  conn(%)   [paper: thr, conn]")
    for row in result["rows"]:
        print(
            f"  {row['config']:22s} {row['throughput_kBps']:8.1f}"
            f"  {row['connectivity_pct']:6.1f}"
            f"   [{row['paper_throughput_kBps']}, {row['paper_connectivity_pct']}]"
        )
