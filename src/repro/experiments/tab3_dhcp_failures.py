"""Table 3 — DHCP failure probabilities for different timeout configs.

Vehicular runs with 7 virtual interfaces. The paper's rows (failure %):

- ch 1, link-layer 100 ms, dhcp 600 ms: 23.0 ± 6.4
- ch 1, link-layer 100 ms, dhcp 400 ms: 27.1 ± 5.4
- ch 1, link-layer 100 ms, dhcp 200 ms: 28.2 ± 4.0
- 3 chans static 1/3, ll 100 ms, dhcp 200 ms: 23.6 ± 10.7
- ch 1, default timers: 13.5 ± 6.3
- 3 chans static 1/3, default timers: 21.8 ± 6.9

The metric is message-level: the fraction of transmitted DHCP requests
that received no response within the retry timer ("failed dhcp
requests"). Cutting the timer from the stock 1 s to a few hundred ms
declares more in-flight responses late — the paper's "two-fold increase
in dhcp failure rates" — even though Fig. 11 shows the *successful*
joins completing sooner.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.config import SpiderConfig
from repro.exec.shards import Shard
from repro.metrics.stats import mean, stdev
from repro.scenario import build, scenario

#: (label, channels, link timeout, dhcp retry timer, paper %)
CASES: Tuple = (
    ("ch1, ll=100ms, dhcp=600ms", (1,), 0.1, 0.6, 23.0),
    ("ch1, ll=100ms, dhcp=400ms", (1,), 0.1, 0.4, 27.1),
    ("ch1, ll=100ms, dhcp=200ms", (1,), 0.1, 0.2, 28.2),
    ("3ch, ll=100ms, dhcp=200ms", (1, 6, 11), 0.1, 0.2, 23.6),
    ("ch1, default timers", (1,), 1.0, 1.0, 13.5),
    ("3ch, default timers", (1, 6, 11), 1.0, 1.0, 21.8),
)


def failure_rate_for(
    channels: Sequence[int],
    link_timeout: float,
    dhcp_retry: float,
    seed: int,
    duration: float,
) -> float:
    """Message-timeout rate (%) of one vehicular run."""
    world = build(scenario("vehicular-amherst", seed=seed))
    kwargs = dict(
        link_timeout=link_timeout,
        dhcp_retry_timeout=dhcp_retry,
        lease_cache_enabled=False,
    )
    if len(channels) == 1:
        config = SpiderConfig.single_channel_multi_ap(channel=channels[0], **kwargs)
    else:
        config = SpiderConfig.multi_channel_multi_ap(
            channels=tuple(channels), period=0.6, **kwargs
        )
    driver = world.make_spider(config)
    world.run(driver, duration)
    return driver.join_log.dhcp_message_timeout_rate() * 100.0


# -- shard protocol (see repro.exec.shards) -----------------------------


def shards(
    seeds: Sequence[int] = (1, 2, 3),
    duration: float = 300.0,
    cases: Sequence = CASES,
) -> List[Shard]:
    return [
        Shard(
            key=f"case={label}/seed={seed}",
            params={
                "channels": tuple(channels),
                "link_timeout": link_timeout,
                "dhcp_retry": dhcp_retry,
                "seed": seed,
                "duration": duration,
            },
        )
        for label, channels, link_timeout, dhcp_retry, _paper in cases
        for seed in seeds
    ]


def run_shard(
    channels: Sequence[int],
    link_timeout: float,
    dhcp_retry: float,
    seed: int,
    duration: float,
) -> float:
    return failure_rate_for(channels, link_timeout, dhcp_retry, seed, duration)


def merge(
    results: Sequence[float],
    seeds: Sequence[int] = (1, 2, 3),
    duration: float = 300.0,
    cases: Sequence = CASES,
) -> Dict:
    rows = []
    for index, (label, _channels, _link_timeout, _dhcp_retry, paper) in enumerate(cases):
        rates = list(results[index * len(seeds) : (index + 1) * len(seeds)])
        rows.append(
            {
                "label": label,
                "mean_pct": mean(rates),
                "std_pct": stdev(rates),
                "paper_pct": paper,
            }
        )
    return {"experiment": "tab3", "rows": rows}


def run(
    seeds: Sequence[int] = (1, 2, 3),
    duration: float = 300.0,
    cases: Sequence = CASES,
) -> Dict:
    results = [run_shard(**shard.params) for shard in shards(seeds, duration, cases)]
    return merge(results, seeds=seeds, duration=duration, cases=cases)


def print_report(result: Dict) -> None:
    print("Table 3 — DHCP failure probabilities (unanswered requests)")
    print("  configuration                 failed-dhcp     paper")
    for row in result["rows"]:
        print(
            f"  {row['label']:28s} {row['mean_pct']:5.1f}% ±{row['std_pct']:4.1f}"
            f"   {row['paper_pct']:5.1f}%"
        )
