"""Table 4 — throughput/connectivity vs number of channels.

Multi-AP Spider with equal static schedules over 1, 2, or 3 channels
(200 ms slots). Paper values: 1 channel 121.5 KB/s / 35.5%; 2 channels
25.1 KB/s / 35.8%; 3 channels 28.8 KB/s / 44.7%. Throughput is
maximised on a single channel, connectivity with three.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.config import SpiderConfig
from repro.scenario import build, scenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)

CASES: Tuple = (
    ("1 channel", (1,)),
    ("2 channels (equal)", (1, 6)),
    ("3 channels (equal)", (1, 6, 11)),
)

PAPER = {
    "1 channel": (121.5, 35.5),
    "2 channels (equal)": (25.1, 35.8),
    "3 channels (equal)": (28.8, 44.7),
}


def run(seed: int = 3, duration: float = 900.0, cases: Sequence = CASES) -> Dict:
    rows = []
    for label, channels in cases:
        world = build(scenario("vehicular-amherst", seed=seed))
        fraction = 1.0 / len(channels)
        config = SpiderConfig(
            schedule={ch: fraction for ch in channels},
            period=0.2 * len(channels),
            multi_ap=True,
            **REDUCED,
        )
        result = world.run(world.make_spider(config), duration)
        rows.append(
            {
                "label": label,
                "channels": list(channels),
                "throughput_kBps": result.throughput_kbytes_per_s,
                "connectivity_pct": result.connectivity * 100.0,
                "paper": PAPER[label],
            }
        )
    return {"experiment": "tab4", "rows": rows}


def print_report(result: Dict) -> None:
    print("Table 4 — throughput/connectivity vs number of channels")
    print("  schedule              thr(KB/s)  conn(%)   [paper]")
    for row in result["rows"]:
        print(
            f"  {row['label']:20s} {row['throughput_kBps']:9.1f}"
            f"  {row['connectivity_pct']:6.1f}   {row['paper']}"
        )
