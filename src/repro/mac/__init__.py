"""802.11 MAC substrate.

Implements the multi-phase join machinery whose interaction with
channel switching is the subject of the paper: active scanning
(probe request/response), the authentication + association handshake
with per-message link-layer timeouts, AP-side power-save-mode (PSM)
buffering, and beaconing.
"""

from repro.mac.ap import AccessPoint
from repro.mac.association import AssociationConfig, AssociationMachine, AssociationState
from repro.mac.frames import (
    BROADCAST,
    Frame,
    FrameType,
    beacon,
    data_frame,
    mgmt_frame,
    null_data,
    ps_poll,
)

__all__ = [
    "AccessPoint",
    "AssociationConfig",
    "AssociationMachine",
    "AssociationState",
    "BROADCAST",
    "Frame",
    "FrameType",
    "beacon",
    "data_frame",
    "mgmt_frame",
    "null_data",
    "ps_poll",
]
