"""Access point MAC entity.

One :class:`AccessPoint` owns a static radio on a fixed channel and
implements the responder side of the join machinery plus the PSM
buffering that virtualized Wi-Fi clients exploit:

- periodic beacons;
- probe / authentication / association responses, each after a
  processing delay drawn from the AP's responsiveness profile;
- per-client power-save buffers: a client that sends a null-data frame
  with the PM bit set has its downlink traffic buffered until it sends
  a PS-Poll or clears the bit (this is the "falsely claiming to enter
  power-save mode" mechanism of Sec. 2);
- uplink forwarding: payloads of data frames addressed to the AP are
  handed to ``on_uplink`` (wired side: DHCP server, backhaul router).
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Set

from repro.mac import frames
from repro.mac.frames import Frame, FrameType
from repro.obs import trace as tr
from repro.phy.radio import Medium, Radio
from repro.sim.engine import Simulator
from repro.world.geometry import Point
from repro.world.mobility import StaticMobility


@dataclass
class ApConfig:
    """Responsiveness profile of one AP.

    ``beta_min``/``beta_max`` bound the AP-side processing delay of the
    join steps, matching the analytical model's uniform join-response
    distribution. The total is split across the handshake steps:
    association is fast (a firmware path), DHCP dominates (a userspace
    daemon on a consumer router), per the paper's measurements.
    """

    beacon_interval: float = 0.100
    probe_delay: float = 0.005
    auth_delay: float = 0.002
    assoc_delay_min: float = 0.010
    assoc_delay_max: float = 0.080
    #: Consumer APs buffer only a few dozen frames per PS client; a
    #: client away longer than buffer/backhaul-rate seconds loses the
    #: excess — the mechanism that strangles long off-channel absences.
    psm_buffer_frames: int = 50
    client_timeout: float = 60.0


class AccessPoint:
    """An 802.11 AP with PSM buffering and pluggable uplink."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        channel: int,
        position: Point,
        config: Optional[ApConfig] = None,
        rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.name = name
        self.channel = channel
        self.config = config or ApConfig()
        # Fallback seed must not use hash(): str hashing is salted per
        # process, so worker-pool runs would disagree with inline runs.
        fallback_seed = int.from_bytes(hashlib.sha256(name.encode()).digest()[:8], "big")
        self._rng = rng or random.Random(fallback_seed)
        self.radio = Radio(medium, StaticMobility(position), channel, name=name, address=name)
        self.radio.on_receive = self._on_frame
        self.radio.on_unicast_failure = self._on_tx_failure
        self.authenticated: Set[str] = set()
        self.associated: Set[str] = set()
        self._psm_mode: Set[str] = set()
        self._psm_buffers: Dict[str, Deque[Frame]] = {}
        # Frames whose transmission failed (client raced us leaving the
        # channel). They predate anything in the PSM buffer, so they are
        # flushed first to preserve TCP ordering.
        self._retry_buffers: Dict[str, Deque[Frame]] = {}
        # Clients with at least one frame parked in either buffer: the
        # per-frame wake check in ``_on_frame`` is one set lookup
        # instead of two dict probes (it runs for every frame the AP
        # hears, including every other AP's beacons).
        self._parked: Set[str] = set()
        self._last_heard: Dict[str, float] = {}
        self.on_uplink: Optional[Callable[[str, object], None]] = None
        self.on_associated: Optional[Callable[[str], None]] = None
        self.psm_drops = 0
        self._beaconing = False
        #: Beacons are immutable after construction and nothing in the
        #: stack keeps per-frame state for them (``Frame.seq`` only
        #: feeds ``__repr__``), so one frame object serves every tick
        #: instead of re-allocating ~10 frames/s per AP.
        self._beacon_frame = frames.beacon(self.name, payload={"channel": self.channel})
        metrics = sim.metrics
        if metrics is not None:
            metrics.add_source(lambda: {"ap.psm_drops": self.psm_drops})

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Begin beaconing and client ageing."""
        if self._beaconing:
            return
        self._beaconing = True
        # Desynchronise beacons across APs sharing a channel.
        initial = self._rng.uniform(0, self.config.beacon_interval)
        self.sim.schedule(initial, self._beacon_tick)
        self.sim.schedule(self.config.client_timeout, self._age_clients)

    def _beacon_tick(self) -> None:
        if not self._beaconing:
            return
        self.radio.transmit(self._beacon_frame)
        self.sim.schedule(self.config.beacon_interval, self._beacon_tick)

    def stop(self) -> None:
        self._beaconing = False

    def _age_clients(self) -> None:
        horizon = self.sim.now - self.config.client_timeout
        for client in sorted(self.associated):
            if self._last_heard.get(client, 0.0) < horizon:
                self._drop_client(client)
        self.sim.schedule(self.config.client_timeout / 2, self._age_clients)

    def _drop_client(self, client: str) -> None:
        self.associated.discard(client)
        self.authenticated.discard(client)
        self._psm_mode.discard(client)
        self._psm_buffers.pop(client, None)
        self._retry_buffers.pop(client, None)
        self._parked.discard(client)

    # -- frame handling ---------------------------------------------------

    def _on_tx_failure(self, frame: Frame) -> None:
        """TX-status "failed" for a client that announced power-save.

        A frame already in flight when the PSM null was processed races
        the client's departure; real APs re-queue it into the power-save
        buffer rather than dropping it. Clients that vanished *without*
        announcing PSM get no such service — their frames are simply
        lost after the retry limit, which is exactly what the fake-PSM
        trick exists to avoid.
        """
        if frame.type != FrameType.DATA or frame.src != self.name:
            return
        if not frame.bufferable:
            return  # join traffic: a missed response is simply lost
        client = frame.dst
        if client not in self.associated or client not in self._psm_mode:
            return
        buffer = self._retry_buffers.setdefault(client, deque())
        if len(buffer) >= self.config.psm_buffer_frames:
            self.psm_drops += 1
            trace = self.sim.trace
            if trace is not None:
                trace.emit(tr.AP_PSM_DROP, self.sim.now, ap=self.name, client=client)
            return
        buffer.append(frame)
        self._parked.add(client)

    #: frame type → unbound handler, hoisted to the class: ``_on_frame``
    #: runs once per frame the AP hears (every beacon on the channel at
    #: metro density), and rebuilding a seven-entry dict there cost
    #: seven enum hashes per frame before the lookup even started.
    _FRAME_HANDLERS: Dict[FrameType, Callable[["AccessPoint", Frame], None]] = {}

    def _on_frame(self, frame: Frame) -> None:
        if frame.dst != self.name and frame.dst != frames.BROADCAST:
            return
        self._last_heard[frame.src] = self.sim.now
        # Hearing from a client not in PSM means it is awake: release
        # anything parked by PSM or TX-failure requeueing.
        if frame.src in self._parked and frame.src not in self._psm_mode:
            self._flush_psm(frame.src)
        handler = self._FRAME_HANDLERS.get(frame.type)
        if handler is not None:
            handler(self, frame)

    def _on_probe(self, frame: Frame) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.emit(tr.AP_PROBE_RESP, self.sim.now, ap=self.name, client=frame.src)
        response = frames.mgmt_frame(
            FrameType.PROBE_RESPONSE, self.name, frame.src, payload={"channel": self.channel}
        )
        self.sim.schedule(self.config.probe_delay, self.radio.transmit, response)

    def _on_auth(self, frame: Frame) -> None:
        self.authenticated.add(frame.src)
        response = frames.mgmt_frame(FrameType.AUTH_RESPONSE, self.name, frame.src)
        self.sim.schedule(self.config.auth_delay, self.radio.transmit, response)

    def _on_assoc(self, frame: Frame) -> None:
        if frame.src not in self.authenticated:
            return  # out-of-order association attempt; client must re-auth
        delay = self._rng.uniform(self.config.assoc_delay_min, self.config.assoc_delay_max)
        self.sim.schedule(delay, self._complete_assoc, frame.src)

    def _complete_assoc(self, client: str) -> None:
        self.associated.add(client)
        self._psm_buffers.setdefault(client, deque())
        trace = self.sim.trace
        if trace is not None:
            trace.emit(tr.AP_ASSOC_GRANT, self.sim.now, ap=self.name, client=client)
        self.radio.transmit(frames.mgmt_frame(FrameType.ASSOC_RESPONSE, self.name, client))
        if self.on_associated is not None:
            self.on_associated(client)

    def _on_deauth(self, frame: Frame) -> None:
        self._drop_client(frame.src)

    def _on_null(self, frame: Frame) -> None:
        if frame.src not in self.associated:
            return
        trace = self.sim.trace
        if frame.pm:
            if trace is not None and frame.src not in self._psm_mode:
                trace.emit(tr.AP_PSM_SLEEP, self.sim.now, ap=self.name, client=frame.src)
            self._psm_mode.add(frame.src)
        else:
            if trace is not None and frame.src in self._psm_mode:
                trace.emit(
                    tr.AP_PSM_WAKE, self.sim.now, ap=self.name, client=frame.src,
                    buffered=self.psm_backlog(frame.src),
                )
            self._psm_mode.discard(frame.src)
            self._flush_psm(frame.src)

    def _on_ps_poll(self, frame: Frame) -> None:
        if frame.src in self.associated:
            self._flush_psm(frame.src)

    def _on_data(self, frame: Frame) -> None:
        if frame.pm:
            self._psm_mode.add(frame.src)
        if self.on_uplink is not None and frame.payload is not None:
            self.on_uplink(frame.src, frame.payload)

    # -- downlink ----------------------------------------------------------

    def client_in_psm(self, client: str) -> bool:
        return client in self._psm_mode

    def psm_backlog(self, client: str) -> int:
        return len(self._psm_buffers.get(client, ()))

    def send_unbuffered(self, client: str, payload: object, payload_bytes: int) -> None:
        """Transmit immediately, bypassing PSM buffering.

        Used for join traffic (DHCP responses): the exchange is driven
        by the AP's own daemon and does not honour power-save state —
        a response sent while the client is off-channel is lost. This
        is the paper's core observation about why fractional channel
        schedules break joins.
        """
        frame = frames.data_frame(self.name, client, payload, payload_bytes)
        frame.bufferable = False
        # DHCP replies go out like broadcasts on real APs (the client
        # has no confirmed address yet): no link-layer ARQ either.
        frame.needs_ack = False
        self.radio.transmit(frame)

    def send_to_client(self, client: str, payload: object, payload_bytes: int) -> None:
        """Send (or PSM-buffer) a downlink payload to an associated client."""
        frame = frames.data_frame(self.name, client, payload, payload_bytes)
        if client in self._psm_mode or self._retry_buffers.get(client):
            # Asleep — or awake with failed frames awaiting re-delivery,
            # in which case overtaking them would reorder the stream.
            buffer = self._psm_buffers.setdefault(client, deque())
            if len(buffer) >= self.config.psm_buffer_frames:
                self.psm_drops += 1
                trace = self.sim.trace
                if trace is not None:
                    trace.emit(tr.AP_PSM_DROP, self.sim.now, ap=self.name, client=client)
                return
            buffer.append(frame)
            self._parked.add(client)
            return
        self.radio.transmit(frame)

    def _flush_psm(self, client: str) -> None:
        self._parked.discard(client)
        retry = self._retry_buffers.get(client)
        if retry:
            while retry:
                self.radio.transmit(retry.popleft())
        buffer = self._psm_buffers.get(client)
        if buffer:
            while buffer:
                self.radio.transmit(buffer.popleft())


#: Populated after the class body so the unbound methods exist; kept
#: off the instance so every AP shares one dict (and one set of enum
#: hashes, computed once at import).
AccessPoint._FRAME_HANDLERS = {
    FrameType.PROBE_REQUEST: AccessPoint._on_probe,
    FrameType.AUTH_REQUEST: AccessPoint._on_auth,
    FrameType.ASSOC_REQUEST: AccessPoint._on_assoc,
    FrameType.NULL_DATA: AccessPoint._on_null,
    FrameType.PS_POLL: AccessPoint._on_ps_poll,
    FrameType.DATA: AccessPoint._on_data,
    FrameType.DEAUTH: AccessPoint._on_deauth,
}
