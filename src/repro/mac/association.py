"""Client-side association state machine.

Implements the link-layer half of the multi-phase join the paper
studies: AUTH request/response then ASSOC request/response, driven by a
per-message retransmission timer (the "link-layer timeout": 1 s stock,
100 ms in the reduced-timeout experiments, per Sec. 2.2.1 footnote 1 —
a timer *per message*, not for the whole exchange).

The machine only transmits while the card is tuned to the AP's channel;
when the scheduler has the card elsewhere, the timer keeps running —
which is exactly why fractional channel schedules hurt join success.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.mac import frames
from repro.mac.frames import Frame, FrameType
from repro.obs import trace as tr
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.timers import Timer


class AssociationState(enum.Enum):
    IDLE = "idle"
    AUTHENTICATING = "authenticating"
    ASSOCIATING = "associating"
    ASSOCIATED = "associated"
    FAILED = "failed"


@dataclass
class AssociationConfig:
    """Link-layer timers.

    ``link_timeout`` is the per-message retransmission timer.
    ``max_attempts`` bounds transmissions per message.
    ``deadline`` bounds the whole exchange (None = unbounded; the driver
    abandons machines for out-of-range APs instead).
    """

    link_timeout: float = 1.0
    max_attempts: int = 10
    deadline: Optional[float] = None


@dataclass
class JoinTiming:
    """Timestamps collected for the evaluation's CDFs."""

    started_at: float = 0.0
    associated_at: Optional[float] = None

    @property
    def association_time(self) -> Optional[float]:
        if self.associated_at is None:
            return None
        return self.associated_at - self.started_at


class AssociationMachine:
    """Drives one client's association with one AP."""

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        client_address: str,
        ap_name: str,
        ap_channel: int,
        config: Optional[AssociationConfig] = None,
        on_result: Optional[Callable[["AssociationMachine", bool], None]] = None,
    ):
        self.sim = sim
        self.radio = radio
        self.client_address = client_address
        self.ap_name = ap_name
        self.ap_channel = ap_channel
        self.config = config or AssociationConfig()
        self.on_result = on_result
        self.state = AssociationState.IDLE
        self.timing = JoinTiming()
        self.attempts = 0
        self._timer = Timer(sim, self._on_timeout)

    # -- control -----------------------------------------------------------

    def start(self) -> None:
        """Begin the exchange (idempotent once running)."""
        if self.state not in (AssociationState.IDLE, AssociationState.FAILED):
            return
        self.state = AssociationState.AUTHENTICATING
        self.timing = JoinTiming(started_at=self.sim.now)
        self.attempts = 0
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.ASSOC_START, self.sim.now, client=self.client_address,
                ap=self.ap_name, channel=self.ap_channel,
            )
        self._send_current()

    def abort(self) -> None:
        """Stop without reporting a result (driver gave up on the AP)."""
        self._timer.cancel()
        if self.state not in (AssociationState.ASSOCIATED,):
            self.state = AssociationState.IDLE

    @property
    def associated(self) -> bool:
        return self.state == AssociationState.ASSOCIATED

    def _on_channel(self) -> bool:
        return self.radio.channel == self.ap_channel and not self.radio.deaf

    # -- sending -----------------------------------------------------------

    def _send_current(self) -> None:
        """Transmit the message for the current state, if on channel."""
        if self.state == AssociationState.AUTHENTICATING:
            frame_type = FrameType.AUTH_REQUEST
        elif self.state == AssociationState.ASSOCIATING:
            frame_type = FrameType.ASSOC_REQUEST
        else:
            return
        if self._deadline_passed():
            self._fail()
            return
        if self._on_channel():
            self.attempts += 1
            if self.attempts > self.config.max_attempts:
                self._fail()
                return
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    tr.ASSOC_TX, self.sim.now, client=self.client_address,
                    ap=self.ap_name, stage=frame_type.value, attempt=self.attempts,
                )
            self.radio.transmit(
                frames.mgmt_frame(frame_type, self.client_address, self.ap_name)
            )
        self._timer.start(self.config.link_timeout)

    def _on_timeout(self) -> None:
        if self.state in (AssociationState.ASSOCIATED, AssociationState.FAILED):
            return
        self._send_current()

    def _deadline_passed(self) -> bool:
        if self.config.deadline is None:
            return False
        return self.sim.now - self.timing.started_at > self.config.deadline

    # -- receiving -----------------------------------------------------------

    def handle_frame(self, frame: Frame) -> None:
        """Feed a frame from this machine's AP (driver dispatches by src)."""
        if frame.src != self.ap_name or frame.dst != self.client_address:
            return
        if frame.type == FrameType.AUTH_RESPONSE and self.state == AssociationState.AUTHENTICATING:
            self.state = AssociationState.ASSOCIATING
            self.attempts = 0
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    tr.ASSOC_STATE, self.sim.now, client=self.client_address,
                    ap=self.ap_name, state=self.state.value,
                )
            self._send_current()
        elif frame.type == FrameType.ASSOC_RESPONSE and self.state == AssociationState.ASSOCIATING:
            self.state = AssociationState.ASSOCIATED
            self.timing.associated_at = self.sim.now
            self._timer.cancel()
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    tr.ASSOC_OK, self.sim.now, client=self.client_address,
                    ap=self.ap_name, took=self.timing.association_time,
                )
            if self.on_result is not None:
                self.on_result(self, True)
        elif frame.type == FrameType.DEAUTH:
            self._fail()

    def _fail(self) -> None:
        self._timer.cancel()
        if self.state == AssociationState.FAILED:
            return
        self.state = AssociationState.FAILED
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.ASSOC_FAIL, self.sim.now, client=self.client_address,
                ap=self.ap_name, attempts=self.attempts,
            )
        if self.on_result is not None:
            self.on_result(self, False)
