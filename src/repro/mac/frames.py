"""802.11 frame definitions.

Frames are small dataclasses carrying just what the simulation needs:
type, addressing, size (for airtime), rate, the power-management bit,
and an opaque L3 payload (a DHCP message or a TCP segment).

Sizes follow real 802.11b framing closely enough for airtime fidelity:
management frames are of the order of 30–130 bytes at the 1 Mbps basic
rate; data frames add a 34-byte MAC header around the payload at
11 Mbps.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.phy.channels import DEFAULT_DATA_RATE_BPS, MANAGEMENT_RATE_BPS

#: Broadcast destination address.
BROADCAST = "ff:ff:ff:ff:ff:ff"

_sequence = itertools.count()


class FrameType(enum.Enum):
    # Enum's default __hash__ is a Python-level call on the member
    # name; frame types key every dispatch-table lookup on the MAC hot
    # path, so use the C-level identity hash (members are singletons,
    # and Enum equality is already identity).
    __hash__ = object.__hash__

    BEACON = "beacon"
    PROBE_REQUEST = "probe-req"
    PROBE_RESPONSE = "probe-resp"
    AUTH_REQUEST = "auth-req"
    AUTH_RESPONSE = "auth-resp"
    ASSOC_REQUEST = "assoc-req"
    ASSOC_RESPONSE = "assoc-resp"
    DEAUTH = "deauth"
    NULL_DATA = "null"
    PS_POLL = "ps-poll"
    DATA = "data"


#: Representative on-air sizes (bytes, including MAC header + FCS).
MGMT_FRAME_SIZES = {
    FrameType.BEACON: 110,
    FrameType.PROBE_REQUEST: 68,
    FrameType.PROBE_RESPONSE: 110,
    FrameType.AUTH_REQUEST: 34,
    FrameType.AUTH_RESPONSE: 34,
    FrameType.ASSOC_REQUEST: 70,
    FrameType.ASSOC_RESPONSE: 40,
    FrameType.DEAUTH: 30,
    FrameType.NULL_DATA: 28,
    FrameType.PS_POLL: 20,
}

DATA_HEADER_BYTES = 34


@dataclass(slots=True)
class Frame:
    """One frame on the air."""

    type: FrameType
    src: str
    dst: str
    size_bytes: int
    rate_bps: float
    pm: bool = False  # 802.11 power-management bit
    payload: Any = None
    needs_ack: bool = True  # unicast link-layer ARQ eligibility
    #: Eligible for AP-side PSM/retry buffering. Join traffic (DHCP
    #: responses) is NOT: the paper's premise is that the join exchange
    #: "cannot be buffered using a PSM request" — miss it and it's gone.
    bufferable: bool = True
    seq: int = field(default_factory=lambda: next(_sequence))

    @property
    def broadcast(self) -> bool:
        return self.dst == BROADCAST

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.type.value} {self.src}->{self.dst} #{self.seq}>"


def mgmt_frame(frame_type: FrameType, src: str, dst: str, payload: Any = None) -> Frame:
    """Build a management frame at the basic rate."""
    size_bytes = MGMT_FRAME_SIZES.get(frame_type)
    if size_bytes is None:
        raise ValueError(f"{frame_type} is not a management frame type")
    return Frame(
        type=frame_type,
        src=src,
        dst=dst,
        size_bytes=size_bytes,
        rate_bps=MANAGEMENT_RATE_BPS,
        payload=payload,
        needs_ack=dst != BROADCAST,
    )


def beacon(src: str, payload: Any = None) -> Frame:
    return mgmt_frame(FrameType.BEACON, src, BROADCAST, payload)


def null_data(src: str, dst: str, pm: bool) -> Frame:
    """PSM announcement: null data frame with the PM bit set/cleared."""
    frame = mgmt_frame(FrameType.NULL_DATA, src, dst)
    frame.pm = pm
    return frame


def ps_poll(src: str, dst: str) -> Frame:
    return mgmt_frame(FrameType.PS_POLL, src, dst)


def data_frame(
    src: str,
    dst: str,
    payload: Any,
    payload_bytes: int,
    rate_bps: float = DEFAULT_DATA_RATE_BPS,
    pm: bool = False,
) -> Frame:
    """Build a data frame wrapping an L3 payload."""
    if payload_bytes < 0:
        raise ValueError("negative payload size")
    return Frame(
        type=FrameType.DATA,
        src=src,
        dst=dst,
        size_bytes=payload_bytes + DATA_HEADER_BYTES,
        rate_bps=rate_bps,
        pm=pm,
        payload=payload,
        needs_ack=dst != BROADCAST,
    )
