"""Measurement machinery for the evaluation.

The paper's four key metrics (Sec. 4.3) map onto
:class:`~repro.metrics.collector.ThroughputRecorder`:

1. average throughput — bytes delivered / experiment duration;
2. average connectivity — % of seconds with nonzero delivery;
3. disruption length — contiguous zero-delivery periods;
4. instantaneous bandwidth — per-second delivery when connected.

Join attempts (association + DHCP) are logged by
:class:`~repro.metrics.collector.JoinLog` for the join-time CDFs and
DHCP failure-rate tables.
"""

from repro.metrics.collector import JoinLog, JoinRecord, ThroughputRecorder
from repro.metrics.energy import EnergyMeter, EnergyModel, EnergyReport
from repro.metrics.stats import empirical_cdf, mean, median, percentile, stdev, summarize

__all__ = [
    "EnergyMeter",
    "EnergyModel",
    "EnergyReport",
    "JoinLog",
    "JoinRecord",
    "ThroughputRecorder",
    "empirical_cdf",
    "mean",
    "median",
    "percentile",
    "stdev",
    "summarize",
]
