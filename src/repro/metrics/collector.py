"""Collectors for the evaluation's metrics.

``ThroughputRecorder`` bins delivered bytes into one-second buckets —
the granularity at which the paper defines connectivity ("percentage
of time that a non-zero amount of data was transferred") and
instantaneous bandwidth ("data per second transferred when there is
connectivity").

``JoinLog`` records every join attempt's timeline (association start,
association complete, DHCP bound / failed) for the CDFs of Figs. 5, 6,
11, 12 and the failure rates of Table 3.

``JoinTimeline`` is the trace-driven alternative: subscribed to a
:class:`~repro.obs.trace.TraceBus`, it reconstructs the same per-AP
join timelines purely from emitted events — a cross-check that the
instrumentation points tell the same story as the in-band accounting.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.engine import Simulator


class ThroughputRecorder:
    """Per-second delivery accounting for one experiment run."""

    def __init__(self, sim: Simulator, bucket_s: float = 1.0):
        self.sim = sim
        self.bucket_s = bucket_s
        self._buckets: Dict[int, int] = defaultdict(int)
        self.total_bytes = 0
        self.started_at = sim.now

    def record(self, nbytes: int) -> None:
        """Hook for TCP receivers' ``on_deliver``."""
        bucket = int(self.sim.now / self.bucket_s)
        self._buckets[bucket] += nbytes
        self.total_bytes += nbytes

    # -- summary metrics ------------------------------------------------

    def duration(self) -> float:
        return self.sim.now - self.started_at

    def average_throughput_bps(self) -> float:
        """Metric 1: bytes/s × 8 over the whole experiment."""
        elapsed = self.duration()
        if elapsed <= 0:
            return 0.0
        return self.total_bytes * 8.0 / elapsed

    def average_throughput_kbytes_per_s(self) -> float:
        elapsed = self.duration()
        if elapsed <= 0:
            return 0.0
        return self.total_bytes / 1000.0 / elapsed

    def _bucket_range(self) -> range:
        first = int(math.floor(self.started_at / self.bucket_s))
        # Round the end *up*: a run ending mid-bucket still spent time in
        # that bucket, so it must be counted (a 0.5 s run is one bucket,
        # not zero). Integer-duration runs are unchanged by the ceil.
        last = int(math.ceil(self.sim.now / self.bucket_s))
        return range(first, max(first, last))

    def connectivity_fraction(self) -> float:
        """Metric 2: fraction of buckets with nonzero delivery."""
        buckets = self._bucket_range()
        if len(buckets) == 0:
            return 0.0
        connected = sum(1 for b in buckets if self._buckets.get(b, 0) > 0)
        return connected / len(buckets)

    def _episodes(self, connected: bool) -> List[float]:
        """Contiguous runs of (non)zero buckets, as durations."""
        episodes: List[float] = []
        run = 0
        for bucket in self._bucket_range():
            active = self._buckets.get(bucket, 0) > 0
            if active == connected:
                run += 1
            elif run:
                episodes.append(run * self.bucket_s)
                run = 0
        if run:
            episodes.append(run * self.bucket_s)
        return episodes

    def connection_durations(self) -> List[float]:
        """Metric: contiguous connectivity periods (Fig. 10a)."""
        return self._episodes(connected=True)

    def disruption_durations(self) -> List[float]:
        """Metric 3: contiguous zero-connectivity periods (Fig. 10b)."""
        return self._episodes(connected=False)

    def instantaneous_bandwidths_kbytes(self) -> List[float]:
        """Metric 4: per-bucket KB/s over connected buckets (Fig. 10c)."""
        return [
            self._buckets[b] / 1000.0 / self.bucket_s
            for b in self._bucket_range()
            if self._buckets.get(b, 0) > 0
        ]


@dataclass
class JoinRecord:
    """Timeline of one join attempt against one AP."""

    ap: str
    channel: int
    started_at: float
    associated_at: Optional[float] = None
    bound_at: Optional[float] = None
    failed_at: Optional[float] = None
    dhcp_failures: int = 0
    #: message-level accounting (Table 3's "Failed dhcp" metric)
    dhcp_transmissions: int = 0
    dhcp_message_timeouts: int = 0
    used_cached_lease: bool = False

    @property
    def association_time(self) -> Optional[float]:
        if self.associated_at is None:
            return None
        return self.associated_at - self.started_at

    @property
    def join_time(self) -> Optional[float]:
        """Association + DHCP, the paper's "time to join"."""
        if self.bound_at is None:
            return None
        return self.bound_at - self.started_at

    @property
    def succeeded(self) -> bool:
        return self.bound_at is not None


class JoinLog:
    """All join attempts of a run."""

    def __init__(self) -> None:
        self.records: List[JoinRecord] = []

    def open_record(self, ap: str, channel: int, now: float) -> JoinRecord:
        record = JoinRecord(ap=ap, channel=channel, started_at=now)
        self.records.append(record)
        return record

    # -- derived series ------------------------------------------------

    def association_times(self) -> List[float]:
        return [r.association_time for r in self.records if r.association_time is not None]

    def join_times(self) -> List[float]:
        return [r.join_time for r in self.records if r.join_time is not None]

    def attempts(self) -> int:
        return len(self.records)

    def successes(self) -> int:
        return sum(1 for r in self.records if r.succeeded)

    def dhcp_attempts(self) -> int:
        """Attempts that reached the DHCP stage (associated first)."""
        return sum(1 for r in self.records if r.associated_at is not None)

    def dhcp_failure_rate(self) -> float:
        """Fraction of DHCP attempt windows that expired unfulfilled."""
        total_failures = sum(r.dhcp_failures for r in self.records)
        total = total_failures + self.successes()
        if total == 0:
            return 0.0
        return total_failures / total

    def dhcp_message_timeout_rate(self) -> float:
        """Fraction of transmitted DHCP requests that got no response
        within the retry timer — Table 3's "Failed dhcp" metric."""
        transmissions = sum(r.dhcp_transmissions for r in self.records)
        timeouts = sum(r.dhcp_message_timeouts for r in self.records)
        if transmissions == 0:
            return 0.0
        return timeouts / transmissions


class JoinTimeline:
    """Join timelines reconstructed from trace events.

    Subscribe to a :class:`~repro.obs.trace.TraceBus` and this collector
    rebuilds, per (client, AP) pair, the association/DHCP milestones the
    :class:`JoinLog` tracks in-band. Each ``assoc.start`` opens a fresh
    record, so repeated joins against the same AP are kept apart.
    """

    def __init__(self) -> None:
        self.records: List[JoinRecord] = []
        self._open: Dict[tuple, JoinRecord] = {}

    def subscribe_to(self, bus) -> "JoinTimeline":
        bus.subscribe(self.on_event)
        return self

    def on_event(self, event) -> None:
        # Local import: obs.trace must stay importable without this module.
        from repro.obs import trace as tr

        fields = event.fields
        # Link-layer events name the peer "ap"; DHCP events name it
        # "server" (same AP — its wired side runs the daemon).
        peer = fields.get("ap") or fields.get("server")
        key = (fields.get("client"), peer)
        if event.kind == tr.ASSOC_START:
            record = JoinRecord(
                ap=fields["ap"], channel=fields.get("channel", 0), started_at=event.t
            )
            self._open[key] = record
            self.records.append(record)
            return
        record = self._open.get(key)
        if record is None:
            return
        if event.kind == tr.ASSOC_OK:
            record.associated_at = event.t
        elif event.kind == tr.DHCP_SEND:
            record.dhcp_transmissions += 1
        elif event.kind == tr.DHCP_TIMEOUT:
            record.dhcp_message_timeouts += 1
        elif event.kind == tr.DHCP_BIND:
            record.bound_at = event.t
            if fields.get("cached"):
                record.used_cached_lease = True
            self._open.pop(key, None)
        elif event.kind == tr.DHCP_FAIL:
            record.dhcp_failures += 1
        elif event.kind in (tr.ASSOC_FAIL, tr.DRIVER_FAILED, tr.DRIVER_LOST):
            if record.failed_at is None:
                record.failed_at = event.t
            self._open.pop(key, None)

    # -- derived series (mirror JoinLog) --------------------------------

    def join_times(self) -> List[float]:
        return [r.join_time for r in self.records if r.join_time is not None]

    def association_times(self) -> List[float]:
        return [r.association_time for r in self.records if r.association_time is not None]

    def successes(self) -> int:
        return sum(1 for r in self.records if r.succeeded)
