"""Collectors for the evaluation's metrics.

``ThroughputRecorder`` bins delivered bytes into one-second buckets —
the granularity at which the paper defines connectivity ("percentage
of time that a non-zero amount of data was transferred") and
instantaneous bandwidth ("data per second transferred when there is
connectivity").

``JoinLog`` records every join attempt's timeline (association start,
association complete, DHCP bound / failed) for the CDFs of Figs. 5, 6,
11, 12 and the failure rates of Table 3.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.engine import Simulator


class ThroughputRecorder:
    """Per-second delivery accounting for one experiment run."""

    def __init__(self, sim: Simulator, bucket_s: float = 1.0):
        self.sim = sim
        self.bucket_s = bucket_s
        self._buckets: Dict[int, int] = defaultdict(int)
        self.total_bytes = 0
        self.started_at = sim.now

    def record(self, nbytes: int) -> None:
        """Hook for TCP receivers' ``on_deliver``."""
        bucket = int(self.sim.now / self.bucket_s)
        self._buckets[bucket] += nbytes
        self.total_bytes += nbytes

    # -- summary metrics ------------------------------------------------

    def duration(self) -> float:
        return self.sim.now - self.started_at

    def average_throughput_bps(self) -> float:
        """Metric 1: bytes/s × 8 over the whole experiment."""
        elapsed = self.duration()
        if elapsed <= 0:
            return 0.0
        return self.total_bytes * 8.0 / elapsed

    def average_throughput_kbytes_per_s(self) -> float:
        elapsed = self.duration()
        if elapsed <= 0:
            return 0.0
        return self.total_bytes / 1000.0 / elapsed

    def _bucket_range(self) -> range:
        first = int(self.started_at / self.bucket_s)
        last = int(self.sim.now / self.bucket_s)
        return range(first, last)

    def connectivity_fraction(self) -> float:
        """Metric 2: fraction of buckets with nonzero delivery."""
        buckets = self._bucket_range()
        if len(buckets) == 0:
            return 0.0
        connected = sum(1 for b in buckets if self._buckets.get(b, 0) > 0)
        return connected / len(buckets)

    def _episodes(self, connected: bool) -> List[float]:
        """Contiguous runs of (non)zero buckets, as durations."""
        episodes: List[float] = []
        run = 0
        for bucket in self._bucket_range():
            active = self._buckets.get(bucket, 0) > 0
            if active == connected:
                run += 1
            elif run:
                episodes.append(run * self.bucket_s)
                run = 0
        if run:
            episodes.append(run * self.bucket_s)
        return episodes

    def connection_durations(self) -> List[float]:
        """Metric: contiguous connectivity periods (Fig. 10a)."""
        return self._episodes(connected=True)

    def disruption_durations(self) -> List[float]:
        """Metric 3: contiguous zero-connectivity periods (Fig. 10b)."""
        return self._episodes(connected=False)

    def instantaneous_bandwidths_kbytes(self) -> List[float]:
        """Metric 4: per-bucket KB/s over connected buckets (Fig. 10c)."""
        return [
            self._buckets[b] / 1000.0 / self.bucket_s
            for b in self._bucket_range()
            if self._buckets.get(b, 0) > 0
        ]


@dataclass
class JoinRecord:
    """Timeline of one join attempt against one AP."""

    ap: str
    channel: int
    started_at: float
    associated_at: Optional[float] = None
    bound_at: Optional[float] = None
    failed_at: Optional[float] = None
    dhcp_failures: int = 0
    #: message-level accounting (Table 3's "Failed dhcp" metric)
    dhcp_transmissions: int = 0
    dhcp_message_timeouts: int = 0
    used_cached_lease: bool = False

    @property
    def association_time(self) -> Optional[float]:
        if self.associated_at is None:
            return None
        return self.associated_at - self.started_at

    @property
    def join_time(self) -> Optional[float]:
        """Association + DHCP, the paper's "time to join"."""
        if self.bound_at is None:
            return None
        return self.bound_at - self.started_at

    @property
    def succeeded(self) -> bool:
        return self.bound_at is not None


class JoinLog:
    """All join attempts of a run."""

    def __init__(self) -> None:
        self.records: List[JoinRecord] = []

    def open_record(self, ap: str, channel: int, now: float) -> JoinRecord:
        record = JoinRecord(ap=ap, channel=channel, started_at=now)
        self.records.append(record)
        return record

    # -- derived series ------------------------------------------------

    def association_times(self) -> List[float]:
        return [r.association_time for r in self.records if r.association_time is not None]

    def join_times(self) -> List[float]:
        return [r.join_time for r in self.records if r.join_time is not None]

    def attempts(self) -> int:
        return len(self.records)

    def successes(self) -> int:
        return sum(1 for r in self.records if r.succeeded)

    def dhcp_attempts(self) -> int:
        """Attempts that reached the DHCP stage (associated first)."""
        return sum(1 for r in self.records if r.associated_at is not None)

    def dhcp_failure_rate(self) -> float:
        """Fraction of DHCP attempt windows that expired unfulfilled."""
        total_failures = sum(r.dhcp_failures for r in self.records)
        total = total_failures + self.successes()
        if total == 0:
            return 0.0
        return total_failures / total

    def dhcp_message_timeout_rate(self) -> float:
        """Fraction of transmitted DHCP requests that got no response
        within the retry timer — Table 3's "Failed dhcp" metric."""
        transmissions = sum(r.dhcp_transmissions for r in self.records)
        timeouts = sum(r.dhcp_message_timeouts for r in self.records)
        if transmissions == 0:
            return 0.0
        return timeouts / transmissions
