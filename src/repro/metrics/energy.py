"""Radio energy model (the paper's Sec. 4.8 future work).

"Investigating the effect of multi-AP systems on energy consumption of
constrained devices ... require[s] future work." This module provides
the standard state-based accounting: the radio draws state-dependent
power (transmit / receive / idle-listening / hardware reset), and the
meter integrates airtime counters the :class:`~repro.phy.radio.Radio`
already collects. Default powers follow the much-cited Atheros/802.11
measurements (~1.3 W tx, ~0.95 W rx, ~0.85 W idle listen).

Note the well-known Wi-Fi reality this reproduces: *idle listening
dominates*. A driver that transfers more data per unit time (Spider's
single-channel multi-AP mode) therefore spends fewer joules per byte,
even though its radio is busier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.radio import Radio


@dataclass(frozen=True)
class EnergyModel:
    """State powers in watts."""

    tx_w: float = 1.30
    rx_w: float = 0.95
    idle_w: float = 0.85
    reset_w: float = 0.30  # card is quiescent during a hardware reset


@dataclass
class EnergyReport:
    """Joules spent per state over a measurement window."""

    elapsed: float
    tx_j: float
    rx_j: float
    idle_j: float
    reset_j: float

    @property
    def total_j(self) -> float:
        return self.tx_j + self.rx_j + self.idle_j + self.reset_j

    @property
    def average_power_w(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.total_j / self.elapsed

    def joules_per_megabyte(self, bytes_delivered: int) -> float:
        """Energy efficiency: J/MB of useful data (inf if none)."""
        if bytes_delivered <= 0:
            return float("inf")
        return self.total_j / (bytes_delivered / 1e6)


class EnergyMeter:
    """Snapshots a radio's airtime counters and integrates power."""

    def __init__(self, radio: Radio, model: EnergyModel = EnergyModel()):
        self.radio = radio
        self.model = model
        self._start_time = radio.sim.now
        self._start_tx = radio.tx_airtime
        self._start_rx = radio.rx_airtime
        self._start_deaf = radio.deaf_time

    def report(self) -> EnergyReport:
        elapsed = self.radio.sim.now - self._start_time
        tx = self.radio.tx_airtime - self._start_tx
        rx = self.radio.rx_airtime - self._start_rx
        reset = self.radio.deaf_time - self._start_deaf
        idle = max(0.0, elapsed - tx - rx - reset)
        return EnergyReport(
            elapsed=elapsed,
            tx_j=tx * self.model.tx_w,
            rx_j=rx * self.model.rx_w,
            idle_j=idle * self.model.idle_w,
            reset_j=reset * self.model.reset_w,
        )
