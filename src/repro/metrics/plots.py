"""Terminal plotting for experiment reports.

The paper's artifacts are mostly CDFs and line plots; these helpers
render them as ASCII so ``spider-repro run`` reproduces the *figures*,
not just summary rows, without a plotting dependency.

All functions return a string (callers print it), making them trivially
testable.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def line_plot(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more (label, xs, ys) series on shared axes."""
    populated = [(label, xs, ys) for label, xs, ys in series if len(xs)]
    if not populated:
        return "(no data)"
    all_x = [x for _l, xs, _ys in populated for x in xs]
    all_y = [y for _l, _xs, ys in populated for y in ys]
    x_low, x_high = min(all_x), max(all_x)
    y_low, y_high = min(all_y), max(all_y)
    if y_low > 0 and y_low < y_high * 0.25:
        y_low = 0.0  # anchor near-zero axes at zero for readability
    grid = [[" "] * width for _ in range(height)]
    for index, (label, xs, ys) in enumerate(populated):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, y in zip(xs, ys):
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = glyph
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            margin = f"{y_high:>10.3g} |"
        elif row_index == height - 1:
            margin = f"{y_low:>10.3g} |"
        else:
            margin = " " * 10 + " |"
        lines.append(margin + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_axis = f"{x_low:<12.3g}{x_label:^{max(0, width - 24)}}{x_high:>12.3g}"
    lines.append(" " * 12 + x_axis)
    legend = "   ".join(
        f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]} {label}"
        for i, (label, _xs, _ys) in enumerate(populated)
    )
    if y_label:
        lines.insert(0, f"  [{y_label}]")
    lines.append("  " + legend)
    return "\n".join(lines)


def cdf_plot(
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    x_max: Optional[float] = None,
) -> str:
    """Plot empirical CDFs of one or more (label, samples) series."""
    prepared = []
    for label, samples in series:
        values = sorted(samples)
        if x_max is not None:
            values = [v for v in values if v <= x_max]
        if not values:
            continue
        n = len(sorted(samples))
        ys = [(i + 1) / n for i in range(len(values))]
        prepared.append((label, values, ys))
    return line_plot(prepared, width=width, height=height,
                     x_label=x_label, y_label="cumulative fraction")


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bars, scaled to the maximum value."""
    if not rows:
        return "(no data)"
    peak = max(value for _label, value in rows) or 1.0
    label_width = max(len(label) for label, _v in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(1 if value > 0 else 0, int(round(value / peak * width)))
        lines.append(f"  {label:<{label_width}} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)
