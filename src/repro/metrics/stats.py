"""Small statistics helpers.

Numpy-backed where it pays, with a pure-python fallback — the API and
every returned float are identical either way. Bit-identity matters:
these summaries land in canonical result dicts, whose SHA-256 digests
the golden tests pin (``tests/goldens/*.json``), so the numpy paths
are restricted to operations that round exactly like the scalar code:

- sums use ``np.cumsum(...)[-1]`` (sequential adds, the same float
  operations in the same order as ``sum()``); ``np.sum`` itself uses
  pairwise summation and is *not* bit-compatible;
- elementwise ufuncs (subtract, multiply, divide, compare) round
  identically to the equivalent scalar float64 expressions;
- order statistics (sort, min, max) select elements, never compute.

Small inputs skip numpy entirely — array conversion overhead dwarfs
the work below ``_BATCH_MIN`` elements.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

try:  # numpy ships with the toolchain, but the core must not require it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Below this many values the pure-python path is faster than paying
#: list→ndarray conversion; identical results either way.
_BATCH_MIN = 64


def _seq_sum(array) -> float:
    """Sequential (left-to-right) sum of a 1-D float array.

    ``np.cumsum`` adds strictly sequentially, so its last element is
    bit-identical to ``sum()`` over the same floats — unlike
    ``np.sum``'s pairwise tree, which rounds differently.
    """
    return float(_np.cumsum(array)[-1])


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    n = len(values)
    if n == 0:
        return 0.0
    if _np is not None and n >= _BATCH_MIN:
        return _seq_sum(_np.asarray(values, dtype=float)) / n
    return sum(values) / n


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    if _np is not None and n >= _BATCH_MIN:
        deltas = _np.asarray(values, dtype=float) - mu
        return math.sqrt(_seq_sum(deltas * deltas) / n)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / n)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    n = len(values)
    if n == 0:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    if _np is not None and n >= _BATCH_MIN:
        ordered = _np.sort(_np.asarray(values, dtype=float))
        if n == 1:
            return float(ordered[0])
        rank = (q / 100.0) * (n - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return float(ordered[low])
        weight = rank - low
        # Same expression (and operand order) as the scalar branch.
        return float(ordered[low]) * (1 - weight) + float(ordered[high]) * weight
    ordered = sorted(values)
    if n == 1:
        return ordered[0]
    rank = (q / 100.0) * (n - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Return (xs, ys) of the empirical CDF, ys in (0, 1]."""
    n = len(values)
    if n == 0:
        return [], []
    if _np is not None and n >= _BATCH_MIN:
        xs = _np.sort(_np.asarray(values, dtype=float)).tolist()
        ys = (_np.arange(1, n + 1, dtype=float) / n).tolist()
        return xs, ys
    xs = sorted(values)
    ys = [(i + 1) / n for i in range(n)]
    return xs, ys


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of values ≤ x."""
    n = len(values)
    if n == 0:
        return 0.0
    if _np is not None and n >= _BATCH_MIN:
        return int(_np.count_nonzero(_np.asarray(values, dtype=float) <= x)) / n
    return sum(1 for v in values if v <= x) / n


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / median / p90 / min / max in one dict."""
    if not len(values):
        return {"count": 0, "mean": 0.0, "std": 0.0, "median": 0.0,
                "p90": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": mean(values),
        "std": stdev(values),
        "median": median(values),
        "p90": percentile(values, 90),
        "min": min(values),
        "max": max(values),
    }
