"""Small statistics helpers (no numpy dependency at the core)."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Return (xs, ys) of the empirical CDF, ys in (0, 1]."""
    if not values:
        return [], []
    xs = sorted(values)
    n = len(xs)
    ys = [(i + 1) / n for i in range(n)]
    return xs, ys


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction of values ≤ x."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= x) / len(values)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / median / p90 / min / max in one dict."""
    if not values:
        return {"count": 0, "mean": 0.0, "std": 0.0, "median": 0.0,
                "p90": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": mean(values),
        "std": stdev(values),
        "median": median(values),
        "p90": percentile(values, 90),
        "min": min(values),
        "max": max(values),
    }
