"""Analytical framework (Sec. 2.1 of the paper).

- :mod:`repro.model.join_model` — the closed-form join-success
  probability, Eqs. 1–7.
- :mod:`repro.model.join_simulation` — the Monte-Carlo simulation used
  to corroborate the derivation (Fig. 2).
- :mod:`repro.model.throughput_opt` — the throughput-maximisation
  framework, Eqs. 8–10, and the *dividing speed* (Fig. 4).
"""

from repro.model.join_model import (
    JoinModelParams,
    expected_join_time,
    expected_join_time_unbounded,
    join_success_probability,
    requests_per_round,
)
from repro.model.join_simulation import JoinSimulationResult, simulate_join_probability
from repro.model.throughput_opt import (
    ChannelScenario,
    OptimalSchedule,
    dividing_speed,
    optimize_two_channels,
)

__all__ = [
    "ChannelScenario",
    "JoinModelParams",
    "JoinSimulationResult",
    "OptimalSchedule",
    "dividing_speed",
    "expected_join_time",
    "expected_join_time_unbounded",
    "join_success_probability",
    "optimize_two_channels",
    "requests_per_round",
    "simulate_join_probability",
]
