"""Analytical join model (Sec. 2.1.1, Eqs. 1–7).

A mobile node round-robins a scheduling period ``D`` across channels,
spending a fraction ``f_i`` on channel *i* and paying a switching delay
``w``. While on the channel it sends join requests every ``c`` seconds;
the AP's response time is uniform on ``[βmin, βmax]``; each message
survives with probability ``1 − h``. A request sent in segment ``k`` of
round ``m`` succeeds iff the response lands inside the on-channel
window of some later round ``n`` (Fig. 1 / Eq. 3):

    (n − m)·D + c − w  ≤  k·c + β  ≤  (n − m + f_i)·D + c − w

Eq. 5 turns that into an overlap probability ``q(m, n, k)``; Eq. 6
aggregates over a round's requests with message loss; Eq. 7 gives the
probability of at least one successful join within ``t`` seconds.

A key structural fact used here: ``q`` depends on rounds only through
the difference ``d = n − m``, so the double product of Eq. 7 collapses
to ``1 − Π_d Q(d)^(S−d)`` with ``S = ⌈t/D⌉`` rounds — O(S·K) instead of
O(S²·K).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class JoinModelParams:
    """Model inputs with the paper's default values (Fig. 2 caption)."""

    period: float = 0.5  # D: scheduling period (s)
    switch_delay: float = 0.007  # w: channel-switching delay (s)
    request_spacing: float = 0.1  # c: time between join requests (s)
    beta_min: float = 0.5  # fastest AP response (s)
    beta_max: float = 5.0  # slowest AP response (s)
    loss_rate: float = 0.1  # h: per-message loss probability

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.request_spacing <= 0:
            raise ValueError("request spacing must be positive")
        if not 0 <= self.loss_rate < 1:
            raise ValueError("loss rate must be in [0, 1)")
        if self.beta_max < self.beta_min:
            raise ValueError("beta_max must be >= beta_min")
        if self.switch_delay < 0:
            raise ValueError("switch delay cannot be negative")


def requests_per_round(params: JoinModelParams, fraction: float) -> int:
    """Number of join requests per round: ⌈D·f_i / c⌉.

    The paper's prose uses ⌈D·f_i/c⌉ while the rendering of Eq. 6 shows
    ⌊(D·f_i − w)/c⌋. The ceiling form is the one consistent with
    Fig. 2: it yields a nonzero success probability at f_i = 0.1 and
    produces the discontinuities the paper points out at
    f_i ∈ {0.2, 0.4, 0.6, 0.8} (where 5·f_i crosses an integer for
    D = 500 ms, c = 100 ms), so we follow it.
    """
    if fraction <= 0:
        return 0
    return int(math.ceil(params.period * fraction / params.request_spacing))


def q_single_request(
    params: JoinModelParams, fraction: float, round_gap: int, k: int
) -> float:
    """Eq. 5 — probability a request in segment ``k`` is answered inside
    the on-channel window ``round_gap = n − m`` rounds later."""
    alpha_min = k * params.request_spacing + params.beta_min
    alpha_max = k * params.request_spacing + params.beta_max
    delta_min = round_gap * params.period + params.request_spacing - params.switch_delay
    delta_max = (
        (round_gap + fraction) * params.period
        + params.request_spacing
        - params.switch_delay
    )
    if delta_min > alpha_max or delta_max < alpha_min:
        return 0.0
    if alpha_max == alpha_min:
        # Degenerate β distribution: response time is deterministic.
        return 1.0 if delta_min <= alpha_min <= delta_max else 0.0
    overlap = min(alpha_max, delta_max) - max(alpha_min, delta_min)
    return max(0.0, overlap) / (alpha_max - alpha_min)


def q_round_failure(params: JoinModelParams, fraction: float, round_gap: int) -> float:
    """Eq. 6 — probability that *no* request of a round succeeds via the
    window ``round_gap`` rounds later, on a channel with loss ``h``."""
    survive = (1.0 - params.loss_rate) ** 2
    failure = 1.0
    for k in range(1, requests_per_round(params, fraction) + 1):
        failure *= 1.0 - q_single_request(params, fraction, round_gap, k) * survive
    return failure


def join_success_probability(
    params: JoinModelParams, fraction: float, in_range_time: float
) -> float:
    """Eq. 7 — probability of at least one successful join within
    ``in_range_time`` seconds, spending ``fraction`` of time on channel."""
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    if in_range_time <= 0 or fraction == 0:
        return 0.0
    rounds = int(math.ceil(in_range_time / params.period))
    all_fail = 1.0
    for gap in range(rounds):
        q_gap = q_round_failure(params, fraction, gap)
        if q_gap >= 1.0:
            continue
        all_fail *= q_gap ** (rounds - gap)
        if all_fail < 1e-15:
            return 1.0
    return 1.0 - all_fail


def join_probability_by_round(
    params: JoinModelParams, fraction: float, total_rounds: int
) -> List[float]:
    """``p(f_i, m·D)`` for m = 1..total_rounds (cumulative CDF over rounds)."""
    return [
        join_success_probability(params, fraction, m * params.period)
        for m in range(1, total_rounds + 1)
    ]


def expected_join_time_unbounded(
    params: JoinModelParams,
    fraction: float,
    tolerance: float = 1e-9,
    max_rounds: int = 200_000,
) -> float:
    """Unconditional expected time to join, over an unbounded horizon.

    Used by the optimiser's Eq. 9: when the expectation exceeds the
    encounter time T the channel cannot pay for itself and the cap goes
    negative, forcing f_i = 0 — the mechanism behind the dividing
    speed. Returns ``math.inf`` when a join can never complete (e.g.
    the on-channel window is too short to fit a single request).

    Uses the collapsed form P_M = 1 − exp(L_M) with
    L_{M+1} − L_M = Σ_{d ≤ M} ln Q(d), so the sweep over rounds is
    linear.
    """
    requests = requests_per_round(params, fraction)
    if requests == 0:
        return math.inf
    max_gap = int(
        math.ceil(
            (requests * params.request_spacing + params.beta_max) / params.period
        )
    ) + 1
    log_q = []
    for gap in range(max_gap + 1):
        q_gap = q_round_failure(params, fraction, gap)
        if q_gap <= 0.0:
            log_q.append(-math.inf)
        else:
            log_q.append(math.log(q_gap))
    if all(value == 0.0 for value in log_q):
        return math.inf  # every window misses: join never succeeds

    expected = 0.0
    previous_p = 0.0
    log_all_fail = 0.0
    prefix = 0.0
    for m in range(1, max_rounds + 1):
        gap_limit = min(m - 1, max_gap)
        if gap_limit == m - 1:
            prefix += log_q[gap_limit]
        log_all_fail += prefix
        probability = 1.0 - math.exp(log_all_fail) if log_all_fail > -700 else 1.0
        expected += (probability - previous_p) * m * params.period
        previous_p = probability
        if 1.0 - probability < tolerance:
            return expected
    # Did not converge: the per-period hazard is vanishingly small.
    return math.inf


def expected_join_time(
    params: JoinModelParams, fraction: float, in_range_time: float
) -> float:
    """g_T(f_i): expected time to obtain a lease, truncated at T.

    Computed as E[min(T_join, T)] from the round-level CDF: a node that
    never joins within T contributes T, so ``1 − g_T(f)/T`` is the
    fraction of the encounter left for useful transfer (Eq. 9's form).
    """
    if in_range_time <= 0:
        return 0.0
    rounds = max(1, int(math.ceil(in_range_time / params.period)))
    cdf = join_probability_by_round(params, fraction, rounds)
    expected = 0.0
    previous = 0.0
    for m, probability in enumerate(cdf, start=1):
        join_at = min(m * params.period, in_range_time)
        expected += (probability - previous) * join_at
        previous = probability
    expected += (1.0 - previous) * in_range_time
    return expected
