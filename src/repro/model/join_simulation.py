"""Monte-Carlo corroboration of the join model (Fig. 2).

Simulates the *same* simplified scenario the closed form describes —
one request per segment, uniform response times, independent message
losses, success iff the response lands in an on-channel window — and
estimates the join probability empirically. The paper runs 100 runs of
100 trials each and plots mean ± one standard deviation across runs;
so do we.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.model.join_model import JoinModelParams, requests_per_round


@dataclass
class JoinSimulationResult:
    """Mean and standard deviation of per-run success frequencies."""

    mean: float
    std: float
    runs: int
    trials_per_run: int


def _trial_succeeds(
    params: JoinModelParams,
    fraction: float,
    total_rounds: int,
    rng: random.Random,
) -> bool:
    """One trial: does any request over the encounter get a timely answer?"""
    survive = (1.0 - params.loss_rate) ** 2
    requests = requests_per_round(params, fraction)
    window = fraction * params.period
    for m in range(1, total_rounds + 1):
        for k in range(1, requests + 1):
            if rng.random() >= survive:
                continue  # request or response lost
            beta = rng.uniform(params.beta_min, params.beta_max)
            # Arrival offset from the start of round m (Eq. 3's LHS).
            tau = params.switch_delay + (k - 1) * params.request_spacing + beta
            gap = int(tau // params.period)
            if m + gap > total_rounds:
                continue  # response would arrive after the encounter
            if tau - gap * params.period <= window:
                return True
    return False


def simulate_join_probability(
    params: JoinModelParams,
    fraction: float,
    in_range_time: float,
    runs: int = 100,
    trials_per_run: int = 100,
    seed: int = 0,
) -> JoinSimulationResult:
    """Estimate p(f_i, t) by Monte-Carlo (means across ``runs`` runs)."""
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    total_rounds = int(math.ceil(in_range_time / params.period))
    frequencies: List[float] = []
    for run in range(runs):
        rng = random.Random(seed * 1_000_003 + run)
        successes = sum(
            _trial_succeeds(params, fraction, total_rounds, rng)
            for _ in range(trials_per_run)
        )
        frequencies.append(successes / trials_per_run)
    mean = sum(frequencies) / runs
    variance = sum((f - mean) ** 2 for f in frequencies) / runs
    return JoinSimulationResult(
        mean=mean, std=math.sqrt(variance), runs=runs, trials_per_run=trials_per_run
    )
