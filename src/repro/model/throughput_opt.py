"""Throughput-maximisation framework (Sec. 2.1.3, Eqs. 8–10).

The node is in range of APs for ``T`` seconds and must pick the
fraction ``f_i`` of each scheduling period to spend on each channel:

    maximise   T · Σ_i f_i · Bw                              (Eq. 8)
    subject to f_i ≤ (B_j^i + (1 − g_T(f_i)/T) · B_a^i) / Bw (Eq. 9)
               Σ_i (f_i · D + ⌈f_i⌉ · w) ≤ D                 (Eq. 10)

``B_j^i`` is end-to-end bandwidth from APs already joined on channel
*i*; ``B_a^i`` from APs still being joined, discounted by the expected
join time ``g_T`` (from the join model). The ceiling term charges one
switching delay per *used* channel.

The feasible set is non-convex (g_T is a nasty staircase of the ceiling
function), so the two-channel solver does an exact fine-grid search —
robust, and the paper's Fig. 4 is itself a numeric solution. The
*dividing speed* is the slowest speed at which the optimal schedule
stops using the second channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.join_model import JoinModelParams, expected_join_time_unbounded


@dataclass(frozen=True)
class ChannelScenario:
    """One channel's offered bandwidth split (fractions of Bw).

    ``joined_fraction`` — offered by already-joined APs (B_j / Bw).
    ``available_fraction`` — offered by APs still to join (B_a / Bw).
    """

    joined_fraction: float = 0.0
    available_fraction: float = 0.0


@dataclass
class OptimalSchedule:
    """Solver output for one speed."""

    fractions: Tuple[float, ...]
    per_channel_bps: Tuple[float, ...]
    total_bps: float
    speed: float
    in_range_time: float


def _channel_cap(
    scenario: ChannelScenario,
    fraction: float,
    params: JoinModelParams,
    in_range_time: float,
    join_time_cache: Dict[float, float],
) -> float:
    """RHS of Eq. 9, in units of Bw (i.e. max feasible f_i).

    The join discount ``1 − g_T(f)/T`` may be negative (expected join
    time exceeding the encounter), which makes the channel infeasible
    at any positive fraction — the dividing-speed mechanism.
    """
    if scenario.available_fraction == 0.0:
        return scenario.joined_fraction
    cached = join_time_cache.get(fraction)
    if cached is None:
        cached = expected_join_time_unbounded(params, fraction)
        join_time_cache[fraction] = cached
    if math.isinf(cached):
        return scenario.joined_fraction
    join_discount = 1.0 - cached / in_range_time
    return scenario.joined_fraction + join_discount * scenario.available_fraction


def optimize_two_channels(
    scenario_one: ChannelScenario,
    scenario_two: ChannelScenario,
    speed: float,
    wireless_bw_bps: float = 11e6,
    wifi_range_m: float = 100.0,
    usable_range_fraction: float = 0.7,
    params: Optional[JoinModelParams] = None,
    grid_step: float = 0.01,
) -> OptimalSchedule:
    """Solve Eqs. 8–10 for two channels at one node speed.

    ``T`` is the in-range time of an encounter. The effective in-range
    *distance* is the usable low-loss core of the coverage disk
    (``usable_range_fraction × range``; the propagation model's fringe
    beyond ~0.7·R is too lossy for joins to progress), not the 2R
    diameter: vehicles pass APs at a lateral offset and join messages
    get no ARQ in the model. This calibration reproduces the paper's
    dividing speeds (< 10 m/s for most scenarios).
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    params = params or JoinModelParams()
    in_range_time = usable_range_fraction * wifi_range_m / speed
    switch_cost = params.switch_delay / params.period

    caches: List[Dict[float, float]] = [{}, {}]
    scenarios = (scenario_one, scenario_two)

    best = (-1.0, (0.0, 0.0))
    steps = int(round(1.0 / grid_step))
    for step_one in range(steps + 1):
        f1 = step_one * grid_step
        cap1 = _channel_cap(scenarios[0], f1, params, in_range_time, caches[0])
        if f1 > cap1 + 1e-12:
            continue
        # Budget left for channel 2 after Eq. 10's switch charges.
        used = f1 + (switch_cost if f1 > 0 else 0.0)
        for step_two in range(steps + 1):
            f2 = step_two * grid_step
            total_used = used + f2 + (switch_cost if f2 > 0 else 0.0)
            if total_used > 1.0 + 1e-12:
                break
            cap2 = _channel_cap(scenarios[1], f2, params, in_range_time, caches[1])
            if f2 > cap2 + 1e-12:
                continue
            objective = f1 + f2
            if objective > best[0] + 1e-12:
                best = (objective, (f1, f2))

    f1, f2 = best[1]
    per_channel = (f1 * wireless_bw_bps, f2 * wireless_bw_bps)
    return OptimalSchedule(
        fractions=(f1, f2),
        per_channel_bps=per_channel,
        total_bps=sum(per_channel),
        speed=speed,
        in_range_time=in_range_time,
    )


def sweep_speeds(
    scenario_one: ChannelScenario,
    scenario_two: ChannelScenario,
    speeds: Sequence[float],
    **kwargs,
) -> List[OptimalSchedule]:
    """Fig. 4: the optimal schedule across a speed sweep."""
    return [
        optimize_two_channels(scenario_one, scenario_two, speed, **kwargs)
        for speed in speeds
    ]


def dividing_speed(
    scenario_one: ChannelScenario,
    scenario_two: ChannelScenario,
    speeds: Optional[Sequence[float]] = None,
    minor_channel: int = 1,
    threshold_fraction: float = 0.02,
    **kwargs,
) -> Optional[float]:
    """The slowest speed at which the schedule abandons the join channel.

    Returns None if the second channel stays in use across the sweep.
    ``minor_channel`` selects which channel must drop to ~zero (index
    into the fraction tuple); by convention it is the channel that
    requires joining.
    """
    if speeds is None:
        speeds = [2.5, 3.3, 5.0, 6.6, 10.0, 20.0]
    for schedule in sweep_speeds(scenario_one, scenario_two, sorted(speeds), **kwargs):
        if schedule.fractions[minor_channel] <= threshold_fraction:
            return schedule.speed
    return None
