"""Network substrate: DHCP, packet-level TCP, backhaul shaping, routing.

These are the layers above the MAC whose timers interact with channel
scheduling: DHCP's per-message retransmit / attempt-window / idle
timers (the paper's central overhead) and TCP's RTO (the reason
off-channel absence strangles throughput, Figs. 7–8).
"""

from repro.net.backhaul import ApRouter, WiredBackhaul
from repro.net.dhcp import (
    DhcpClient,
    DhcpClientConfig,
    DhcpMessage,
    DhcpMessageType,
    DhcpServer,
    DhcpServerConfig,
    Lease,
)
from repro.net.shaper import TokenBucketShaper
from repro.net.tcp import TcpConfig, TcpReceiver, TcpSegment, TcpSender
from repro.net.traffic import BulkDownload
from repro.net.udp import UdpDatagram, VoipQuality, VoipStream, estimate_mos

__all__ = [
    "ApRouter",
    "BulkDownload",
    "DhcpClient",
    "DhcpClientConfig",
    "DhcpMessage",
    "DhcpMessageType",
    "DhcpServer",
    "DhcpServerConfig",
    "Lease",
    "TcpConfig",
    "TcpReceiver",
    "TcpSegment",
    "TcpSender",
    "TokenBucketShaper",
    "UdpDatagram",
    "VoipQuality",
    "VoipStream",
    "WiredBackhaul",
    "estimate_mos",
]
