"""AP-side routing glue: wired backhaul + payload demux.

``ApRouter`` is the network stack of one AP: it demultiplexes uplink
payloads (DHCP messages to the local daemon, TCP ACKs across the
backhaul to the content server) and carries downlink traffic from the
wired side through the backhaul shaper onto the air (or into a PSM
buffer, which the AP decides).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.mac.ap import AccessPoint
from repro.net.dhcp import DhcpMessage, DhcpServer
from repro.net.shaper import TokenBucketShaper
from repro.net.tcp import TcpSegment
from repro.sim.engine import Simulator


class WiredBackhaul:
    """One AP's wired path: a shaper plus fixed propagation latency."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        latency_s: float = 0.025,
        queue_limit_bytes: int = 100_000,
    ):
        self.sim = sim
        self.latency_s = latency_s
        self.shaper = TokenBucketShaper(sim, rate_bps, queue_limit_bytes)

    def down(self, size_bytes: int, deliver: Callable[[], None]) -> None:
        """Wired → AP: latency, then serialisation through the shaper."""
        self.sim.schedule(self.latency_s, self._enqueue, size_bytes, deliver)

    def _enqueue(self, size_bytes: int, deliver: Callable[[], None]) -> None:
        self.shaper.enqueue(size_bytes, deliver)

    def up(self, deliver: Callable[[], None]) -> None:
        """AP → wired: ACK-sized traffic, latency only."""
        self.sim.schedule(self.latency_s, deliver)


class ApRouter:
    """Demux/forwarding for one AP."""

    def __init__(
        self,
        sim: Simulator,
        ap: AccessPoint,
        backhaul: WiredBackhaul,
        dhcp_server: Optional[DhcpServer] = None,
    ):
        self.sim = sim
        self.ap = ap
        self.backhaul = backhaul
        self.dhcp_server = dhcp_server
        if dhcp_server is not None:
            dhcp_server.send = self._send_dhcp_reply
        ap.on_uplink = self._on_uplink
        self._ack_sinks: Dict[int, Callable[[TcpSegment], None]] = {}

    def register_flow(self, flow_id: int, ack_sink: Callable[[TcpSegment], None]) -> None:
        """Register the wired-side sender's ACK entry point."""
        self._ack_sinks[flow_id] = ack_sink

    def unregister_flow(self, flow_id: int) -> None:
        self._ack_sinks.pop(flow_id, None)

    # -- uplink (client → wired) ------------------------------------------

    def _on_uplink(self, client: str, payload: object) -> None:
        if isinstance(payload, DhcpMessage):
            if self.dhcp_server is not None:
                self.dhcp_server.handle(client, payload)
        elif isinstance(payload, TcpSegment):
            sink = self._ack_sinks.get(payload.flow_id)
            if sink is not None:
                self.backhaul.up(lambda p=payload, s=sink: s(p))

    # -- downlink (wired → client) -------------------------------------------

    def _send_dhcp_reply(self, client: str, message: DhcpMessage) -> None:
        # Join traffic bypasses PSM buffering (the paper's premise): a
        # reply sent while the client is on another channel is lost.
        self.ap.send_unbuffered(client, message, message.size_bytes)

    def send_down(self, client: str, segment: TcpSegment) -> None:
        """Carry a server segment across the backhaul onto the air."""
        self.backhaul.down(
            segment.size_bytes,
            lambda c=client, s=segment: self.ap.send_to_client(c, s, s.size_bytes),
        )
