"""DHCP client and server.

The paper's key observation is that the DHCP exchange — not the channel
switch — dominates the cost of joining an AP from a moving vehicle:
the response time is controlled by the AP, cannot be PSM-buffered
before an address exists, and stock clients use long timers (a 3 s
attempt window, 60 s idle backoff on failure, ~1 s per-message
retransmit). All three timers are first-class configuration here, as is
the server-side response delay ``β ~ U[βmin, βmax]`` from the
analytical model.

The exchange is the standard four messages: DISCOVER → OFFER →
REQUEST → ACK. Messages ride as data-frame payloads through the AP.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs import trace as tr
from repro.sim.engine import Simulator
from repro.sim.timers import Timer

#: On-the-wire size of a DHCP message (bytes, typical BOOTP frame).
DHCP_MESSAGE_BYTES = 300

_xid_counter = itertools.count(1)


class DhcpMessageType(enum.Enum):
    DISCOVER = "discover"
    OFFER = "offer"
    REQUEST = "request"
    ACK = "ack"
    NAK = "nak"


@dataclass(frozen=True)
class DhcpMessage:
    """One DHCP message (payload of a data frame)."""

    type: DhcpMessageType
    xid: int
    client: str
    server: str
    ip: Optional[str] = None

    @property
    def size_bytes(self) -> int:
        return DHCP_MESSAGE_BYTES


@dataclass
class Lease:
    """A bound DHCP lease."""

    ip: str
    server: str
    obtained_at: float
    duration: float = 3600.0

    def expired(self, now: float) -> bool:
        return now > self.obtained_at + self.duration


@dataclass
class DhcpServerConfig:
    """AP-side responsiveness: per-message processing delay bounds.

    The analytical model's β bounds the *whole* request→response time;
    the server splits it over its two responses (OFFER and ACK), so
    each message is delayed by U[βmin/2, βmax/2].
    """

    beta_min: float = 0.5
    beta_max: float = 5.0
    pool_size: int = 250


class DhcpServer:
    """The DHCP daemon behind one AP.

    ``send`` is injected by the AP router: ``send(client, message)``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: Optional[DhcpServerConfig] = None,
        rng=None,
        send: Optional[Callable[[str, DhcpMessage], None]] = None,
    ):
        self.sim = sim
        self.name = name
        self.config = config or DhcpServerConfig()
        self._rng = rng
        self.send = send
        self._leases: Dict[str, str] = {}  # client -> ip
        self._next_host = itertools.count(2)
        self.offers_made = 0
        self.acks_sent = 0

    def _response_delay(self) -> float:
        low = self.config.beta_min / 2.0
        high = self.config.beta_max / 2.0
        if self._rng is None:
            return (low + high) / 2.0
        return self._rng.uniform(low, high)

    def _allocate(self, client: str) -> Optional[str]:
        ip = self._leases.get(client)
        if ip is not None:
            return ip
        if len(self._leases) >= self.config.pool_size:
            return None
        ip = f"10.0.{hash(self.name) % 255}.{next(self._next_host)}"
        self._leases[client] = ip
        return ip

    def handle(self, client: str, message: DhcpMessage) -> None:
        """Process one uplink DHCP message from ``client``."""
        if message.type == DhcpMessageType.DISCOVER:
            ip = self._allocate(client)
            if ip is None:
                return  # pool exhausted: silence, client times out
            self.offers_made += 1
            reply = DhcpMessage(DhcpMessageType.OFFER, message.xid, client, self.name, ip)
        elif message.type == DhcpMessageType.REQUEST:
            ip = self._leases.get(client)
            if ip is None or (message.ip is not None and message.ip != ip):
                reply = DhcpMessage(DhcpMessageType.NAK, message.xid, client, self.name)
            else:
                self.acks_sent += 1
                reply = DhcpMessage(DhcpMessageType.ACK, message.xid, client, self.name, ip)
        else:
            return
        self.sim.schedule(self._response_delay(), self._send_reply, client, reply)

    def _send_reply(self, client: str, reply: DhcpMessage) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.DHCP_SERVER_TX, self.sim.now, server=self.name, client=client,
                type=reply.type.value,
            )
        if self.send is not None:
            self.send(client, reply)


class DhcpClientState(enum.Enum):
    INIT = "init"
    SELECTING = "selecting"  # DISCOVER sent, awaiting OFFER
    REQUESTING = "requesting"  # REQUEST sent, awaiting ACK
    BOUND = "bound"
    FAILED = "failed"
    IDLE_BACKOFF = "idle-backoff"


@dataclass
class DhcpClientConfig:
    """Client-side timers (the paper's knobs).

    - ``retry_timeout``: per-message retransmit timer ("dhcp timeout";
      1 s stock, 100–600 ms in the reduced-timeout experiments).
    - ``attempt_window``: total time to try for a lease (stock 3 s).
    - ``idle_backoff``: sleep after a failed attempt (stock 60 s).
    - ``restart_immediately``: Spider's policy — a mobile client cannot
      afford the stock idle backoff, so a failed window restarts at
      once (each failure still counts toward the failure-rate tables).
    """

    retry_timeout: float = 1.0
    attempt_window: float = 3.0
    idle_backoff: float = 60.0
    restart_immediately: bool = False


class DhcpClient:
    """One interface's DHCP client.

    ``transmit`` is injected by the owning driver and is expected to
    queue-or-send the message toward the AP; it returns True if the
    message could be handed to the radio *now* (i.e. the card was on
    the AP's channel), which is how off-channel time stretches the
    exchange.
    """

    def __init__(
        self,
        sim: Simulator,
        client_name: str,
        server_name: str,
        config: Optional[DhcpClientConfig] = None,
        transmit: Optional[Callable[[DhcpMessage], bool]] = None,
        on_bound: Optional[Callable[["DhcpClient", Lease], None]] = None,
        on_failed: Optional[Callable[["DhcpClient"], None]] = None,
    ):
        self.sim = sim
        self.client_name = client_name
        self.server_name = server_name
        self.config = config or DhcpClientConfig()
        self.transmit = transmit
        self.on_bound = on_bound
        self.on_failed = on_failed
        self.state = DhcpClientState.INIT
        self.lease: Optional[Lease] = None
        self.xid = next(_xid_counter)
        self.started_at: Optional[float] = None
        self.bound_at: Optional[float] = None
        self.attempts = 0
        #: Cumulative message-level accounting (Table 3's metric):
        #: transmissions actually handed to the radio, and how many of
        #: them went unanswered within the retry timer.
        self.total_transmissions = 0
        self.message_timeouts = 0
        self._awaiting_reply = False
        self._last_tx_at: Optional[float] = None
        self._offered_ip: Optional[str] = None
        self._retry_timer = Timer(sim, self._on_retry_timeout)
        self._window_timer = Timer(sim, self._on_window_expired)

    @property
    def bound(self) -> bool:
        return self.state == DhcpClientState.BOUND

    @property
    def acquisition_time(self) -> Optional[float]:
        if self.bound_at is None or self.started_at is None:
            return None
        return self.bound_at - self.started_at

    # -- control -------------------------------------------------------

    def start(self) -> None:
        """Kick off (or restart) lease acquisition."""
        if self.state in (DhcpClientState.BOUND,):
            return
        self.state = DhcpClientState.SELECTING
        self.started_at = self.sim.now
        self.xid = next(_xid_counter)
        self._offered_ip = None
        self.attempts = 0
        self._window_timer.start(self.config.attempt_window)
        self._send_current()

    def bind_cached(self, lease: Lease) -> None:
        """Adopt a cached lease without an exchange (Spider optimisation)."""
        self.lease = lease
        self.state = DhcpClientState.BOUND
        self.started_at = self.sim.now
        self.bound_at = self.sim.now
        self._cancel_timers()
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.DHCP_BIND, self.sim.now, client=self.client_name,
                server=self.server_name, ip=lease.ip, took=0.0, xid=self.xid, cached=True,
            )
        if self.on_bound is not None:
            self.on_bound(self, lease)

    def nudge(self) -> None:
        """Resend the pending message right now (if any).

        Spider calls this at dwell start: the card just arrived on the
        AP's channel, so waiting out the rest of the retry timer would
        waste scarce on-channel time.
        """
        if self.state in (DhcpClientState.SELECTING, DhcpClientState.REQUESTING):
            self._send_current()

    def abort(self) -> None:
        """Stop without reporting (driver abandoned the AP)."""
        self._cancel_timers()
        if self.state != DhcpClientState.BOUND:
            self.state = DhcpClientState.INIT

    def _cancel_timers(self) -> None:
        self._retry_timer.cancel()
        self._window_timer.cancel()

    # -- sending -------------------------------------------------------

    def _current_message(self) -> Optional[DhcpMessage]:
        if self.state == DhcpClientState.SELECTING:
            return DhcpMessage(
                DhcpMessageType.DISCOVER, self.xid, self.client_name, self.server_name
            )
        if self.state == DhcpClientState.REQUESTING:
            return DhcpMessage(
                DhcpMessageType.REQUEST,
                self.xid,
                self.client_name,
                self.server_name,
                self._offered_ip,
            )
        return None

    def _send_current(self) -> None:
        message = self._current_message()
        if message is None:
            return
        if self.transmit is not None:
            sent_now = self.transmit(message)
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    tr.DHCP_SEND if sent_now else tr.DHCP_BLOCKED,
                    self.sim.now,
                    client=self.client_name,
                    server=self.server_name,
                    type=message.type.value,
                    xid=self.xid,
                    attempt=self.attempts + 1 if sent_now else self.attempts,
                )
            if sent_now:
                # Retransmitting over an *overdue* outstanding request
                # means that request officially timed out (Table 3's
                # metric). A nudge arriving before the timer expires is
                # not a timeout — the reply may legitimately be in
                # flight.
                overdue = (
                    self._awaiting_reply
                    and self._last_tx_at is not None
                    and self.sim.now - self._last_tx_at
                    >= self.config.retry_timeout * 0.999
                )
                if overdue:
                    self.message_timeouts += 1
                self.attempts += 1
                self.total_transmissions += 1
                # The "outstanding since" clock only restarts when the
                # previous request was answered or declared timed out —
                # an early nudge must not keep resetting it.
                if not self._awaiting_reply or overdue:
                    self._last_tx_at = self.sim.now
                self._awaiting_reply = True
        self._retry_timer.start(self.config.retry_timeout)

    def _on_retry_timeout(self) -> None:
        if self.state in (DhcpClientState.SELECTING, DhcpClientState.REQUESTING):
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    tr.DHCP_TIMEOUT, self.sim.now, client=self.client_name,
                    server=self.server_name, state=self.state.value, xid=self.xid,
                )
            self._send_current()

    def _on_window_expired(self) -> None:
        if self.state in (DhcpClientState.SELECTING, DhcpClientState.REQUESTING):
            self._fail()

    def _fail(self) -> None:
        self._cancel_timers()
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.DHCP_FAIL, self.sim.now, client=self.client_name,
                server=self.server_name, xid=self.xid, attempts=self.attempts,
            )
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("dhcp.failures_total").inc()
        self.state = DhcpClientState.FAILED
        if self.on_failed is not None:
            self.on_failed(self)
        if self.state != DhcpClientState.FAILED:
            return  # the failure handler tore us down or restarted us
        if self.config.restart_immediately:
            self.state = DhcpClientState.INIT
            self.start()
            return
        # Stock behaviour: go idle, then try again from scratch.
        self.state = DhcpClientState.IDLE_BACKOFF
        self.sim.schedule(self.config.idle_backoff, self._retry_after_backoff)

    def _retry_after_backoff(self) -> None:
        if self.state == DhcpClientState.IDLE_BACKOFF:
            self.state = DhcpClientState.INIT
            self.start()

    # -- receiving -------------------------------------------------------

    def handle(self, message: DhcpMessage) -> None:
        """Feed a downlink DHCP message (driver dispatches by server)."""
        if message.client != self.client_name or message.xid != self.xid:
            return
        if message.type == DhcpMessageType.OFFER and self.state == DhcpClientState.SELECTING:
            self._awaiting_reply = False
            self._offered_ip = message.ip
            self.state = DhcpClientState.REQUESTING
            self._send_current()
        elif message.type == DhcpMessageType.ACK and self.state == DhcpClientState.REQUESTING:
            self._awaiting_reply = False
            self._cancel_timers()
            self.state = DhcpClientState.BOUND
            self.bound_at = self.sim.now
            self.lease = Lease(
                ip=message.ip or "0.0.0.0",
                server=self.server_name,
                obtained_at=self.sim.now,
            )
            trace = self.sim.trace
            if trace is not None:
                took = self.sim.now - self.started_at if self.started_at is not None else 0.0
                trace.emit(
                    tr.DHCP_BIND, self.sim.now, client=self.client_name,
                    server=self.server_name, ip=self.lease.ip, took=took,
                    xid=self.xid, cached=False,
                )
            if self.on_bound is not None:
                self.on_bound(self, self.lease)
        elif message.type == DhcpMessageType.NAK:
            self._fail()
