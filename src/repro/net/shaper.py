"""Token-bucket backhaul shaper.

Each AP's wired uplink is slower than the 11 Mbps air — the premise
that makes multi-AP aggregation pay off ("backhaul bandwidth is
typically smaller than the wireless bandwidth", Sec. 2). In the lab
micro-benchmark (Fig. 9) the authors used a traffic shaper to sweep the
backhaul rate; this is that shaper.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator


class TokenBucketShaper:
    """A FIFO rate limiter with a bounded queue (tail drop).

    ``enqueue(size_bytes, deliver)`` schedules ``deliver()`` after the
    packet has been serialised at ``rate_bps`` behind everything
    already queued. Packets arriving to a full queue are dropped —
    which is how backhaul congestion turns into TCP loss.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        queue_limit_bytes: int = 100_000,
    ):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.queue_limit_bytes = queue_limit_bytes
        self._queued_bytes = 0
        self._busy_until = 0.0
        self.delivered = 0
        self.dropped = 0

    @property
    def backlog_bytes(self) -> int:
        return self._queued_bytes

    def service_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.rate_bps

    def enqueue(self, size_bytes: int, deliver: Callable[[], None]) -> bool:
        """Queue a packet; returns False if tail-dropped."""
        if self._queued_bytes + size_bytes > self.queue_limit_bytes:
            self.dropped += 1
            return False
        self._queued_bytes += size_bytes
        start = max(self.sim.now, self._busy_until)
        finish = start + self.service_time(size_bytes)
        self._busy_until = finish
        self.sim.schedule(finish - self.sim.now, self._dequeue, size_bytes, deliver)
        return True

    def _dequeue(self, size_bytes: int, deliver: Callable[[], None]) -> None:
        self._queued_bytes -= size_bytes
        self.delivered += 1
        deliver()
