"""Packet-level TCP (Reno-style) model.

Figures 7 and 8 of the paper hinge on the interaction between channel
schedules and TCP's retransmission timeout: an off-channel absence
longer than the RTO collapses the window to one segment and re-enters
slow start. Reproducing that requires a real packet-level loop — cwnd,
ssthresh, RTT estimation (RFC 6298 form), exponential RTO backoff, and
fast retransmit on triple duplicate ACKs — which is what this module
implements. The sender lives on the wired side; the receiver is the
mobile client.

The paper's environment has ~200 ms effective RTTs ("400 ms ... equal
to two typical RTTs") and joins of 2–3 s corresponding to "10–15 TCP
timeouts", i.e. an RTO floor around 200 ms; ``TcpConfig.min_rto``
defaults accordingly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.obs import trace as tr
from repro.sim.engine import Simulator
from repro.sim.timers import Timer

TCP_HEADER_BYTES = 40

_flow_ids = itertools.count(1)


def next_flow_id() -> int:
    return next(_flow_ids)


@dataclass(frozen=True, slots=True)
class TcpSegment:
    """A TCP segment (payload of a data frame or backhaul packet).

    ``ts`` is the sender's transmit timestamp; ``ts_echo`` on an ACK
    echoes the timestamp of the segment that triggered it (the TCP
    timestamps option, RFC 7323) — used for Eifel-style spurious-RTO
    detection.
    """

    flow_id: int
    seq: int  # first payload byte carried (data) / unused (ack)
    length: int  # payload bytes (0 for a pure ack)
    is_ack: bool = False
    ack: int = 0  # cumulative: next byte expected
    ts: float = 0.0
    ts_echo: float = -1.0

    @property
    def size_bytes(self) -> int:
        return TCP_HEADER_BYTES + self.length

    @property
    def end(self) -> int:
        return self.seq + self.length


@dataclass
class TcpConfig:
    """Congestion-control and timer parameters."""

    mss: int = 1400
    init_cwnd_segments: float = 2.0
    init_ssthresh_segments: float = 64.0
    max_cwnd_segments: float = 128.0
    min_rto: float = 0.2
    max_rto: float = 60.0
    initial_rto: float = 1.0
    dupack_threshold: int = 3


class TcpSender:
    """Bulk-data sender: an infinite backlog pushed through Reno.

    ``send`` is injected and carries a segment toward the client;
    ACKs come back via :meth:`on_ack`.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        send: Callable[[TcpSegment], None],
        config: Optional[TcpConfig] = None,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self.config = config or TcpConfig()
        self._send = send
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = self.config.init_cwnd_segments
        self.ssthresh = self.config.init_ssthresh_segments
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0
        self.rto = self.config.initial_rto
        self.dupacks = 0
        self.running = False
        self.timeouts = 0
        self.fast_retransmits = 0
        self.spurious_recoveries = 0
        self.segments_sent = 0
        self._pre_rto_cwnd: Optional[float] = None
        self._pre_rto_ssthresh: Optional[float] = None
        self._rto_fired_at: Optional[float] = None
        self._retransmitted: Set[int] = set()
        self._timed_seq: Optional[int] = None
        self._timed_at: float = 0.0
        self._last_traced_cwnd = self.cwnd
        self._rto_timer = Timer(sim, self._on_rto)

    def _trace_cwnd(self, trace) -> None:
        """Emit ``tcp.cwnd`` when the window moved >= 1 segment.

        Per-ACK emission would dominate a trace; segment-granularity
        keeps slow-start doublings and loss collapses visible while
        bounding volume.
        """
        if abs(self.cwnd - self._last_traced_cwnd) >= 1.0:
            self._last_traced_cwnd = self.cwnd
            trace.emit(
                tr.TCP_CWND, self.sim.now, flow=self.flow_id, cwnd=self.cwnd,
                ssthresh=self.ssthresh,
            )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self.running = True
        self._pump()

    def stop(self) -> None:
        self.running = False
        self._rto_timer.cancel()

    @property
    def in_flight(self) -> int:
        return self.snd_nxt - self.snd_una

    # -- transmit path ---------------------------------------------------

    def _window_bytes(self) -> int:
        return int(self.cwnd * self.config.mss)

    def _pump(self) -> None:
        """Fill the congestion window with new segments."""
        if not self.running:
            return
        while self.in_flight + self.config.mss <= self._window_bytes():
            self._transmit(self.snd_nxt, self.config.mss)
            self.snd_nxt += self.config.mss
        if self.in_flight > 0 and not self._rto_timer.armed:
            self._rto_timer.start(self.rto)

    def _transmit(self, seq: int, length: int) -> None:
        segment = TcpSegment(self.flow_id, seq, length, ts=self.sim.now)
        self.segments_sent += 1
        if self._timed_seq is None and seq not in self._retransmitted:
            self._timed_seq = seq + length
            self._timed_at = self.sim.now
        self._send(segment)

    # -- acks --------------------------------------------------------------

    def on_ack(self, segment: TcpSegment) -> None:
        if not segment.is_ack or not self.running:
            return
        if segment.ack > self.snd_una:
            self._on_new_ack(segment.ack, segment.ts_echo)
        elif segment.ack == self.snd_una and self.in_flight > 0:
            self._on_dupack()

    def _on_new_ack(self, ack: int, ts_echo: float = -1.0) -> None:
        if ts_echo >= 0.0:
            # Timestamp option present (the normal case): sample every
            # ACK, as Linux does. Off-channel absences then inflate
            # srtt/rttvar enough to keep RTO above the absence length,
            # which is exactly the real-stack behaviour Figs. 7/8 rest on.
            self._apply_rtt_sample(self.sim.now - ts_echo)
            self._timed_seq = None
        else:
            self._maybe_sample_rtt(ack)
        advanced = ack - self.snd_una
        if self._pre_rto_cwnd is not None:
            # Eifel spurious-timeout detection (RFC 3522, as real TCP
            # stacks do with the timestamps option): if the ACK echoes
            # a timestamp older than the RTO firing, it acknowledges
            # the *original* transmission — the timeout was spurious
            # (e.g. an off-channel absence, not loss). Restore the
            # pre-timeout window instead of slow-starting from 1.
            fired_at = self._rto_fired_at if self._rto_fired_at is not None else 0.0
            if 0.0 <= ts_echo < fired_at:
                self.cwnd = self._pre_rto_cwnd
                self.ssthresh = self._pre_rto_ssthresh or self.ssthresh
                self.spurious_recoveries += 1
                trace = self.sim.trace
                if trace is not None:
                    trace.emit(
                        tr.TCP_SPURIOUS_RECOVERY, self.sim.now, flow=self.flow_id,
                        cwnd=self.cwnd,
                    )
            self._pre_rto_cwnd = None
            self._pre_rto_ssthresh = None
            self._rto_fired_at = None
        acked_segments = max(1, advanced // self.config.mss)
        self.snd_una = ack
        self.dupacks = 0
        self._retransmitted = {seq for seq in self._retransmitted if seq >= ack}
        for _ in range(acked_segments):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, self.config.max_cwnd_segments)
        trace = self.sim.trace
        if trace is not None:
            self._trace_cwnd(trace)
        if self.in_flight <= 0:
            self._rto_timer.cancel()
        else:
            self._rto_timer.start(self.rto)
        self._pump()

    def _maybe_sample_rtt(self, ack: int) -> None:
        if self._timed_seq is None or ack < self._timed_seq:
            return
        sample = self.sim.now - self._timed_at
        self._timed_seq = None
        self._apply_rtt_sample(sample)

    def _apply_rtt_sample(self, sample: float) -> None:
        if sample < 0:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = self.srtt + max(4.0 * self.rttvar, 0.010)
        self.rto = min(max(self.rto, self.config.min_rto), self.config.max_rto)

    def _on_dupack(self) -> None:
        self.dupacks += 1
        if self.dupacks != self.config.dupack_threshold:
            return
        # Fast retransmit / simplified fast recovery.
        self.fast_retransmits += 1
        flight_segments = max(self.in_flight / self.config.mss, 2.0)
        self.ssthresh = max(flight_segments / 2.0, 2.0)
        self.cwnd = self.ssthresh
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.TCP_FAST_RETRANSMIT, self.sim.now, flow=self.flow_id,
                cwnd=self.cwnd, ssthresh=self.ssthresh,
            )
            self._trace_cwnd(trace)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("tcp.fast_retransmits_total").inc()
        self._retransmit_head()

    def _on_rto(self) -> None:
        if not self.running or self.in_flight <= 0:
            return
        self.timeouts += 1
        if self._pre_rto_cwnd is None:
            self._pre_rto_cwnd = self.cwnd
            self._pre_rto_ssthresh = self.ssthresh
            self._rto_fired_at = self.sim.now
        flight_segments = max(self.in_flight / self.config.mss, 2.0)
        self.ssthresh = max(flight_segments / 2.0, 2.0)
        self.cwnd = 1.0
        self.rto = min(self.rto * 2.0, self.config.max_rto)
        self.dupacks = 0
        self._timed_seq = None  # Karn: no samples from retransmissions
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.TCP_RTO, self.sim.now, flow=self.flow_id, rto=self.rto,
                cwnd=self.cwnd, ssthresh=self.ssthresh, timeouts=self.timeouts,
            )
            self._trace_cwnd(trace)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("tcp.rtos_total").inc()
        self._retransmit_head()
        self._rto_timer.start(self.rto)

    def _retransmit_head(self) -> None:
        self._retransmitted.add(self.snd_una)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.counter("tcp.retransmissions_total").inc()
        segment = TcpSegment(self.flow_id, self.snd_una, self.config.mss, ts=self.sim.now)
        self.segments_sent += 1
        self._send(segment)


class TcpReceiver:
    """Client-side receiver: cumulative ACKs, out-of-order buffering."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: int,
        send_ack: Callable[[TcpSegment], None],
        on_deliver: Optional[Callable[[int], None]] = None,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self._send_ack = send_ack
        self.on_deliver = on_deliver
        self.rcv_nxt = 0
        self.bytes_delivered = 0
        self._out_of_order: Dict[int, int] = {}  # seq -> length

    def on_segment(self, segment: TcpSegment) -> None:
        if segment.is_ack or segment.flow_id != self.flow_id:
            return
        if segment.seq == self.rcv_nxt:
            self._accept(segment.length)
            self._drain_buffered()
        elif segment.seq > self.rcv_nxt:
            self._out_of_order[segment.seq] = segment.length
        self._send_ack(
            TcpSegment(
                self.flow_id, 0, 0, is_ack=True, ack=self.rcv_nxt, ts_echo=segment.ts
            )
        )

    def _accept(self, length: int) -> None:
        self.rcv_nxt += length
        self.bytes_delivered += length
        if self.on_deliver is not None:
            self.on_deliver(length)

    def _drain_buffered(self) -> None:
        while self.rcv_nxt in self._out_of_order:
            length = self._out_of_order.pop(self.rcv_nxt)
            self._accept(length)
