"""Traffic applications.

``BulkDownload`` is the paper's workload: a large HTTP-style download
from a wired content server, one TCP flow per joined AP ("downloading
large files over HTTP", Sec. 4.2). It wires a :class:`TcpSender` on the
wired side to a :class:`TcpReceiver` on the mobile client through an
AP's router.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.backhaul import ApRouter
from repro.net.tcp import TcpConfig, TcpReceiver, TcpSegment, TcpSender, next_flow_id
from repro.sim.engine import Simulator


class BulkDownload:
    """An infinite download through one AP to one client interface.

    ``send_uplink`` is provided by the owning driver/interface: it
    queues an ACK segment for transmission to the AP (possibly via a
    per-channel queue) and returns True if it could be sent
    immediately.
    """

    def __init__(
        self,
        sim: Simulator,
        router: ApRouter,
        client_address: str,
        send_uplink: Callable[[TcpSegment], bool],
        tcp_config: Optional[TcpConfig] = None,
        on_deliver: Optional[Callable[[int], None]] = None,
    ):
        self.sim = sim
        self.router = router
        self.flow_id = next_flow_id()
        self.sender = TcpSender(
            sim,
            self.flow_id,
            send=lambda seg: router.send_down(client_address, seg),
            config=tcp_config,
        )
        def _send_ack(segment: TcpSegment) -> None:
            send_uplink(segment)

        self.receiver = TcpReceiver(
            sim,
            self.flow_id,
            send_ack=_send_ack,
            on_deliver=on_deliver,
        )
        # ACKs arriving at the AP are routed back to the sender.
        router.register_flow(self.flow_id, self.sender.on_ack)
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    @property
    def bytes_delivered(self) -> int:
        return self.receiver.bytes_delivered

    def start(self) -> None:
        self.started_at = self.sim.now
        self.sender.start()

    def stop(self) -> None:
        self.stopped_at = self.sim.now
        self.sender.stop()
        self.router.unregister_flow(self.flow_id)

    def on_downlink_segment(self, segment: TcpSegment) -> None:
        """Feed a data segment that arrived at the client interface."""
        self.receiver.on_segment(segment)
