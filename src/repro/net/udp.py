"""UDP datagrams and a VoIP-like constant-bit-rate application.

Sec. 4.3 motivates the disruption-length metric with "interactive
applications such as VoIP or web search". This module makes that
concrete: a bidirectional G.711-style CBR stream (one 200-byte
datagram every 20 ms each way, no retransmission) plus the standard
quality summary — loss, one-way delay percentiles, and an E-model-ish
MOS estimate — so experiments can ask "would a call have survived this
drive?".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List

from repro.metrics.stats import mean, percentile
from repro.sim.engine import Simulator

_stream_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class UdpDatagram:
    """One real-time datagram."""

    stream_id: int
    seq: int
    sent_at: float
    payload_bytes: int = 200

    @property
    def size_bytes(self) -> int:
        return self.payload_bytes + 28  # IP + UDP headers


@dataclass
class VoipQuality:
    """Call-quality summary over a measurement window."""

    sent: int
    received: int
    loss_fraction: float
    mean_delay: float
    p95_delay: float
    mos: float

    @property
    def usable(self) -> bool:
        """Conventional bar for a usable call: MOS ≥ 3.1."""
        return self.mos >= 3.1


def estimate_mos(loss_fraction: float, mean_delay_s: float) -> float:
    """Simplified E-model: R = 93.2 − delay impairment − loss impairment.

    Uses the common linearised impairments (Cole & Rosenbluth): delay
    counts fully past 177.3 ms; each percent of loss costs ~2.5 R.
    """
    delay_ms = mean_delay_s * 1000.0
    delay_impairment = 0.024 * delay_ms
    if delay_ms > 177.3:
        delay_impairment += 0.11 * (delay_ms - 177.3)
    loss_impairment = 2.5 * (loss_fraction * 100.0)
    r_factor = max(0.0, min(93.2 - delay_impairment - loss_impairment, 100.0))
    if r_factor <= 0:
        return 1.0
    mos = 1.0 + 0.035 * r_factor + 7e-6 * r_factor * (r_factor - 60) * (100 - r_factor)
    return max(1.0, min(mos, 4.5))


class VoipStream:
    """A downlink CBR stream from the wired side to the mobile client.

    ``send`` is injected (typically ``router.send_down`` wrapped for
    the client address); the client feeds received datagrams back via
    :meth:`on_datagram`. No retransmission, no reordering buffer —
    late/lost is lost, exactly like a real-time stream.
    """

    def __init__(
        self,
        sim: Simulator,
        send: Callable[[UdpDatagram], None],
        interval: float = 0.020,
        payload_bytes: int = 200,
    ):
        self.sim = sim
        self.stream_id = next(_stream_ids)
        self._send = send
        self.interval = interval
        self.payload_bytes = payload_bytes
        self.sent = 0
        self.delays: List[float] = []
        self._received_seqs: set = set()
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self._send(
            UdpDatagram(self.stream_id, self.sent, self.sim.now, self.payload_bytes)
        )
        self.sent += 1
        self.sim.schedule(self.interval, self._tick)

    def on_datagram(self, datagram: UdpDatagram) -> None:
        """Client-side arrival."""
        if datagram.stream_id != self.stream_id:
            return
        if datagram.seq in self._received_seqs:
            return  # duplicate (link-layer ARQ artefact)
        self._received_seqs.add(datagram.seq)
        self.delays.append(self.sim.now - datagram.sent_at)

    # -- reporting -------------------------------------------------------

    @property
    def received(self) -> int:
        return len(self._received_seqs)

    def quality(self, trim_tail: bool = False) -> VoipQuality:
        """Call-quality summary.

        With ``trim_tail`` the window ends at the last datagram that
        made it through — the call is treated as *dropped* there, so
        the silent tail (client drove out of range, driver hasn't torn
        down yet) doesn't count as loss. That matches how call quality
        is reported in practice: quality until the drop.
        """
        effective_sent = self.sent
        if trim_tail and self._received_seqs:
            effective_sent = max(self._received_seqs) + 1
        loss = 1.0 - (self.received / effective_sent) if effective_sent else 0.0
        loss = max(0.0, min(1.0, loss))
        mean_delay = mean(self.delays)
        return VoipQuality(
            sent=effective_sent,
            received=self.received,
            loss_fraction=loss,
            mean_delay=mean_delay,
            p95_delay=percentile(self.delays, 95),
            mos=estimate_mos(loss, mean_delay),
        )
