"""Observability: structured tracing, metrics, and run provenance.

- :mod:`repro.obs.trace` — the typed event bus and JSONL export;
- :mod:`repro.obs.metrics` — named counters/gauges/histograms;
- :mod:`repro.obs.report` — run manifests, profiling, and the
  :func:`~repro.obs.report.observe` ambient-install context.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import RunManifest, build_manifest, observe, profile_call
from repro.obs.trace import TraceBus, TraceEvent, TraceRecorder, read_jsonl, write_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "TraceBus",
    "TraceEvent",
    "TraceRecorder",
    "build_manifest",
    "observe",
    "profile_call",
    "read_jsonl",
    "write_jsonl",
]
