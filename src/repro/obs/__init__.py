"""Observability: structured tracing, metrics, spans, and provenance.

- :mod:`repro.obs.trace` — the typed event bus and JSONL export;
- :mod:`repro.obs.metrics` — named counters/gauges/histograms;
- :mod:`repro.obs.spans` — hierarchical wall-time span profiling;
- :mod:`repro.obs.flight` — the bounded crash flight recorder;
- :mod:`repro.obs.export` — Chrome trace-event / Perfetto conversion;
- :mod:`repro.obs.perf` — benchmark trend/regression reporting;
- :mod:`repro.obs.report` — run manifests, profiling, and the
  :func:`~repro.obs.report.observe` ambient-install context.
"""

from repro.obs.export import chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.flight import FlightRecorder, current_recorder, dump_postmortem, install_recorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import RunManifest, build_manifest, observe, profile_call
from repro.obs.spans import Span, SpanProfiler, current_profiler, install_profiler
from repro.obs.trace import TraceBus, TraceEvent, TraceRecorder, read_jsonl, write_jsonl

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "SpanProfiler",
    "TraceBus",
    "TraceEvent",
    "TraceRecorder",
    "build_manifest",
    "chrome_trace",
    "current_profiler",
    "current_recorder",
    "dump_postmortem",
    "install_profiler",
    "install_recorder",
    "observe",
    "profile_call",
    "read_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
