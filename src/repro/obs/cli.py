"""CLI for the second observability layer.

``spider-repro trace export RUN-trace.jsonl --chrome [--spans RUN-spans.json]``
    Convert a recorded trace (and optionally a span tree) into Chrome
    trace-event / Perfetto JSON — open the output in ui.perfetto.dev.

``spider-repro perf [BENCH_*.json ...] [--baseline PATH] [--strict]``
    Render the perf-trajectory report over benchmark summary files
    against the committed baseline. Warn-only unless ``--strict``.

Both are delegated sub-CLIs (like ``lint`` and ``scenario``): they own
their flags, so the experiment runner's parser never sees them.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from repro.obs.export import write_chrome_trace
from repro.obs.perf import DEFAULT_THRESHOLD, load_summary, perf_report, render_text
from repro.obs.trace import read_jsonl


def trace_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="spider-repro trace",
        description="Work with recorded trace/span artifacts.",
    )
    parser.add_argument("command", choices=["export"], help="what to do")
    parser.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="trace JSONL recorded with `spider-repro run ... --trace`",
    )
    parser.add_argument(
        "--chrome",
        action="store_true",
        help="emit Chrome trace-event / Perfetto JSON",
    )
    parser.add_argument(
        "--spans",
        default=None,
        metavar="PATH",
        help="span tree JSON recorded with `spider-repro run ... --spans`",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="output path (default: <input stem>-perfetto.json)",
    )
    args = parser.parse_args(argv)

    if not args.chrome:
        parser.error("trace export requires a format flag (--chrome)")
    if args.trace is None and args.spans is None:
        parser.error("nothing to export: give a trace JSONL and/or --spans PATH")

    events = read_jsonl(args.trace) if args.trace is not None else []
    spans = None
    if args.spans is not None:
        spans = json.loads(Path(args.spans).read_text(encoding="utf-8"))

    output = args.output
    if output is None:
        source = Path(args.trace if args.trace is not None else args.spans)
        output = str(source.with_name(source.stem + "-perfetto.json"))
    count = write_chrome_trace(output, events, spans)
    print(f"chrome trace: {count} events -> {output}")
    print("open in https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def perf_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="spider-repro perf",
        description="Perf-trajectory report over BENCH_*.json artifacts.",
    )
    parser.add_argument(
        "summaries",
        nargs="*",
        help="benchmark summary files (default: every benchmarks/BENCH_*.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline summary (default benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional regression threshold (default 0.30, same as CI)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any bench regressed beyond the threshold",
    )
    args = parser.parse_args(argv)

    bench_dir = Path("benchmarks")
    paths = [Path(p) for p in args.summaries]
    if not paths:
        paths = sorted(bench_dir.glob("BENCH_*.json"))
    missing = [p for p in paths if not p.exists()]
    for path in missing:
        print(f"perf: summary {path} not found — skipping")
    paths = [p for p in paths if p.exists()]
    if not paths:
        print("perf: no benchmark summaries found — run `pytest benchmarks` first")
        return 1 if args.strict else 0

    baseline_path = Path(args.baseline) if args.baseline else bench_dir / "baseline.json"
    baseline = None
    if baseline_path.exists():
        baseline = load_summary(baseline_path)
    else:
        print(f"perf: no baseline at {baseline_path} — trends only (warn only)")

    report = perf_report(baseline, [load_summary(p) for p in paths], args.threshold)
    print(render_text(report))
    if args.json is not None:
        text = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n", encoding="utf-8")
            print(f"report -> {args.json}")
    return 1 if (args.strict and report["regressions"]) else 0
