"""Chrome trace-event (Perfetto) export of traces and span trees.

Converts the repo's two observability artifacts — a trace JSONL (sim
events on the simulated clock) and a span tree (harness wall time) —
into one Chrome trace-event JSON object that opens directly in
ui.perfetto.dev or ``chrome://tracing``.

Layout:

- **process 1 — "simulation (sim time)"**: every trace event becomes a
  thread-scoped instant event (``"ph": "i"``) on one lane (thread) per
  layer — the first dotted component of the event kind — at its global
  bus time ``t``. One simulated second maps to one exported second
  (the format's ``ts`` unit is microseconds).
- **process 2 — "harness (wall time)"**: every span becomes a complete
  event (``"ph": "X"``) with its wall-clock ``ts``/``dur``. Spans land
  on the ``main`` lane unless they carry a ``lane`` field — per-shard
  execution spans set ``lane="shard:<key>"``, giving one timeline row
  per shard so pool concurrency is visible at a glance.

The two processes deliberately do **not** share a clock: sim time and
wall time are different axes, and Perfetto renders them as separate
process groups.

Reference: the public "Trace Event Format" document — only the
JSON-object form with a ``traceEvents`` array is emitted, and only the
``M`` (metadata), ``i`` (instant), and ``X`` (complete) phases.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import TraceEvent

#: Process ids of the two exported clock domains.
PID_SIM = 1
PID_HARNESS = 2

_SCALE = 1e6  # seconds -> trace-format microseconds


def _metadata(name: str, pid: int, value: str, tid: Optional[int] = None) -> Dict[str, Any]:
    event: Dict[str, Any] = {"name": name, "ph": "M", "pid": pid, "args": {"name": value}}
    if tid is not None:
        event["tid"] = tid
    return event


def _sim_events(events: Sequence[TraceEvent]) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """Instant events on one lane per layer, plus the lane table."""
    lanes: Dict[str, int] = {}
    out: List[Dict[str, Any]] = []
    for event in events:
        layer = event.kind.partition(".")[0]
        tid = lanes.get(layer)
        if tid is None:
            tid = lanes[layer] = len(lanes) + 1
        out.append(
            {
                "name": event.kind,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": round(event.t * _SCALE, 3),
                "pid": PID_SIM,
                "tid": tid,
                "args": {"run": event.run, "sim_t": event.sim_t, **event.fields},
            }
        )
    return out, lanes


def _iter_span_dicts(spans: Iterable[Dict[str, Any]]) -> Iterable[Dict[str, Any]]:
    pending = list(spans)
    while pending:
        span = pending.pop()
        yield span
        pending.extend(span.get("children", ()))


def _span_events(spans_payload: Dict[str, Any]) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """Complete events on the ``main`` lane or a span's own ``lane``."""
    lanes: Dict[str, int] = {"main": 1}
    out: List[Dict[str, Any]] = []
    for span in _iter_span_dicts(spans_payload.get("spans", ())):
        fields = dict(span.get("fields", {}))
        lane = str(fields.pop("lane", "main"))
        tid = lanes.get(lane)
        if tid is None:
            tid = lanes[lane] = len(lanes) + 1
        t0 = float(span.get("t0", 0.0))
        t1 = span.get("t1")
        wall = 0.0 if t1 is None else float(t1) - t0
        out.append(
            {
                "name": str(span.get("name", "span")),
                "ph": "X",
                "ts": round(t0 * _SCALE, 3),
                "dur": round(max(wall, 0.0) * _SCALE, 3),
                "pid": PID_HARNESS,
                "tid": tid,
                "args": fields,
            }
        )
    out.sort(key=lambda event: (event["tid"], event["ts"]))
    return out, lanes


def chrome_trace(
    events: Sequence[TraceEvent] = (),
    spans: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the Chrome trace-event JSON object.

    ``events`` is a loaded trace (:func:`repro.obs.trace.read_jsonl`);
    ``spans`` is a span-tree payload (:meth:`SpanProfiler.to_dict`, or
    the parsed ``*-spans.json`` file). Either side may be empty.
    """
    trace_events: List[Dict[str, Any]] = []

    sim_events, sim_lanes = _sim_events(events)
    if sim_events:
        trace_events.append(_metadata("process_name", PID_SIM, "simulation (sim time)"))
        for layer, tid in sorted(sim_lanes.items(), key=lambda item: item[1]):
            trace_events.append(_metadata("thread_name", PID_SIM, layer, tid=tid))
        trace_events.extend(sim_events)

    if spans is not None:
        span_events, span_lanes = _span_events(spans)
        if span_events:
            trace_events.append(_metadata("process_name", PID_HARNESS, "harness (wall time)"))
            for lane, tid in sorted(span_lanes.items(), key=lambda item: item[1]):
                trace_events.append(_metadata("thread_name", PID_HARNESS, lane, tid=tid))
            trace_events.extend(span_events)

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    events: Sequence[TraceEvent] = (),
    spans: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the export; returns the number of trace events written."""
    payload = chrome_trace(events, spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, default=str)
        handle.write("\n")
    return len(payload["traceEvents"])


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema-check a trace-event payload; returns a list of problems.

    Covers the subset this exporter emits (object form, phases M/i/X)
    plus the invariants Perfetto actually cares about: numeric
    non-negative timestamps, integer pid/tid, metadata naming.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload.traceEvents must be a list"]
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("M", "i", "X"):
            errors.append(f"{where}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: missing integer pid")
        if phase == "M":
            if event["name"] not in ("process_name", "thread_name"):
                errors.append(f"{where}: metadata name {event['name']!r} not recognised")
            if not isinstance(event.get("args", {}).get("name"), str):
                errors.append(f"{where}: metadata args.name missing")
            continue
        if not isinstance(event.get("tid"), int):
            errors.append(f"{where}: missing integer tid")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number, got {ts!r}")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant scope {event.get('s')!r} invalid")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number, got {dur!r}")
    return errors
