"""Crash flight recorder: the last N trace events, kept just in case.

Full trace capture of a campaign is expensive and almost always
discarded — what post-mortems actually need is the *tail*: the last
few hundred events per layer leading up to the failure, plus where the
harness was (the open span stack) when it died. The
:class:`FlightRecorder` is a bounded trace-bus subscriber that keeps
exactly that: one ``deque(maxlen=N)`` per layer (the first dotted
component of the event kind), so a chatty layer (``phy``) cannot
evict the sparse one (``dhcp``) that explains the crash.

When an experiment or exec worker raises, :func:`dump_postmortem`
writes a single JSON artifact containing the exception, the recorder
tails, the open span stack (from the ambient
:class:`~repro.obs.spans.SpanProfiler`, if any), and caller-provided
context (experiment name, shard key, parameters).

Like every obs component the recorder is opt-in: nothing subscribes
it by default, and the harness consults the ambient handle installed
by :func:`repro.obs.report.observe` (or the CLI's ``--flight`` flag).
"""

from __future__ import annotations

import json
import traceback
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .trace import TraceBus, TraceEvent


class FlightRecorder:
    """Bounded per-layer ring buffer over trace events."""

    def __init__(self, bus: Optional[TraceBus] = None, per_layer: int = 200):
        if per_layer <= 0:
            raise ValueError(f"per_layer must be positive, got {per_layer}")
        self.per_layer = per_layer
        self.events_seen = 0
        self._layers: Dict[str, Deque[TraceEvent]] = {}
        if bus is not None:
            bus.subscribe(self)

    def __call__(self, event: TraceEvent) -> None:
        """Trace-bus subscriber entry point."""
        layer = event.kind.partition(".")[0]
        ring = self._layers.get(layer)
        if ring is None:
            ring = self._layers[layer] = deque(maxlen=self.per_layer)
        ring.append(event)
        self.events_seen += 1

    # -- inspection ------------------------------------------------------

    def layers(self) -> List[str]:
        return sorted(self._layers)

    def tail(self, layer: str) -> List[TraceEvent]:
        """The retained events for one layer, oldest first."""
        return list(self._layers.get(layer, ()))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: per-layer tails interleaved by global time."""
        merged = sorted(
            (event for ring in self._layers.values() for event in ring),
            key=lambda event: (event.t, event.run),
        )
        return {
            "per_layer": self.per_layer,
            "events_seen": self.events_seen,
            "events_retained": sum(len(ring) for ring in self._layers.values()),
            "layers": {layer: len(ring) for layer, ring in sorted(self._layers.items())},
            "tail": [event.to_dict() for event in merged],
        }


def dump_postmortem(
    path: str,
    error: BaseException,
    recorder: Optional[FlightRecorder] = None,
    profiler: Optional[Any] = None,
    context: Optional[Dict[str, Any]] = None,
) -> str:
    """Write the crash artifact and return its path.

    ``profiler`` is duck-typed (anything with ``open_stack()``) to keep
    this module importable without :mod:`repro.obs.spans`.
    """
    payload: Dict[str, Any] = {
        "kind": "postmortem",
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exception(type(error), error, error.__traceback__),
        },
        "context": dict(context) if context else {},
        "open_spans": [],
        "flight": None,
    }
    if profiler is not None:
        # crash_stack() remembers spans the exception already unwound
        # through; plain open_stack() is the fallback for duck-typed
        # profilers (and for dumps taken while spans are still open).
        stack = getattr(profiler, "crash_stack", profiler.open_stack)
        payload["open_spans"] = [span.to_dict(with_children=False) for span in stack()]
    if recorder is not None:
        payload["flight"] = recorder.snapshot()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
    return path


# -- ambient recorder --------------------------------------------------------

_current: Optional[FlightRecorder] = None


def install_recorder(recorder: Optional[FlightRecorder]) -> None:
    """Install (or, with ``None``, clear) the ambient flight recorder."""
    global _current
    _current = recorder


def current_recorder() -> Optional[FlightRecorder]:
    """The ambient flight recorder, or ``None`` when disabled."""
    return _current
