"""Named counters, gauges, and histograms for any subsystem.

The registry is the push/pull complement to the trace bus: traces tell
you *what happened when*; metrics tell you *how much of it happened*.
Subsystems use whichever style fits their rate:

- **push** — low-frequency events call ``registry.counter(name).inc()``
  or ``registry.histogram(name).observe(v)`` directly (TCP RTOs,
  channel switches);
- **pull** — hot paths keep their existing cheap attribute counters and
  register a *source* (``registry.add_source(fn)``) whose dict of
  values is folded in at snapshot time (frames dropped, per-channel
  airtime, events executed). A pull source costs nothing per event.

Like tracing, the registry is ambient-optional: ``sim.metrics`` is
``None`` unless installed, and every push site guards with a ``None``
check. ``snapshot()`` flattens everything into one ``{name: value}``
dict; name collisions across sources/instruments are summed, which is
what makes multi-seed experiment loops aggregate naturally.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value: either set directly or sampled via ``fn``."""

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def sample(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self.value


class Histogram:
    """Streaming distribution summary: count/sum/min/max + mean.

    Deliberately bucket-free: the evaluation's distributions (switch
    latency, join time) are small enough that exact series live in the
    experiment results; the histogram exists for cheap run-level
    summaries in the metrics snapshot.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create instrument registry with a flat snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: List[Callable[[], Mapping[str, float]]] = []

    # -- instruments -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            instrument.fn = fn  # rebind: the newest sampler wins
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def add_source(self, fn: Callable[[], Mapping[str, float]]) -> None:
        """Register a pull source: ``fn() -> {name: value}``.

        Sources are sampled only at :meth:`snapshot`; values for the
        same name (across sources, or source vs counter) are summed.
        """
        self._sources.append(fn)

    # -- output ----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flatten every instrument and source into ``{name: value}``."""
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = out.get(name, 0.0) + counter.value
        for name, gauge in self._gauges.items():
            out[name] = out.get(name, 0.0) + gauge.sample()
        for name, histogram in self._histograms.items():
            out[f"{name}.count"] = histogram.count
            out[f"{name}.sum"] = histogram.total
            out[f"{name}.mean"] = histogram.mean
            if histogram.count:
                out[f"{name}.min"] = histogram.min
                out[f"{name}.max"] = histogram.max
        for source in self._sources:
            for name, value in source().items():
                out[name] = out.get(name, 0.0) + float(value)
        return out

    def format_snapshot(self, indent: str = "  ") -> str:
        """Human-readable snapshot, sorted by name."""
        snapshot = self.snapshot()
        width = max((len(name) for name in snapshot), default=0)
        lines = []
        for name in sorted(snapshot):
            value = snapshot[name]
            rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"{indent}{name:<{width}}  {rendered}")
        return "\n".join(lines)
