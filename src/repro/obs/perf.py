"""Perf trajectory: trend/regression report over benchmark artifacts.

``benchmarks/conftest.py`` writes one ``BENCH_<timestamp>.json`` per
benchmark session and CI archives them; ``benchmarks/baseline.json``
is the committed reference point. This module turns any collection of
those files into a per-bench report: wall time against the baseline,
the trend across the ingested sessions, and a regression verdict using
the same fractional threshold as the CI gate
(``benchmarks/compare.py``).

The report is a plain dict (JSON output for dashboards) plus a text
renderer (local runs, CI logs). Policy stays with the caller: the
``spider-repro perf`` CLI is warn-only unless ``--strict``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

#: Same default as benchmarks/compare.py — loose on purpose: the gate
#: catches multiples (an O(#radios) scan reintroduced), not percents.
DEFAULT_THRESHOLD = 0.30

STATUS_OK = "ok"
STATUS_REGRESSED = "regressed"
STATUS_IMPROVED = "improved"
STATUS_NEW = "new"
STATUS_MISSING = "missing"


def load_summary(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one BENCH/baseline summary file into a normalized record.

    Malformed benchmark entries (missing ``test``, non-numeric
    ``wall_seconds``) are skipped and counted, never fatal — a perf
    report must survive a truncated artifact from a crashed CI run.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    records: Dict[str, float] = {}
    skipped = 0
    entries = payload.get("benchmarks", [])
    if not isinstance(entries, list):
        entries = []
        skipped += 1
    for entry in entries:
        try:
            test = entry["test"]
            wall = float(entry["wall_seconds"])
        except (TypeError, KeyError, ValueError):
            skipped += 1
            continue
        if not isinstance(test, str) or not test:
            skipped += 1
            continue
        records[test] = wall
    return {
        "label": path.name,
        "created": str(payload.get("created_utc", "")) if isinstance(payload, dict) else "",
        "records": records,
        "skipped": skipped,
    }


def perf_report(
    baseline: Optional[Dict[str, Any]],
    summaries: Sequence[Dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, Any]:
    """Build the report dict from loaded summaries (oldest → newest).

    ``baseline`` and each summary are :func:`load_summary` results.
    The regression verdict compares the **newest** summary against the
    baseline; the trend spans the ingested summaries themselves.
    """
    summaries = sorted(summaries, key=lambda s: (s["created"], s["label"]))
    base_records: Dict[str, float] = dict(baseline["records"]) if baseline else {}
    latest = summaries[-1] if summaries else None
    tests = sorted(
        set(base_records) | {test for summary in summaries for test in summary["records"]}
    )

    benches: List[Dict[str, Any]] = []
    regressions = 0
    for test in tests:
        series = [
            summary["records"][test] for summary in summaries if test in summary["records"]
        ]
        base = base_records.get(test)
        now = latest["records"].get(test) if latest else None
        delta: Optional[float] = None
        trend: Optional[float] = None
        if len(series) >= 2 and series[0] > 0:
            trend = (series[-1] - series[0]) / series[0]
        if now is None:
            status = STATUS_MISSING
        elif base is None:
            status = STATUS_NEW
        else:
            delta = (now - base) / base if base > 0 else 0.0
            if delta > threshold:
                status = STATUS_REGRESSED
                regressions += 1
            elif delta < -threshold:
                status = STATUS_IMPROVED
            else:
                status = STATUS_OK
        benches.append(
            {
                "test": test,
                "baseline_seconds": base,
                "latest_seconds": now,
                "series": [round(value, 6) for value in series],
                "delta": None if delta is None else round(delta, 4),
                "trend": None if trend is None else round(trend, 4),
                "status": status,
            }
        )

    return {
        "kind": "perf",
        "threshold": threshold,
        "baseline": baseline["label"] if baseline else None,
        "summaries": [summary["label"] for summary in summaries],
        "entries_skipped": (baseline["skipped"] if baseline else 0)
        + sum(summary["skipped"] for summary in summaries),
        "regressions": regressions,
        "benches": benches,
    }


def _short(test: str) -> str:
    """``benchmarks/test_bench_fig2.py::test_bench_fig2`` → ``fig2``-ish."""
    return test.rsplit("::", 1)[-1].removeprefix("test_bench_")


def render_text(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`perf_report` dict."""
    lines: List[str] = []
    baseline = report["baseline"] or "(none)"
    lines.append(
        f"perf: {len(report['summaries'])} summary file(s) vs baseline {baseline}"
        f" (threshold +{report['threshold']:.0%})"
    )
    if report["entries_skipped"]:
        lines.append(f"perf: skipped {report['entries_skipped']} malformed entr(y/ies)")
    for bench in report["benches"]:
        status = bench["status"].upper() if bench["status"] == STATUS_REGRESSED else bench["status"]
        now = bench["latest_seconds"]
        base = bench["baseline_seconds"]
        now_text = "-" if now is None else f"{now * 1000:.1f}ms"
        base_text = "-" if base is None else f"{base * 1000:.1f}ms"
        delta_text = "" if bench["delta"] is None else f" ({bench['delta']:+.0%})"
        trend_text = "" if bench["trend"] is None else f" trend {bench['trend']:+.0%}"
        lines.append(
            f"  {status:9s} {_short(bench['test']):42s}"
            f" {base_text:>10s} -> {now_text:>10s}{delta_text}{trend_text}"
        )
    if report["regressions"]:
        lines.append(
            f"perf: {report['regressions']} benchmark(s) regressed more than"
            f" {report['threshold']:.0%}"
        )
    else:
        lines.append("perf: no wall-time regressions beyond threshold")
    return "\n".join(lines)
