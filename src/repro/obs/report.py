"""Run provenance, profiling, and the ambient observability context.

Experiments construct their simulators internally (one per seed or per
configuration), so the CLI cannot hand a trace bus to each one. The
:func:`observe` context installs a bus and/or registry as the *default
observability* for every :class:`~repro.sim.engine.Simulator` created
inside the ``with`` block; the engine attaches them at construction
time. Outside the block, nothing is installed and the stack runs at
full speed.

:class:`RunManifest` captures what a result *is*: the experiment id,
its parameters, the code version (git SHA), interpreter, wall-clock
cost, and simulation-event throughput — enough to tell two exports
apart six months later and to compare perf PRs honestly.
"""

from __future__ import annotations

import cProfile
import functools
import io
import json
import platform
import pstats
import subprocess
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.obs import flight as flight_mod
from repro.obs import spans as spans_mod
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanProfiler
from repro.obs.trace import TraceBus
from repro.sim import engine


@contextmanager
def observe(
    trace: Optional[TraceBus] = None,
    metrics: Optional[MetricsRegistry] = None,
    spans: Optional[SpanProfiler] = None,
    flight: Optional[FlightRecorder] = None,
):
    """Install default observability for simulators built in the block.

    ``spans`` additionally becomes the ambient
    :func:`~repro.obs.spans.current_profiler` so harness layers (exec
    workers, the campaign loop, scenario build) pick it up; ``flight``
    becomes the ambient :func:`~repro.obs.flight.current_recorder` that
    crash paths consult when dumping a post-mortem. Subscribing the
    recorder to a bus stays the caller's job (``FlightRecorder(bus)``).
    """
    engine.set_default_observability(trace=trace, metrics=metrics, spans=spans)
    spans_mod.install_profiler(spans)
    flight_mod.install_recorder(flight)
    try:
        yield
    finally:
        engine.set_default_observability()
        spans_mod.install_profiler(None)
        flight_mod.install_recorder(None)


@functools.lru_cache(maxsize=None)
def git_sha(short: bool = True) -> Optional[str]:
    """The repo's current commit, or None outside a git checkout.

    Cached per process: manifests, cache keys, and per-shard telemetry
    all ask for the SHA, and it cannot change mid-run — one subprocess
    is enough.
    """
    root = Path(__file__).resolve().parents[3]
    args = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        proc = subprocess.run(
            args, cwd=root, capture_output=True, text=True, timeout=5.0, check=False
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


@functools.lru_cache(maxsize=None)
def git_dirty() -> bool:
    """True when the working tree has uncommitted changes.

    The exec cache folds this into its code-version key so a dirty-tree
    rerun can never collide with (or poison) results recorded for the
    clean commit. Cached per process for the same reason as
    :func:`git_sha`. Outside a git checkout, the tree counts as clean —
    there is no SHA to collide with either.
    """
    root = Path(__file__).resolve().parents[3]
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return False
    return proc.returncode == 0 and bool(proc.stdout.strip())


@dataclass
class RunManifest:
    """Provenance of one experiment run."""

    experiment: str
    parameters: Dict = field(default_factory=dict)
    fast: bool = False
    started_at: str = ""
    wall_seconds: float = 0.0
    git_sha: Optional[str] = None
    python: str = ""
    platform: str = ""
    events_executed: int = 0
    events_per_second: float = 0.0
    trace_events: int = 0
    #: Parallel-execution provenance (see ``repro.exec``): how many
    #: workers ran the experiment, how many shards it split into, and
    #: how many of those were served from the result cache.
    jobs: int = 1
    shards_total: int = 0
    shards_cached: int = 0
    #: Optional execution telemetry (per-shard sources, retries, worker
    #: vs. queue seconds) aggregated by ``repro.exec.campaign``.
    telemetry: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return asdict(self)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=str)
            handle.write("\n")

    def summary(self) -> str:
        sha = self.git_sha or "unknown"
        rate = (
            f"{self.events_per_second / 1e3:.0f}k events/s"
            if self.events_per_second >= 1e3
            else f"{self.events_per_second:.0f} events/s"
        )
        return (
            f"run: {self.experiment} wall={self.wall_seconds:.2f}s "
            f"events={self.events_executed} ({rate}) git={sha}"
        )


def build_manifest(
    experiment: str,
    parameters: Optional[Dict] = None,
    fast: bool = False,
    started_at: float = 0.0,
    wall_seconds: float = 0.0,
    events_executed: int = 0,
    trace_events: int = 0,
    jobs: int = 1,
    shards_total: int = 0,
    shards_cached: int = 0,
    telemetry: Optional[Dict] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` from a completed run."""
    return RunManifest(
        experiment=experiment,
        parameters=dict(parameters or {}),
        fast=fast,
        started_at=time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(started_at)),
        wall_seconds=wall_seconds,
        git_sha=git_sha(),
        python=platform.python_version(),
        platform=platform.platform(),
        events_executed=int(events_executed),
        events_per_second=events_executed / wall_seconds if wall_seconds > 0 else 0.0,
        trace_events=trace_events,
        jobs=jobs,
        shards_total=shards_total,
        shards_cached=shards_cached,
        telemetry=dict(telemetry) if telemetry else None,
    )


def build_campaign_manifest(
    runs: Sequence[RunManifest],
    started_at: float = 0.0,
    wall_seconds: float = 0.0,
    jobs: int = 1,
    shards_total: int = 0,
    shards_cached: int = 0,
    cache_stats: Optional[Dict] = None,
    telemetry: Optional[Dict] = None,
) -> Dict:
    """Aggregate per-experiment manifests into one campaign manifest.

    The campaign manifest is the provenance record of a whole-evaluation
    regeneration: environment once, totals once, and the individual run
    manifests nested under ``experiments``. ``telemetry`` carries the
    campaign-level execution counters (pool/inline/cached shards,
    retries, worker vs. queue seconds) when the exec engine ran.
    """
    return {
        "kind": "campaign",
        "started_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(started_at)),
        "wall_seconds": wall_seconds,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "jobs": jobs,
        "shards_total": shards_total,
        "shards_cached": shards_cached,
        "cache_stats": dict(cache_stats) if cache_stats else None,
        "telemetry": dict(telemetry) if telemetry else None,
        "experiments": [run.to_dict() for run in runs],
    }


def write_campaign_manifest(manifest: Dict, path: str) -> None:
    """Write an aggregated campaign manifest as pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, default=str)
        handle.write("\n")


def profile_call(fn, *args, top: int = 20, **kwargs):
    """Run ``fn`` under cProfile; returns ``(result, summary_text)``."""
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return result, stream.getvalue()
