"""Hierarchical wall-time spans: the run's time structure, end to end.

The trace bus (:mod:`repro.obs.trace`) answers "what happened inside
the simulation, in sim time". Spans answer the complementary question:
"where did the *wall clock* go" — scenario build vs. sim run vs. shard
queue wait vs. cache lookup — as a tree whose shape mirrors the
harness call structure. Each :class:`Span` carries its wall-clock
start/end (seconds since the profiler's epoch), free-form fields
(sim-event counts, shard keys, cache outcomes), and its children.

Spans follow the same **zero-overhead-when-disabled** discipline as
the trace bus: nothing is installed by default, and instrumentation
points in hot packages guard on the handle::

    spans = self.spans          # or spans = current_profiler()
    if spans is not None:
        with spans.span(SPAN_SIM_RUN) as span:
            ...
            span.add(events=...)

so the disabled cost is an attribute load (or one function call at
harness level) and a ``None`` check. simlint rule SL009 pins that
pattern in ``repro.sim``/``phy``/``mac``/``net``.

Span *names* are dot-separated ``layer.step`` strings, declared here
as constants so exporters can group lanes without guessing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

# -- span taxonomy -----------------------------------------------------------
#
# Like the trace-event taxonomy, span names are declared once. They
# describe *harness* structure (wall time), never simulated time.

SPAN_SIM_RUN = "sim.run"  # one simulator segment (events, sim_t)
SPAN_SCENARIO_BUILD = "scenario.build"  # spec -> wired world (scenario, seed, aps)
SPAN_SCENARIO_RUN = "scenario.run"  # declared fleet execution (scenario, drivers)
SPAN_EXPERIMENT = "exec.experiment"  # one experiment through the exec engine
SPAN_EXEC_SHARDS = "exec.shards"  # one execute_shards call (experiment, shards)
SPAN_EXEC_CACHE = "exec.cache"  # the cache scan phase (hits, pending)
SPAN_EXEC_SHARD = "exec.shard"  # one shard outcome (key, source, attempts)
SPAN_BACKEND_TASK = "backend.task"  # one backend execution (key, backend, worker)


class Span:
    """One timed region: name, start/end, fields, children."""

    __slots__ = ("name", "t0", "t1", "fields", "children")

    def __init__(self, name: str, t0: float, fields: Optional[Dict[str, Any]] = None):
        self.name = name
        self.t0 = t0
        self.t1: Optional[float] = None
        self.fields: Dict[str, Any] = fields if fields is not None else {}
        self.children: List["Span"] = []

    @property
    def open(self) -> bool:
        return self.t1 is None

    @property
    def wall(self) -> float:
        """Wall seconds; 0.0 while the span is still open."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def add(self, **fields: Any) -> None:
        """Attach (or overwrite) result fields on the span."""
        self.fields.update(fields)

    def to_dict(self, with_children: bool = True) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "t0": round(self.t0, 6),
            "t1": None if self.t1 is None else round(self.t1, 6),
            "wall": round(self.wall, 6),
            "fields": dict(self.fields),
        }
        if with_children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"{self.wall:.4f}s"
        return f"Span({self.name!r}, {state}, fields={self.fields!r})"


class SpanProfiler:
    """Records a tree of wall-time spans.

    The clock is injectable so tests can drive deterministic
    timestamps; the default is :func:`time.perf_counter`, re-based to
    the profiler's construction instant so exported ``t0``/``t1`` are
    small human-readable offsets.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._error_stack: List[Span] = []
        self._error_exc: Optional[BaseException] = None
        self.spans_recorded = 0

    # -- recording -------------------------------------------------------

    def now(self) -> float:
        """Seconds since the profiler's epoch (the span time axis)."""
        return self._clock() - self._epoch

    @contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[Span]:
        """Open a child of the innermost open span (or a new root)."""
        span = Span(name, self.now(), dict(fields))
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)
        self.spans_recorded += 1
        try:
            yield span
        except BaseException as exc:
            # The innermost span sees the exception first and captures
            # the full stack; outer spans skip the same exception.
            if exc is not self._error_exc:
                self._error_exc = exc
                self._error_stack = list(self._stack)
            span.add(error=type(exc).__name__)
            raise
        finally:
            self._stack.pop()
            span.t1 = self.now()

    def record(self, name: str, t0: float, t1: Optional[float] = None, **fields: Any) -> Span:
        """Append an already-measured span (e.g. a pooled shard whose
        wall time was observed from submit to completion)."""
        span = Span(name, t0, dict(fields))
        span.t1 = self.now() if t1 is None else t1
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        self.spans_recorded += 1
        return span

    # -- inspection ------------------------------------------------------

    def open_stack(self) -> List[Span]:
        """Innermost-last list of spans still open (crash forensics)."""
        return list(self._stack)

    def crash_stack(self) -> List[Span]:
        """Where the harness was when the most recent exception unwound
        through :meth:`span` contexts — those spans are closed by the
        time a post-mortem runs, so the stack is captured on the way
        out. Falls back to :meth:`open_stack` when nothing unwound."""
        return list(self._error_stack) if self._error_stack else self.open_stack()

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first walk over every recorded span."""
        pending = list(reversed(self.roots))
        while pending:
            span = pending.pop()
            yield span
            pending.extend(reversed(span.children))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "spans",
            "spans_recorded": self.spans_recorded,
            "spans": [root.to_dict() for root in self.roots],
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, default=str)
            handle.write("\n")

    def format_tree(self, min_wall: float = 0.0) -> str:
        """An indented text rendering, pruning spans under ``min_wall``."""
        lines: List[str] = []

        def render(span: Span, depth: int) -> None:
            if not span.open and span.wall < min_wall:
                return
            state = "(open)" if span.open else f"{span.wall * 1000:.1f}ms"
            fields = " ".join(f"{key}={value}" for key, value in span.fields.items())
            lines.append(f"{'  ' * depth}{span.name:24s} {state:>10s}  {fields}".rstrip())
            for child in span.children:
                render(child, depth + 1)

        for root in self.roots:
            render(root, 0)
        return "\n".join(lines)


# -- ambient profiler --------------------------------------------------------
#
# Harness layers (exec workers, the campaign loop, scenario build)
# cannot be handed a profiler through every call chain, so — exactly
# like the engine's ambient trace/metrics defaults — one module-level
# handle is installed for the duration of an observed run.

_current: Optional[SpanProfiler] = None


def install_profiler(profiler: Optional[SpanProfiler]) -> None:
    """Install (or, with ``None``, clear) the ambient profiler."""
    global _current
    _current = profiler


def current_profiler() -> Optional[SpanProfiler]:
    """The ambient profiler, or ``None`` when spans are disabled."""
    return _current
