"""Typed, timestamped event tracing for the simulation stack.

The paper's findings are *timing* interactions — DHCP response times
dominating switch latency, TCP RTOs firing during off-channel absence,
PSM buffering across schedule slots — so diagnosing a run means seeing
the event timeline, not just end-of-run aggregates. The
:class:`TraceBus` is that timeline: instrumentation points throughout
the stack emit :class:`TraceEvent` records, and subscribers (recorders,
live filters, the CLI's JSONL exporter) consume them.

Tracing is **disabled by default and free when disabled**: the
:class:`~repro.sim.engine.Simulator` owns an optional ``trace``
attribute (``None`` unless a bus is attached), and every
instrumentation point is guarded by

    trace = self.sim.trace
    if trace is not None:
        trace.emit(KIND, self.sim.now, ...)

so the disabled cost is one attribute load and a ``None`` check — no
event objects, no field dicts, no subscriber calls.

A bus survives across simulators (an experiment typically runs one
simulator per seed or per configuration): :meth:`TraceBus.attach`
starts a new *run segment* and offsets subsequent timestamps so the
global clock ``TraceEvent.t`` is monotonically non-decreasing over the
whole export, while ``TraceEvent.sim_t`` keeps the owning simulator's
local clock.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.sim.engine import Simulator

# -- event taxonomy ---------------------------------------------------------
#
# Kinds are dot-separated ``layer.event`` strings. Emitters use these
# constants; subscribers may match on exact kinds or on the ``layer.``
# prefix.

# phy: the radio and the shared medium
PHY_CHANNEL_SET = "phy.channel_set"  # radio, channel
PHY_FRAME_DROP = "phy.frame_drop"  # channel, dst, reason ("loss"/"arq-exhausted"/"unreachable")
PHY_PARTITION_HANDOFF = "phy.partition_handoff"  # radio, from_region, to_region

# sched: Spider's channel scheduler
SCHED_SLOT = "sched.slot"  # channel, dwell
SCHED_SWITCH = "sched.switch"  # from_channel, to_channel, latency, connected
PSM_ENTER = "psm.enter"  # client announces sleep to an AP (ap)
PSM_EXIT = "psm.exit"  # client wakes an AP (ap)

# assoc: the client-side link-layer state machine
ASSOC_START = "assoc.start"  # client, ap, channel
ASSOC_TX = "assoc.tx"  # client, ap, stage, attempt
ASSOC_STATE = "assoc.state"  # client, ap, state
ASSOC_OK = "assoc.ok"  # client, ap, took
ASSOC_FAIL = "assoc.fail"  # client, ap

# ap: the responder side
AP_PROBE_RESP = "ap.probe_resp"  # ap, client
AP_ASSOC_GRANT = "ap.assoc_grant"  # ap, client
AP_PSM_SLEEP = "ap.psm_sleep"  # ap, client (PM bit observed set)
AP_PSM_WAKE = "ap.psm_wake"  # ap, client (PM cleared; buffers flush)
AP_PSM_DROP = "ap.psm_drop"  # ap, client (power-save buffer overflow)

# dhcp: client exchange + server responses
DHCP_SEND = "dhcp.send"  # client, server, type, xid, attempt
DHCP_BLOCKED = "dhcp.blocked"  # client, server, type, xid (off-channel)
DHCP_TIMEOUT = "dhcp.timeout"  # client, server, state, xid
DHCP_BIND = "dhcp.bind"  # client, server, ip, took, xid, cached
DHCP_FAIL = "dhcp.fail"  # client, server, xid, attempts
DHCP_SERVER_TX = "dhcp.server_tx"  # server, client, type

# tcp: sender-side congestion events
TCP_RTO = "tcp.rto"  # flow, rto, cwnd, ssthresh, timeouts
TCP_FAST_RETRANSMIT = "tcp.fast_retransmit"  # flow, cwnd, ssthresh
TCP_SPURIOUS_RECOVERY = "tcp.spurious_recovery"  # flow, cwnd
TCP_CWND = "tcp.cwnd"  # flow, cwnd (emitted on >= 1-segment moves)

# scenario: declarative world construction and execution (repro.scenario)
SCENARIO_BUILD = "scenario.build"  # scenario, seed, aps, spec_digest
SCENARIO_RUN = "scenario.run"  # scenario, driver, duration

# run: bus-level bookkeeping (emitted by the bus itself, not a layer)
RUN_SEGMENT = "run.segment"  # segment, offset — a new simulator adopted the bus

# backend: distributed shard execution (repro.exec.backend). These are
# *harness* events — sim_t is wall seconds since the backend started,
# not simulated time.
BACKEND_SUBMIT = "backend.submit"  # backend, key, worker
BACKEND_RESULT = "backend.result"  # backend, key, worker, ok, worker_seconds
BACKEND_WORKER_DEAD = "backend.worker_dead"  # backend, worker, reason
BACKEND_BLACKLIST = "backend.blacklist"  # backend, host, failures

# driver: join lifecycle and AP selection policy
DRIVER_JOIN = "driver.join"  # client, ap, channel
DRIVER_SELECT = "driver.select"  # client, ap, policy, candidates
DRIVER_CONNECTED = "driver.connected"  # client, ap, join_time
DRIVER_FAILED = "driver.failed"  # client, ap, stage
DRIVER_LOST = "driver.lost"  # client, ap
SCAN_START = "scan.start"  # client


class TraceEvent:
    """One emitted event: global time, kind, run segment, fields."""

    __slots__ = ("t", "kind", "run", "sim_t", "fields")

    def __init__(self, t: float, kind: str, run: int, sim_t: float, fields: Dict):
        self.t = t
        self.kind = kind
        self.run = run
        self.sim_t = sim_t
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent(t={self.t:.6f}, kind={self.kind!r}, fields={self.fields!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.t == other.t
            and self.kind == other.kind
            and self.run == other.run
            and self.sim_t == other.sim_t
            and self.fields == other.fields
        )

    def to_dict(self) -> Dict:
        return {"t": self.t, "kind": self.kind, "run": self.run, "sim_t": self.sim_t, **self.fields}

    @classmethod
    def from_dict(cls, data: Dict) -> "TraceEvent":
        data = dict(data)
        t = data.pop("t")
        kind = data.pop("kind")
        run = data.pop("run")
        sim_t = data.pop("sim_t")
        return cls(t, kind, run, sim_t, data)


class TraceBus:
    """Dispatches :class:`TraceEvent` records to subscribers in order.

    Subscriber dispatch order is the subscription order, making
    multi-consumer runs fully deterministic.
    """

    def __init__(self) -> None:
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        self._run = -1
        self._offset = 0.0
        self._last_t = 0.0
        self.events_emitted = 0

    # -- wiring ----------------------------------------------------------

    def attach(self, sim: "Simulator") -> "TraceBus":
        """Adopt ``sim`` as the current clock source.

        Starts a new run segment: the new simulator's clock restarts at
        zero, so the bus offsets its timestamps to keep the global
        ``t`` axis non-decreasing across segments. The boundary is
        announced with an explicit :data:`RUN_SEGMENT` event so
        exporters never have to infer segment starts from timestamp
        offsets.
        """
        self._run += 1
        self._offset = self._last_t
        sim.trace = self
        self.emit(RUN_SEGMENT, 0.0, segment=self._run, offset=self._offset)
        return self

    def subscribe(self, subscriber: Callable[[TraceEvent], None]) -> Callable[[TraceEvent], None]:
        """Register ``subscriber(event)``; returns it for chaining."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Callable[[TraceEvent], None]) -> None:
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    # -- emission --------------------------------------------------------

    def emit(self, kind: str, sim_t: float, **fields) -> None:
        """Emit one event at local simulator time ``sim_t``."""
        t = self._offset + sim_t
        if t < self._last_t:
            t = self._last_t  # defensive: never step the global axis back
        self._last_t = t
        self.events_emitted += 1
        event = TraceEvent(t, kind, self._run, sim_t, fields)
        for subscriber in self._subscribers:
            subscriber(event)


class TraceRecorder:
    """A subscriber that buffers events, optionally filtered by kind.

    ``kinds`` may name exact kinds (``"dhcp.send"``) or layer prefixes
    (``"dhcp."``). With no filter, every event is kept.
    """

    def __init__(self, bus: Optional[TraceBus] = None, kinds: Optional[Sequence[str]] = None):
        self.events: List[TraceEvent] = []
        self._exact = {k for k in (kinds or ()) if not k.endswith(".")}
        self._prefixes = tuple(k for k in (kinds or ()) if k.endswith("."))
        if bus is not None:
            bus.subscribe(self)

    def __call__(self, event: TraceEvent) -> None:
        if self._exact or self._prefixes:
            if event.kind not in self._exact and not event.kind.startswith(self._prefixes):
                return
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]


# -- JSONL export / import ---------------------------------------------------


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write events one-JSON-object-per-line; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), default=str))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a trace written by :func:`write_jsonl`."""
    events: List[TraceEvent] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
