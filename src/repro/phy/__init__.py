"""PHY substrate: channels, propagation, radios, and the shared medium.

Stands in for the paper's Atheros 802.11abg card. The pieces the
paper's conclusions rest on — per-channel broadcast domains, frame
airtimes derived from bit-rates, hardware-reset channel-switch latency,
and distance-dependent loss — are modelled explicitly.
"""

from repro.phy.channels import (
    DEFAULT_DATA_RATE_BPS,
    MANAGEMENT_RATE_BPS,
    ORTHOGONAL_CHANNELS,
    channel_frequency_mhz,
    channels_interfere,
)
from repro.phy.propagation import PropagationModel
from repro.phy.radio import Medium, Radio

__all__ = [
    "DEFAULT_DATA_RATE_BPS",
    "MANAGEMENT_RATE_BPS",
    "Medium",
    "ORTHOGONAL_CHANNELS",
    "PropagationModel",
    "Radio",
    "channel_frequency_mhz",
    "channels_interfere",
]
