"""802.11b/g channel plan and rate constants.

The paper's experiments run on channels 1, 6, and 11 — the three
orthogonal channels in the 2.4 GHz band, where the measured AP
population overwhelmingly sits (Sec. 4.1).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: The three non-overlapping 2.4 GHz channels.
ORTHOGONAL_CHANNELS: Tuple[int, int, int] = (1, 6, 11)

#: Peak data rate for data frames. The analytical model uses the
#: 802.11b Bw = 11 Mbps; the testbed's organic APs were largely
#: 802.11g ("802.11G is now widely available", Sec. 4.4), so the
#: system simulation peaks at a conservative g rate.
DEFAULT_DATA_RATE_BPS: float = 24e6

#: Basic rate used for management frames (probe/auth/assoc/beacons).
MANAGEMENT_RATE_BPS: float = 1e6

#: Auto-rate ladder: (fraction of range, data rate). Links degrade
#: with distance exactly as SNR-driven rate control does on real
#: hardware — the coverage fringe runs at b rates.
RATE_LADDER = (
    (0.35, 24e6),
    (0.50, 11e6),
    (0.65, 5.5e6),
    (0.80, 2e6),
    (1.00, 1e6),
)

_VALID_CHANNELS = range(1, 15)


def channel_frequency_mhz(channel: int) -> float:
    """Centre frequency of a 2.4 GHz channel (channel 14 is special)."""
    if channel not in _VALID_CHANNELS:
        raise ValueError(f"invalid 2.4 GHz channel: {channel}")
    if channel == 14:
        return 2484.0
    return 2407.0 + 5.0 * channel

def channels_interfere(a: int, b: int) -> bool:
    """True if two 2.4 GHz channels overlap spectrally.

    Channels whose numbers differ by fewer than 5 overlap (22 MHz-wide
    masks on a 5 MHz grid). Channels 1/6/11 are mutually orthogonal.
    """
    if a not in _VALID_CHANNELS or b not in _VALID_CHANNELS:
        raise ValueError(f"invalid channel pair: {a}, {b}")
    return abs(a - b) < 5


#: Precomputed symmetric spectral-overlap table for *distinct*
#: interfering channel pairs: ``(a, b) → (5 − |a − b|) / 5``. The
#: medium's hot path uses ``INTERFERENCE_OVERLAP.get(pair)`` instead of
#: calling :func:`channels_interfere` under try/except per pair —
#: a missing key means "no spectral interference contribution" (either
#: orthogonal or not a valid 2.4 GHz channel), matching the historical
#: swallow-``ValueError`` behaviour exactly.
INTERFERENCE_OVERLAP: Dict[Tuple[int, int], float] = {
    (a, b): (5 - abs(a - b)) / 5.0
    for a in _VALID_CHANNELS
    for b in _VALID_CHANNELS
    if a != b and abs(a - b) < 5
}


def frame_airtime(size_bytes: int, rate_bps: float, preamble_s: float = 192e-6) -> float:
    """Time on air for a frame: PHY preamble plus payload at ``rate_bps``."""
    if size_bytes < 0:
        raise ValueError("negative frame size")
    if rate_bps <= 0:
        raise ValueError("rate must be positive")
    return preamble_s + size_bytes * 8.0 / rate_bps
