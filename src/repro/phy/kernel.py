"""Vectorized PHY delivery kernel: the batched half of broadcast fan-out.

``Medium._deliver_broadcast`` visits every radio in a fan-out snapshot
and, for each one in range, draws a loss uniform from the phy RNG
stream. PR 5/PR 9 made the snapshots small and flat; this module makes
the *per-entry geometry* cheap by keeping a struct-of-arrays form of
each snapshot — parallel numpy arrays of ``(x, y, reg_seq)`` for the
static radios, built once per cache fill — so one batched computation
per fan-out rejects every out-of-range static candidate at C speed.

Identity contract (why ``kernel = "vector"`` is byte-identical to the
scalar oracle — DESIGN.md §6.3, pinned by ``tests/test_phy_kernel.py``):

- The batch is a *conservative pre-filter*, not the decision. The
  ``|dx| <= range`` reject is exact (it is the scalar loop's bbox test
  verbatim), and the squared-distance test keeps everything within
  ``range² · (1 + 2e-9)`` — ``numpy.hypot`` is **not** bit-identical
  to ``math.hypot`` on this formula (measured ~0.6% of uniform draws
  differ in the last ulp), so the kernel never takes a sqrt. Every
  candidate the batch keeps re-runs the exact scalar checks
  (``math.hypot``, same expression, same operand order) in the Medium;
  the batch can only *over*-keep, never drop a radio the oracle would
  have visited.
- Survivor order is snapshot order: static survivors come back as
  ascending snapshot row positions (the snapshot is ``reg_seq``-sorted
  at fill time) merged with the always-visited mobile rows, so the
  Medium draws loss uniforms for exactly the radios the oracle draws
  for, in exactly the oracle's order.
- :func:`batch_loss` mirrors ``propagation.combined_loss`` with the
  same operand order per lane; elementwise numpy arithmetic rounds
  identically to scalar Python floats, so the loss values compared
  against the draws are bit-identical too.

Purity contract (enforced by simlint SL016 ``kernel-purity``): this is
the only module under ``repro/phy/`` that may import numpy, and the
kernel must stay a pure function of its arguments — no trace emission,
no simulation clock, and no randomness source of its own. Loss draws
belong to the Medium, taken from the phy ``random.Random`` stream in
snapshot order; the kernel only decides *which* radios get one.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

#: Below this many *static* rows the numpy round-trip (array indexing,
#: ufunc dispatch) costs more than the scalar loop saves, so
#: :func:`build_arrays` declines and the Medium keeps the oracle loop.
#: Both paths are digest-identical; this is purely a speed knob.
KERNEL_MIN_BATCH = 24

#: Squared relative slack on the sqrt-free range test. The scalar
#: oracle accepts ``math.hypot(dx, dy) <= range``; the float error in
#: ``dx² + dy²`` versus the true squared distance is a few ulp
#: (≈ 5·2⁻⁵³ relative), so a 2e-9 relative margin on ``range²`` keeps
#: every oracle-accepted radio with orders of magnitude to spare while
#: still rejecting everything meaningfully out of range.
_RANGE_SLACK_SQ = (1.0 + 1e-9) ** 2


class FanoutArrays:
    """Struct-of-arrays form of one fan-out snapshot.

    Built once per snapshot fill (:func:`build_arrays`) and cached by
    the Medium alongside the snapshot list; the ``is``-identity of the
    source list validates the cache, so any membership change (which
    replaces the snapshot object) implicitly invalidates the arrays.

    ``rows`` holds each static radio's *position in the snapshot list*
    — the merge key. Snapshot order is ``reg_seq`` order at fill time,
    and the scalar oracle iterates the same list, so row order is
    exactly the oracle's visit (and RNG draw) order even if a radio's
    live ``reg_seq`` changes under re-registration. ``seqs`` keeps the
    registration sequence numbers for introspection and tests.
    """

    __slots__ = ("xs", "ys", "rows", "seqs", "mobile_rows")

    def __init__(
        self,
        xs: "np.ndarray",
        ys: "np.ndarray",
        rows: "np.ndarray",
        seqs: "np.ndarray",
        mobile_rows: List[int],
    ):
        self.xs = xs
        self.ys = ys
        self.rows = rows
        self.seqs = seqs
        self.mobile_rows = mobile_rows


def build_arrays(
    entries: Sequence[Tuple[Any, Optional[float], Optional[float]]],
) -> Optional[FanoutArrays]:
    """SoA form of a ``(radio, x, y)`` snapshot, or None if too small.

    ``x is None`` marks a mobile radio (position resolved at delivery
    time); mobiles are always candidates, so only their row positions
    are kept. Returns None when the static population is under
    :data:`KERNEL_MIN_BATCH` — the scalar loop wins there.
    """
    xs: List[float] = []
    ys: List[float] = []
    rows: List[int] = []
    seqs: List[int] = []
    mobile_rows: List[int] = []
    for row, (radio, x, y) in enumerate(entries):
        if x is None:
            mobile_rows.append(row)
        else:
            rows.append(row)
            xs.append(x)
            ys.append(y)
            seqs.append(radio.reg_seq)
    if len(rows) < KERNEL_MIN_BATCH:
        return None
    return FanoutArrays(
        np.asarray(xs, dtype=np.float64),
        np.asarray(ys, dtype=np.float64),
        np.asarray(rows, dtype=np.intp),
        np.asarray(seqs, dtype=np.int64),
        mobile_rows,
    )


def candidate_rows(
    arrays: FanoutArrays, sender_x: float, sender_y: float, range_m: float
) -> List[int]:
    """Snapshot rows that might be in range, in snapshot order.

    One batched pass over the static rows: the exact ``|dx| <= range``
    bbox reject, then the conservative sqrt-free squared-distance test
    (see :data:`_RANGE_SLACK_SQ`). Mobile rows are always included —
    their positions are delivery-time state the kernel cannot see. The
    result is ascending row positions, i.e. the scalar oracle's visit
    order restricted to radios that can possibly pass its range check.
    """
    dx = sender_x - arrays.xs
    keep = np.abs(dx) <= range_m
    dy = sender_y - arrays.ys
    keep &= dx * dx + dy * dy <= (range_m * range_m) * _RANGE_SLACK_SQ
    rows = arrays.rows[keep].tolist()
    mobile_rows = arrays.mobile_rows
    if mobile_rows:
        rows.extend(mobile_rows)
        rows.sort()
    return rows


def batch_loss(
    dists: Sequence[float],
    range_m: float,
    base_loss: float,
    fringe_start_m: float,
    fringe_span_m: float,
    extra: float,
) -> "np.ndarray":
    """Vectorized mirror of ``propagation.combined_loss`` per distance.

    Each lane computes the scalar formula with the same operand order
    — flat floor inside the fringe, quadratic roll-off
    ``base + (1-base)·f·f`` across it, certainty beyond range, plus the
    interference ``extra``, capped at 1.0 — so every element is
    bit-identical to the scalar helper on the same input
    (``tests/test_phy_kernel.py`` pins this). Inputs are delivery-time
    ``math.hypot`` distances; the kernel never computes a sqrt itself.
    """
    dist = np.asarray(dists, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        # edge_start == 1.0 makes the span zero; the fringe lane is
        # junk there but never selected (everything in range is at or
        # inside the fringe start), exactly like the scalar branch.
        fraction = (dist - fringe_start_m) / fringe_span_m
        fringe = base_loss + (1.0 - base_loss) * fraction * fraction
    loss = np.where(dist <= fringe_start_m, base_loss, fringe)
    loss = np.where(dist > range_m, 1.0, loss)
    return np.minimum(loss + extra, 1.0)
