"""Partitioned mediums: independent broadcast domains per geographic region.

A metro world is not one broadcast domain. Two radios twenty blocks
apart can never exchange a frame, interfere, or even share useful
index state — yet a single :class:`~repro.phy.radio.Medium` makes
every membership change invalidate caches the whole city shares. This
module splits the world into *regions*, each backed by its own
``Medium`` (the isolation idiom of apnetsim's
``wmediumd_multimedium.py``: one wmediumd instance per segment, nodes
re-homed on crossing), so membership churn, busy maps, interference
memos, and spatial grids stay region-local.

:class:`MediumPartitions` is the facade the scenario layer wires up
(construction of the ``Medium`` instances themselves stays in
``repro.scenario.build`` — the worldbuild rule SL007 owns that). It
maps positions to regions, and *manages* mobile radios: a periodic
poll compares each managed radio's current position against its
current home and hands it off — ``unregister`` from the old medium,
``register`` with the new — when it crosses a region edge.

Determinism contract:

- Regions are matched in declaration order; the first region whose
  half-open bbox (``x_min <= x < x_max``, same for y) contains the
  point wins, with the default medium as fallback. Declaration order
  is spec order, so region overlap resolves identically everywhere.
- Managed radios are polled in enrollment order on a fixed period, so
  the sequence of (unregister, register) pairs — and hence ``reg_seq``
  assignment in the receiving medium — is a pure function of spec +
  seed.
- Each region's medium draws loss from its own named RNG stream
  (``phy:<region>``), so adding a region never perturbs another
  region's draw sequence.

Handoff is heavier than a retune (the radio re-registers, re-pins,
and re-enters the spatial grid) but happens at region-crossing rate —
once per minutes of simulated driving — not at frame rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import trace as tr
from repro.phy.radio import Medium, Radio
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Region:
    """A named axis-aligned region of the world (half-open bbox)."""

    name: str
    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def contains(self, point: Any) -> bool:
        return (
            self.x_min <= point.x < self.x_max
            and self.y_min <= point.y < self.y_max
        )


class MediumPartitions:
    """Routes radios to per-region mediums and hands off at edges.

    The facade holds pre-constructed mediums — it never builds one
    (SL007: medium construction belongs to ``repro.scenario``). Static
    radios are simply registered with ``medium_for(position)`` at
    build time and never move; mobile radios are enrolled via
    :meth:`manage`, which starts the poll loop on first use.
    """

    def __init__(self, sim: Simulator, default: Medium, handoff_period_s: float = 1.0):
        if handoff_period_s <= 0.0:
            raise ValueError("handoff_period_s must be positive")
        self.sim = sim
        self.default = default
        self.handoff_period_s = handoff_period_s
        self._regions: List[Tuple[Region, Medium]] = []
        #: Enrollment-ordered managed radios (dict-as-ordered-set).
        self._managed: Dict[Radio, None] = {}
        self._polling = False
        self.handoffs = 0

    @property
    def mediums(self) -> List[Medium]:
        """Every distinct medium, default first, then declaration order."""
        out: List[Medium] = [self.default]
        for _, medium in self._regions:
            if medium not in out:
                out.append(medium)
        return out

    def add_region(self, region: Region, medium: Medium) -> None:
        """Declare ``region`` as served by ``medium`` (spec order)."""
        if any(existing.name == region.name for existing, _ in self._regions):
            raise ValueError(f"duplicate region name: {region.name!r}")
        self._regions.append((region, medium))

    def region_for(self, point: Any) -> Optional[Region]:
        """First declared region containing ``point``, else ``None``."""
        for region, _ in self._regions:
            if region.contains(point):
                return region
        return None

    def medium_for(self, point: Any) -> Medium:
        """The medium serving ``point`` (default when no region matches)."""
        for region, medium in self._regions:
            if region.contains(point):
                return medium
        return self.default

    def manage(self, radio: Radio) -> None:
        """Enroll a mobile radio for edge handoff.

        The radio must already be registered with the medium serving
        its current position (the build layer guarantees this). The
        poll timer starts on the first enrollment so partition-free
        worlds never schedule it.
        """
        if radio in self._managed:
            return
        self._managed[radio] = None
        if not self._polling and self._regions:
            self._polling = True
            self.sim.schedule(self.handoff_period_s, self._poll)

    def _poll(self) -> None:
        for radio in list(self._managed):
            target = self.medium_for(radio.position())
            if target is not radio.medium:
                self._handoff(radio, target)
        self.sim.schedule(self.handoff_period_s, self._poll)

    def _handoff(self, radio: Radio, target: Medium) -> None:
        source = radio.medium
        source.unregister(radio)
        radio.medium = target
        target.register(radio)
        self.handoffs += 1
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.PHY_PARTITION_HANDOFF,
                self.sim.now,
                radio=radio.name,
                from_region=self._region_name(source),
                to_region=self._region_name(target),
            )

    def _region_name(self, medium: Medium) -> str:
        for region, candidate in self._regions:
            if candidate is medium:
                return region.name
        return "default"
