"""Propagation and frame-loss model.

The analytical model assumes a circular Wi-Fi range (100 m in the
paper) and a flat message-loss probability ``h`` (10%). The simulated
medium keeps those two knobs and adds an edge roll-off: loss rises
smoothly from the floor towards 1 near the edge of range, which is what
produces the realistic "lossy fringe" that vehicular measurement
studies (Cabernet, CarTel) report.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PropagationModel:
    """Distance → frame-loss probability.

    ``edge_start`` is the fraction of range where the fringe begins;
    inside it the loss is the flat floor ``base_loss``.
    """

    range_m: float = 100.0
    base_loss: float = 0.10
    edge_start: float = 0.70

    def __post_init__(self) -> None:
        if not 0 <= self.base_loss < 1:
            raise ValueError("base_loss must be in [0, 1)")
        if not 0 < self.edge_start <= 1:
            raise ValueError("edge_start must be in (0, 1]")
        if self.range_m <= 0:
            raise ValueError("range must be positive")

    def in_range(self, dist_m: float) -> bool:
        return dist_m <= self.range_m

    def loss_probability(self, dist_m: float) -> float:
        """Per-frame loss probability at ``dist_m`` metres.

        Beyond range the frame is always lost. Within the fringe the
        loss interpolates quadratically from the floor to 1.
        """
        if dist_m > self.range_m:
            return 1.0
        fringe_start = self.edge_start * self.range_m
        if dist_m <= fringe_start:
            return self.base_loss
        span = self.range_m - fringe_start
        fraction = (dist_m - fringe_start) / span
        return self.base_loss + (1.0 - self.base_loss) * fraction * fraction
