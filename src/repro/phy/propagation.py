"""Propagation and frame-loss model.

The analytical model assumes a circular Wi-Fi range (100 m in the
paper) and a flat message-loss probability ``h`` (10%). The simulated
medium keeps those two knobs and adds an edge roll-off: loss rises
smoothly from the floor towards 1 near the edge of range, which is what
produces the realistic "lossy fringe" that vehicular measurement
studies (Cabernet, CarTel) report.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PropagationModel:
    """Distance → frame-loss probability.

    ``edge_start`` is the fraction of range where the fringe begins;
    inside it the loss is the flat floor ``base_loss``.

    The fringe geometry (``fringe_start_m``, ``fringe_span_m``) is
    precomputed once: every delivery consults it, and computing
    ``edge_start * range_m`` per frame would both cost and invite the
    formula to be re-derived (and drift) at call sites. This is the
    *single* home of the loss formula — the medium's scalar delivery
    paths and the vectorized kernel (``repro.phy.kernel``) both defer
    to :meth:`loss_probability` / :func:`combined_loss`, and
    ``tests/test_phy_kernel.py`` pins their agreement.
    """

    range_m: float = 100.0
    base_loss: float = 0.10
    edge_start: float = 0.70
    #: Derived: distance where the fringe roll-off begins / its width.
    fringe_start_m: float = field(init=False, repr=False, compare=False)
    fringe_span_m: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.base_loss < 1:
            raise ValueError("base_loss must be in [0, 1)")
        if not 0 < self.edge_start <= 1:
            raise ValueError("edge_start must be in (0, 1]")
        if self.range_m <= 0:
            raise ValueError("range must be positive")
        self.fringe_start_m = self.edge_start * self.range_m
        self.fringe_span_m = self.range_m - self.fringe_start_m

    def in_range(self, dist_m: float) -> bool:
        return dist_m <= self.range_m

    def loss_probability(self, dist_m: float) -> float:
        """Per-frame loss probability at ``dist_m`` metres.

        Beyond range the frame is always lost. Within the fringe the
        loss interpolates quadratically from the floor to 1.
        """
        if dist_m > self.range_m:
            return 1.0
        if dist_m <= self.fringe_start_m:
            return self.base_loss
        fraction = (dist_m - self.fringe_start_m) / self.fringe_span_m
        return self.base_loss + (1.0 - self.base_loss) * fraction * fraction


def combined_loss(model: PropagationModel, dist_m: float, extra: float) -> float:
    """Delivery-time loss: path loss at ``dist_m`` plus interference.

    ``extra`` is the interference contribution
    (:meth:`repro.phy.radio.Medium.interference_loss`); the sum is
    capped at certainty. Every delivery path — broadcast, unicast ARQ,
    and the vectorized kernel's mirror — owes its loss to this one
    composition, so the formula cannot fork.
    """
    loss = model.loss_probability(dist_m) + extra
    return loss if loss < 1.0 else 1.0
