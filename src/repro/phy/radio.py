"""Radio hardware and the shared wireless medium.

``Medium`` is the broadcast domain: it owns all radios, serialises
transmissions per channel (a first-order stand-in for CSMA/CA — the
channel is a shared 11 Mbps pipe), and applies the propagation model's
per-receiver loss draw at delivery time.

``Radio`` models one half-duplex 802.11 card: it is tuned to exactly
one channel, can be made *deaf* for the duration of a hardware reset
(the Spider driver uses this to model channel-switch latency), and
hands received frames to whatever MAC entity registered ``on_receive``.

Simplifications (documented per DESIGN.md §6): no collision model —
per-channel FIFO serialisation approximates medium sharing; frames on
spectrally overlapping but unequal channels are not delivered (the
evaluation only uses the orthogonal channels 1/6/11, where this is
exact).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.obs import trace as tr
from repro.phy.channels import (
    DEFAULT_DATA_RATE_BPS,
    RATE_LADDER,
    channels_interfere,
    frame_airtime,
)
from repro.phy.propagation import PropagationModel
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.world.geometry import distance
from repro.world.mobility import MobilityModel


class Radio:
    """One 802.11 card attached to a (possibly mobile) node."""

    def __init__(
        self,
        medium: "Medium",
        mobility: MobilityModel,
        channel: int,
        name: str = "radio",
        address: Optional[str] = None,
    ):
        self.medium = medium
        self.mobility = mobility
        self.channel = channel
        self.name = name
        self.address = address if address is not None else name
        self.on_receive: Optional[Callable[[Any], None]] = None
        self.deaf_until: float = 0.0
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_lost = 0
        #: Accumulated airtime (s) spent transmitting / receiving /
        #: deaf in hardware resets — the inputs to the energy model.
        self.tx_airtime = 0.0
        self.rx_airtime = 0.0
        self.deaf_time = 0.0
        #: RSSI (dBm) of the most recently delivered frame; handlers may
        #: read this synchronously inside ``on_receive``, as a real
        #: driver reads the radiotap header.
        self.last_rssi: float = -100.0
        #: Invoked when a unicast frame exhausts its ARQ attempts (the
        #: hardware's TX-status "failed" report); APs use this to move
        #: the frame into the destination's power-save buffer.
        self.on_unicast_failure: Optional[Callable[[Any], None]] = None
        medium.register(self)

    @property
    def sim(self) -> Simulator:
        return self.medium.sim

    def position(self):
        return self.mobility.position(self.sim.now)

    @property
    def deaf(self) -> bool:
        """True while the card cannot send or receive (hardware reset)."""
        return self.sim.now < self.deaf_until

    def set_channel(self, channel: int) -> None:
        """Retune instantly. Drivers model reset latency via go_deaf()."""
        trace = self.sim.trace
        if trace is not None and channel != self.channel:
            trace.emit(tr.PHY_CHANNEL_SET, self.sim.now, radio=self.name, channel=channel)
        self.channel = channel

    def go_deaf(self, duration: float) -> None:
        """Mark the card unable to send/receive for ``duration`` seconds."""
        new_until = self.sim.now + duration
        added = new_until - max(self.sim.now, self.deaf_until)
        if added > 0:
            self.deaf_time += added
        self.deaf_until = max(self.deaf_until, new_until)

    def transmit(self, frame: Any) -> bool:
        """Queue a frame for transmission on the current channel.

        Returns False (and drops the frame) if the card is deaf. The
        frame must expose ``size_bytes`` and ``rate_bps``. Unicast
        data frames get their rate re-picked here by the auto-rate
        controller — rates are a property of the link at transmit time,
        not of when the frame was queued.
        """
        if self.deaf:
            return False
        if getattr(frame, "bufferable", False) or getattr(frame, "needs_ack", False):
            from repro.mac.frames import FrameType  # local: avoid cycle

            if getattr(frame, "type", None) == FrameType.DATA and not frame.broadcast:
                frame.rate_bps = self.medium.suggest_rate(self, frame.dst)
        self.frames_sent += 1
        self.tx_airtime += self.medium.airtime(frame)
        self.medium.broadcast(self, frame)
        return True

    def _deliver(self, frame: Any, rssi: float = -100.0) -> None:
        self.frames_received += 1
        self.rx_airtime += self.medium.airtime(frame)
        self.last_rssi = rssi
        if self.on_receive is not None:
            self.on_receive(frame)


class Medium:
    """The shared wireless broadcast domain."""

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        streams: Optional[RandomStreams] = None,
        per_frame_overhead_s: float = 150e-6,
        max_arq_attempts: int = 4,
        adjacent_channel_loss: float = 0.25,
    ):
        self.sim = sim
        self.propagation = propagation or PropagationModel()
        self._rng = (streams or RandomStreams()).get("phy")
        self.per_frame_overhead_s = per_frame_overhead_s
        self.max_arq_attempts = max_arq_attempts
        #: Extra loss probability per *busy* spectrally-overlapping
        #: channel at delivery time, scaled by overlap ((5−Δ)/5). This
        #: is why real deployments (and the paper) stick to the
        #: orthogonal 1/6/11: frames near an active channel 3 or 9 pay.
        self.adjacent_channel_loss = adjacent_channel_loss
        self._radios: List[Radio] = []
        self._channel_busy_until: Dict[int, float] = {}
        #: Cumulative transmit airtime per channel (s): the utilisation
        #: view the metrics registry snapshots as ``phy.airtime_s.ch*``.
        self.airtime_by_channel: Dict[int, float] = {}
        metrics = sim.metrics
        if metrics is not None:
            metrics.add_source(self._metrics_source)

    def _metrics_source(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "phy.frames_sent": sum(radio.frames_sent for radio in self._radios),
            "phy.frames_dropped": sum(radio.frames_lost for radio in self._radios),
        }
        for channel, airtime in self.airtime_by_channel.items():
            out[f"phy.airtime_s.ch{channel}"] = airtime
        return out

    def register(self, radio: Radio) -> None:
        self._radios.append(radio)

    def unregister(self, radio: Radio) -> None:
        if radio in self._radios:
            self._radios.remove(radio)

    def radios_on_channel(self, channel: int) -> List[Radio]:
        return [radio for radio in self._radios if radio.channel == channel]

    def airtime(self, frame: Any) -> float:
        """Airtime including DIFS/backoff/ACK overhead approximation."""
        return frame_airtime(frame.size_bytes, frame.rate_bps) + self.per_frame_overhead_s

    def broadcast(self, sender: Radio, frame: Any, attempt: int = 1) -> None:
        """Serialise the frame onto the channel and schedule deliveries.

        The channel is FIFO: the transmission starts when the channel
        frees up, and completes one airtime later. Receivers are
        evaluated at completion time (mobile nodes may have moved).
        """
        channel = sender.channel
        airtime = self.airtime(frame)
        self.airtime_by_channel[channel] = self.airtime_by_channel.get(channel, 0.0) + airtime
        busy_until = self._channel_busy_until.get(channel, 0.0)
        start = max(self.sim.now, busy_until)
        end = start + airtime
        self._channel_busy_until[channel] = end
        self.sim.schedule(end - self.sim.now, self._complete, sender, frame, channel, attempt)

    def channel_busy_until(self, channel: int) -> float:
        return self._channel_busy_until.get(channel, 0.0)

    def _complete(self, sender: Radio, frame: Any, channel: int, attempt: int) -> None:
        if getattr(frame, "broadcast", False) or not getattr(frame, "needs_ack", False):
            self._deliver_broadcast(sender, frame, channel)
            return
        self._deliver_unicast(sender, frame, channel, attempt)

    @staticmethod
    def rssi_at(dist_m: float) -> float:
        """Log-distance path loss: ~-40 dBm at 10 m, -30 dB/decade."""
        return -40.0 - 30.0 * math.log10(max(dist_m, 1.0) / 10.0)

    def suggest_rate(self, sender: Radio, dst_address: str) -> float:
        """SNR-driven auto-rate: pick the data rate the link supports.

        Real senders track per-station rates from ACK feedback; the
        simulation uses the true distance as the SNR proxy. Unknown or
        out-of-range destinations get the top rate (the frame will be
        lost anyway).
        """
        target = None
        for radio in self._radios:
            if radio is not sender and radio.address == dst_address:
                target = radio
                break
        if target is None:
            return DEFAULT_DATA_RATE_BPS
        dist = distance(sender.mobility.position(self.sim.now), target.position())
        fraction = dist / self.propagation.range_m
        for threshold, rate in RATE_LADDER:
            if fraction <= threshold:
                return rate
        return RATE_LADDER[-1][1]

    def interference_loss(self, channel: int) -> float:
        """Extra loss from busy spectrally-overlapping channels."""
        if self.adjacent_channel_loss <= 0.0:
            return 0.0
        extra = 0.0
        for other, busy_until in self._channel_busy_until.items():
            if other == channel or busy_until <= self.sim.now:
                continue
            try:
                overlapping = channels_interfere(channel, other)
            except ValueError:
                continue
            if overlapping:
                overlap = (5 - abs(channel - other)) / 5.0
                extra += self.adjacent_channel_loss * overlap
        return min(extra, 0.9)

    def _loss_probability(self, channel: int, dist: float) -> float:
        base = self.propagation.loss_probability(dist)
        return min(1.0, base + self.interference_loss(channel))

    def _deliver_broadcast(self, sender: Radio, frame: Any, channel: int) -> None:
        sender_pos = sender.mobility.position(self.sim.now)
        for radio in self._radios:
            if radio is sender or radio.channel != channel or radio.deaf:
                continue
            dist = distance(sender_pos, radio.position())
            if not self.propagation.in_range(dist):
                continue
            if self._rng.random() < self._loss_probability(channel, dist):
                radio.frames_lost += 1
                trace = self.sim.trace
                if trace is not None:
                    trace.emit(
                        tr.PHY_FRAME_DROP, self.sim.now, channel=channel,
                        dst=radio.address, reason="loss",
                    )
                continue
            radio._deliver(frame, self.rssi_at(dist))

    def _deliver_unicast(self, sender: Radio, frame: Any, channel: int, attempt: int) -> None:
        """Unicast with link-layer ARQ: retry on loss up to the cap.

        Each retry occupies another airtime on the channel, which is
        what makes a lossy fringe expensive, not just unreliable.
        """
        target = None
        for radio in self._radios:
            if radio is not sender and radio.address == frame.dst:
                target = radio
                break
        if target is None or target.channel != channel or target.deaf:
            self._report_tx_failure(sender, frame)
            return  # destination gone or off-channel
        dist = distance(sender.mobility.position(self.sim.now), target.position())
        if not self.propagation.in_range(dist):
            self._report_tx_failure(sender, frame)
            return
        if self._rng.random() < self._loss_probability(channel, dist):
            target.frames_lost += 1
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    tr.PHY_FRAME_DROP, self.sim.now, channel=channel,
                    dst=target.address, reason="loss", attempt=attempt,
                )
            if attempt < self.max_arq_attempts and sender.channel == channel and not sender.deaf:
                # 802.11 retries stay within the TXOP: the retry goes
                # out immediately, ahead of anything queued behind it —
                # re-entering the FIFO would reorder the stream.
                airtime = self.airtime(frame)
                busy_until = self._channel_busy_until.get(channel, 0.0)
                self._channel_busy_until[channel] = max(busy_until, self.sim.now + airtime)
                self.sim.schedule(airtime, self._complete, sender, frame, channel, attempt + 1)
            else:
                self._report_tx_failure(sender, frame)
            return
        target._deliver(frame, self.rssi_at(dist))

    def _report_tx_failure(self, sender: Radio, frame: Any) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.PHY_FRAME_DROP, self.sim.now, channel=sender.channel,
                dst=getattr(frame, "dst", None), reason="arq-exhausted",
            )
        if sender.on_unicast_failure is not None:
            sender.on_unicast_failure(frame)
