"""Radio hardware and the shared wireless medium.

``Medium`` is the broadcast domain: it owns all radios, serialises
transmissions per channel (a first-order stand-in for CSMA/CA — the
channel is a shared 11 Mbps pipe), and applies the propagation model's
per-receiver loss draw at delivery time.

``Radio`` models one half-duplex 802.11 card: it is tuned to exactly
one channel, can be made *deaf* for the duration of a hardware reset
(the Spider driver uses this to model channel-switch latency), and
hands received frames to whatever MAC entity registered ``on_receive``.

The medium is fully indexed so the delivery path does no linear work
over the fleet (DESIGN.md §6): a per-channel registration-ordered
index, an address→radio map, an interference-loss memo, and an
airtime memo make per-frame cost independent of how many radios exist.
On top of those, a uniform-grid *spatial* index (cell size = the
propagation horizon, DESIGN.md §6.2) restricts broadcast fan-out to
the sender's 3×3 cell neighbourhood plus the channel's mobile radios,
so per-frame cost scales with *local density*, not world size. The
indexes preserve the exact per-receiver RNG draw order of the
historical linear scans — registration order within a channel — which
is what keeps every experiment digest byte-identical
(``tests/goldens/*.json``). Channel retunes must go through
``Radio.set_channel`` (never assign ``radio.channel`` directly), and
simlint rules SL008/SL015 keep linear scans from creeping back in.
The pre-spatial full-channel scan survives as the oracle path behind
``spatial_index=False`` (spec: ``[phy] spatial_index``), which is how
the grid is proven digest-identical on every existing scenario.

Simplifications (documented per DESIGN.md §6): no collision model —
per-channel FIFO serialisation approximates medium sharing; frames on
spectrally overlapping but unequal channels are not delivered (the
evaluation only uses the orthogonal channels 1/6/11, where this is
exact).
"""

from __future__ import annotations

import math
from bisect import insort
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import trace as tr
from repro.phy import kernel as _kernel
from repro.phy.channels import (
    DEFAULT_DATA_RATE_BPS,
    INTERFERENCE_OVERLAP,
    RATE_LADDER,
    frame_airtime,
)
from repro.phy.propagation import PropagationModel, combined_loss
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.world.geometry import distance
from repro.world.mobility import MobilityModel, StaticMobility

_hypot = math.hypot
_reg_seq = attrgetter("reg_seq")

#: ``FrameType.DATA``, resolved on first use (importing ``mac.frames``
#: at module load would cycle through the package imports).
_DATA_FRAME_TYPE: Any = None


def _data_frame_type() -> Any:
    global _DATA_FRAME_TYPE
    if _DATA_FRAME_TYPE is None:
        from repro.mac.frames import FrameType

        _DATA_FRAME_TYPE = FrameType.DATA
    return _DATA_FRAME_TYPE


class Radio:
    """One 802.11 card attached to a (possibly mobile) node."""

    def __init__(
        self,
        medium: "Medium",
        mobility: MobilityModel,
        channel: int,
        name: str = "radio",
        address: Optional[str] = None,
    ):
        self.medium = medium
        self.sim: Simulator = medium.sim
        self.mobility = mobility
        self.channel = channel
        self.name = name
        self.address = address if address is not None else name
        self.on_receive: Optional[Callable[[Any], None]] = None
        self.deaf_until: float = 0.0
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_lost = 0
        #: Accumulated airtime (s) spent transmitting / receiving /
        #: deaf in hardware resets — the inputs to the energy model.
        self.tx_airtime = 0.0
        self.rx_airtime = 0.0
        self.deaf_time = 0.0
        #: RSSI (dBm) of the most recently delivered frame; handlers may
        #: read this synchronously inside ``on_receive``, as a real
        #: driver reads the radiotap header.
        self.last_rssi: float = -100.0
        #: Invoked when a unicast frame exhausts its ARQ attempts (the
        #: hardware's TX-status "failed" report); APs use this to move
        #: the frame into the destination's power-save buffer.
        self.on_unicast_failure: Optional[Callable[[Any], None]] = None
        #: Registration sequence number, assigned by ``Medium.register``;
        #: the per-channel index keeps radios sorted by it so delivery
        #: order (and the RNG draw order) matches the historical
        #: registration-ordered scan exactly.
        self.reg_seq: int = -1
        #: Per-timestamp position cache: mobile positions are pure
        #: functions of time, so within one instant every query (range
        #: check, rate pick, fan-out) reuses one computation. Radios on
        #: a (exactly) ``StaticMobility`` pin their position once per
        #: *registration* — ``Medium.register`` calls ``_repin`` — so
        #: the AP fleet never pays a position call again, and a radio
        #: re-registered with a replaced mobility never serves a stale
        #: pin to the fan-out snapshot.
        self._static = False
        self._position_time: Optional[float] = None
        self._position_value: Any = None
        #: Spatial-index cell assigned by ``Medium._index_add`` (static
        #: radios only); removal uses this stored key, so the index
        #: stays consistent even if the pin is refreshed in between.
        self._grid_cell: Optional[Tuple[int, int]] = None
        #: Static-sender pair cache (``Medium._sender_pairs``):
        #: ``(medium, channel, static_epoch, mobile_epoch, statics,
        #: mobiles)``, or None. Held on the radio — the natural cache
        #: key for a static sender — and revalidated against the
        #: medium's split membership epochs on every broadcast.
        self._pair_state: Any = None
        medium.register(self)

    def _repin(self) -> None:
        """Refresh the static-position pin from the current mobility.

        Called on every ``Medium.register`` (including re-registration
        after ``unregister`` and partition handoff): the pin, the
        static flag, and the per-instant cache all restart from the
        mobility model the radio holds *now*.
        """
        self._static = type(self.mobility) is StaticMobility
        self._position_time = None
        self._position_value = self.mobility.position(0.0) if self._static else None
        self._pair_state = None

    def position(self):
        if self._static:
            return self._position_value
        now = self.sim.now
        if now != self._position_time:
            self._position_time = now
            self._position_value = self.mobility.position(now)
        return self._position_value

    @property
    def deaf(self) -> bool:
        """True while the card cannot send or receive (hardware reset)."""
        return self.sim.now < self.deaf_until

    def set_channel(self, channel: int) -> None:
        """Retune instantly. Drivers model reset latency via go_deaf().

        This is the *only* legal way to change ``self.channel``: the
        medium's per-channel index is maintained here.
        """
        trace = self.sim.trace
        if trace is not None and channel != self.channel:
            trace.emit(tr.PHY_CHANNEL_SET, self.sim.now, radio=self.name, channel=channel)
        if channel != self.channel:
            self.medium._retune(self, self.channel, channel)
        self.channel = channel

    def go_deaf(self, duration: float) -> None:
        """Mark the card unable to send/receive for ``duration`` seconds."""
        new_until = self.sim.now + duration
        added = new_until - max(self.sim.now, self.deaf_until)
        if added > 0:
            self.deaf_time += added
        self.deaf_until = max(self.deaf_until, new_until)

    def transmit(self, frame: Any) -> bool:
        """Queue a frame for transmission on the current channel.

        Returns False (and drops the frame) if the card is deaf. The
        frame must expose ``size_bytes`` and ``rate_bps``. Unicast
        data frames get their rate re-picked here by the auto-rate
        controller — rates are a property of the link at transmit time,
        not of when the frame was queued.
        """
        if self.sim.now < self.deaf_until:
            return False
        medium = self.medium
        # Same predicate as the historical getattr chain, reordered so
        # the common non-data case (beacons, probes, ACK-less mgmt)
        # resolves on the first test.
        ftype = _DATA_FRAME_TYPE
        if ftype is None:
            ftype = _data_frame_type()
        if (
            getattr(frame, "type", None) is ftype
            and not frame.broadcast
            and (getattr(frame, "bufferable", False) or getattr(frame, "needs_ack", False))
        ):
            frame.rate_bps = medium.suggest_rate(self, frame.dst)
        self.frames_sent += 1
        airtime = medium.airtime(frame)
        self.tx_airtime += airtime
        medium.broadcast(self, frame, airtime=airtime)
        return True

    def _deliver(self, frame: Any, rssi: float = -100.0, airtime: Optional[float] = None) -> None:
        self.frames_received += 1
        self.rx_airtime += self.medium.airtime(frame) if airtime is None else airtime
        self.last_rssi = rssi
        if self.on_receive is not None:
            self.on_receive(frame)


class Medium:
    """The shared wireless broadcast domain.

    Index invariants (the determinism contract — see DESIGN.md §6):

    - ``_by_channel[c]`` holds exactly the registered radios tuned to
      ``c``, iterable in *registration* order (``Radio.reg_seq``
      ascending), no matter how often radios retune. Broadcast fan-out
      draws per-receiver loss in this order, so it must equal the
      historical "scan all radios in registration order, filter by
      channel" order bit for bit.
    - ``_by_address[a]`` holds the registered radios with address
      ``a`` in registration order; unicast lookup takes the first
      entry that is not the sender, as the linear scan did.
    - ``_radios`` maps every registered radio to ``None`` in
      registration order (dict-as-ordered-set), making ``unregister``
      O(1).
    - ``_grid[c][(cx, cy)]`` (spatial index, DESIGN.md §6.2) holds the
      *static* radios of channel ``c`` whose pinned position falls in
      grid cell ``(cx, cy)``, each bucket sorted by ``reg_seq``; the
      cell edge is the propagation horizon, so every radio within
      range of a sender lies in the sender's 3×3 neighbourhood.
      ``_mobile[c]`` holds the channel's mobile radios (always
      visited — they may be anywhere at delivery time). Merging the
      neighbourhood with the mobile set and sorting by ``reg_seq``
      reproduces the registration-order scan exactly for every radio
      that can draw loss RNG; radios farther than one cell are
      provably out of range and never drew in the scalar scan either.
    """

    def __init__(
        self,
        sim: Simulator,
        propagation: Optional[PropagationModel] = None,
        streams: Optional[RandomStreams] = None,
        per_frame_overhead_s: float = 150e-6,
        max_arq_attempts: int = 4,
        adjacent_channel_loss: float = 0.25,
        spatial_index: bool = True,
        kernel: str = "vector",
        stream_name: str = "phy",
    ):
        if kernel not in ("scalar", "vector"):
            raise ValueError(f"unknown phy kernel {kernel!r} (use 'scalar' or 'vector')")
        self.sim = sim
        self.propagation = propagation or PropagationModel()
        self._rng = (streams or RandomStreams()).get(stream_name)
        self.per_frame_overhead_s = per_frame_overhead_s
        self.max_arq_attempts = max_arq_attempts
        #: Extra loss probability per *busy* spectrally-overlapping
        #: channel at delivery time, scaled by overlap ((5−Δ)/5). This
        #: is why real deployments (and the paper) stick to the
        #: orthogonal 1/6/11: frames near an active channel 3 or 9 pay.
        self.adjacent_channel_loss = adjacent_channel_loss
        self._radios: Dict[Radio, None] = {}
        self._by_channel: Dict[int, Dict[Radio, None]] = {}
        self._by_address: Dict[str, List[Radio]] = {}
        self._registrations = 0
        self._channel_busy_until: Dict[int, float] = {}
        #: Bumped whenever ``_channel_busy_until`` changes; together
        #: with ``sim.now`` it keys the interference-loss memo, so a
        #: memo hit is provably identical to recomputing.
        self._busy_version = 0
        self._interference_key: Tuple[float, int] = (-1.0, -1)
        self._interference_memo: Dict[int, float] = {}
        #: Channels spectrally within 4 of some channel that has ever
        #: carried a transmission. A channel outside this set provably
        #: has zero interference loss (no overlapping channel is in the
        #: busy map at all), so the common all-orthogonal case — the
        #: paper's 1/6/11 deployments — skips the memo machinery
        #: entirely. Synced lazily from the busy map's key set (keys
        #: are never removed, so the key count is a faithful version).
        self._interference_prone: set = set()
        self._prone_synced_channels = 0
        #: channel → (busy-map size at build, [(other, weighted loss)])
        #: — the spectral-overlap pairs of a channel, in the busy map's
        #: *insertion* order (keys are never removed, so the map size
        #: is a faithful build version and the iteration order is
        #: append-only). Caching the pairs keeps ``_compute_interference``
        #: from re-deriving overlaps per call; summing the cached list
        #: adds the same floats in the same order as the historical
        #: full-map walk, so memo entries stay bit-identical.
        self._overlap_pairs: Dict[int, Tuple[int, List[Tuple[int, float]]]] = {}
        #: (size_bytes, rate_bps) → airtime; frames are few-shaped, so
        #: this converges to a handful of entries per workload.
        self._airtime_memo: Dict[Tuple[int, float], float] = {}
        #: channel → fan-out snapshot: ``(radio, x, y)`` per registered
        #: radio in registration order, with coordinates pre-resolved
        #: for static radios (``None`` means "mobile — ask at delivery
        #: time"). Invalidated whenever the channel's membership
        #: changes; the delivery loop re-checks channel and deafness
        #: per visit, so a cached snapshot is byte-identical to
        #: rebuilding it from ``_by_channel``. This is the *scalar
        #: oracle* path (``spatial_index=False``).
        self._fanout_cache: Dict[int, List[Tuple[Radio, Optional[float], Optional[float]]]] = {}
        #: Spatial fan-out index (``spatial_index=True``, the default).
        #: Cell edge = propagation horizon: any receiver within range
        #: differs from the sender by at most one cell per axis.
        self._spatial = spatial_index
        self._cell_m = self.propagation.range_m
        self._grid: Dict[int, Dict[Tuple[int, int], List[Radio]]] = {}
        self._mobile: Dict[int, Dict[Radio, None]] = {}
        #: channel → sender cell → merged local snapshot (same entry
        #: shape as ``_fanout_cache``), invalidated with it.
        self._local_cache: Dict[
            int, Dict[Tuple[int, int], List[Tuple[Radio, Optional[float], Optional[float]]]]
        ] = {}
        #: Delivery kernel: ``"vector"`` (the default) batches the
        #: fan-out geometry through ``repro.phy.kernel``; ``"scalar"``
        #: keeps the historical per-entry loop as the oracle both are
        #: proven digest-identical against (spec: ``[phy] kernel``).
        self.kernel = kernel
        self._vector = kernel == "vector"
        #: snapshot key → ``(entries, FanoutArrays | None)``: the
        #: struct-of-arrays form of a fan-out snapshot, built lazily on
        #: first vector delivery and validated by the *identity* of the
        #: snapshot list (invalidation replaces the list object, never
        #: mutates it, so ``is`` is exact). Keys are the channel (scan
        #: path) or ``(channel, cell)`` (spatial path) — disjoint types,
        #: one map.
        self._soa_cache: Dict[Any, Tuple[Any, Any]] = {}
        #: Per-channel membership epochs, split by kind: any static
        #: (resp. mobile) radio joining or leaving a channel bumps that
        #: channel's static (resp. mobile) version. The snapshot caches
        #: invalidate on either; the pair cache revalidates each half
        #: independently.
        self._static_version: Dict[int, int] = {}
        self._mobile_version: Dict[int, int] = {}
        #: Cumulative transmit airtime per channel (s): the utilisation
        #: view the metrics registry snapshots as ``phy.airtime_s.ch*``.
        self.airtime_by_channel: Dict[int, float] = {}
        metrics = sim.metrics
        if metrics is not None:
            metrics.add_source(self._metrics_source)

    def _metrics_source(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "phy.frames_sent": sum(radio.frames_sent for radio in self._radios),
            "phy.frames_dropped": sum(radio.frames_lost for radio in self._radios),
        }
        for channel, airtime in self.airtime_by_channel.items():
            out[f"phy.airtime_s.ch{channel}"] = airtime
        return out

    # -- registry maintenance -------------------------------------------

    def register(self, radio: Radio) -> None:
        """Add a radio; re-registering after unregister re-queues it last.

        Registration refreshes the radio's static-position pin
        (``Radio._repin``) *before* indexing, so a radio re-registered
        after ``unregister`` — possibly relocated under a new mobility
        model, or handed off from another partition's medium — is
        indexed (and snapshot) at its current position, never a stale
        cached one.
        """
        if radio in self._radios:
            return
        radio.reg_seq = self._registrations
        self._registrations += 1
        self._radios[radio] = None
        radio._repin()
        # The new radio has the highest reg_seq, so appending keeps the
        # channel index registration-ordered.
        self._by_channel.setdefault(radio.channel, {})[radio] = None
        self._by_address.setdefault(radio.address, []).append(radio)
        if self._spatial:
            self._index_add(radio, radio.channel)
        self._invalidate(radio.channel, radio._static)

    def unregister(self, radio: Radio) -> None:
        if radio not in self._radios:
            return
        del self._radios[radio]
        channel_index = self._by_channel.get(radio.channel)
        if channel_index is not None:
            channel_index.pop(radio, None)
        if self._spatial:
            self._index_remove(radio, radio.channel)
        self._invalidate(radio.channel, radio._static)
        peers = self._by_address.get(radio.address)
        if peers is not None:
            if radio in peers:
                peers.remove(radio)
            if not peers:
                del self._by_address[radio.address]

    def _retune(self, radio: Radio, old_channel: int, new_channel: int) -> None:
        """Move a radio between channel indexes (``Radio.set_channel``).

        The common case — the retuning radio registered after everything
        already on the target channel (clients retune; the AP fleet is
        wired first) — is a plain O(1) append. When an *earlier*
        registrant retunes onto a channel holding later ones, the index
        is re-sorted by ``reg_seq`` so delivery order still matches the
        historical registration-ordered scan.
        """
        if radio not in self._radios:
            return  # unregistered radios may retune freely
        self._invalidate(old_channel, radio._static)
        self._invalidate(new_channel, radio._static)
        old_index = self._by_channel.get(old_channel)
        if old_index is not None:
            old_index.pop(radio, None)
        index = self._by_channel.setdefault(new_channel, {})
        if index and next(reversed(index)).reg_seq > radio.reg_seq:
            index[radio] = None
            ordered = sorted(index, key=_reg_seq)
            index.clear()
            for entry in ordered:
                index[entry] = None
        else:
            index[radio] = None
        if self._spatial:
            self._index_remove(radio, old_channel)
            self._index_add(radio, new_channel)

    def _invalidate(self, channel: int, static_member: bool) -> None:
        """Drop the channel's cached fan-out snapshots (both paths).

        ``static_member`` says which membership kind changed; the
        matching epoch counter is bumped so the pair cache rebuilds
        only the half that is actually stale.
        """
        self._fanout_cache.pop(channel, None)
        self._local_cache.pop(channel, None)
        if static_member:
            self._static_version[channel] = self._static_version.get(channel, 0) + 1
        else:
            self._mobile_version[channel] = self._mobile_version.get(channel, 0) + 1

    def _index_add(self, radio: Radio, channel: int) -> None:
        """Insert into the spatial index, preserving per-bucket reg order.

        Static radios land in the grid cell of their pinned position
        (stored on the radio, so removal is exact); mobile radios join
        the channel's always-visited mobile set. Both structures keep
        ``reg_seq`` order so the fan-out merge stays a sort of already
        mostly-ordered runs.
        """
        if radio._static:
            position = radio._position_value
            cell = self._cell_m
            key = (int(position.x // cell), int(position.y // cell))
            radio._grid_cell = key
            bucket = self._grid.setdefault(channel, {}).setdefault(key, [])
            if bucket and bucket[-1].reg_seq > radio.reg_seq:
                insort(bucket, radio, key=_reg_seq)
            else:
                bucket.append(radio)
            return
        mobile = self._mobile.setdefault(channel, {})
        if mobile and next(reversed(mobile)).reg_seq > radio.reg_seq:
            mobile[radio] = None
            ordered = sorted(mobile, key=_reg_seq)
            mobile.clear()
            for entry in ordered:
                mobile[entry] = None
        else:
            mobile[radio] = None

    def _index_remove(self, radio: Radio, channel: int) -> None:
        """Remove from the spatial index (cell key stored at insertion)."""
        if radio._static:
            cells = self._grid.get(channel)
            if cells is None:
                return
            bucket = cells.get(radio._grid_cell)
            if bucket is not None and radio in bucket:
                bucket.remove(radio)
                if not bucket:
                    del cells[radio._grid_cell]
            return
        mobile = self._mobile.get(channel)
        if mobile is not None:
            mobile.pop(radio, None)

    def radios_on_channel(self, channel: int) -> List[Radio]:
        """Registered radios tuned to ``channel``, in registration order."""
        index = self._by_channel.get(channel)
        return list(index) if index else []

    def _first_with_address(self, address: str, sender: Radio) -> Optional[Radio]:
        """First-registered radio with ``address`` that is not ``sender``."""
        for radio in self._by_address.get(address, ()):
            if radio is not sender:
                return radio
        return None

    # -- transmission ----------------------------------------------------

    def airtime(self, frame: Any) -> float:
        """Airtime including DIFS/backoff/ACK overhead approximation."""
        key = (frame.size_bytes, frame.rate_bps)
        cached = self._airtime_memo.get(key)
        if cached is None:
            cached = frame_airtime(key[0], key[1]) + self.per_frame_overhead_s
            self._airtime_memo[key] = cached
        return cached

    def broadcast(
        self, sender: Radio, frame: Any, attempt: int = 1, airtime: Optional[float] = None
    ) -> None:
        """Serialise the frame onto the channel and schedule deliveries.

        The channel is FIFO: the transmission starts when the channel
        frees up, and completes one airtime later. Receivers are
        evaluated at completion time (mobile nodes may have moved).
        ``airtime`` lets ``Radio.transmit`` pass its own memo lookup
        through instead of repeating it.
        """
        channel = sender.channel
        if airtime is None:
            airtime = self.airtime(frame)
        self.airtime_by_channel[channel] = self.airtime_by_channel.get(channel, 0.0) + airtime
        now = self.sim.now
        busy_until = self._channel_busy_until.get(channel, 0.0)
        start = busy_until if busy_until > now else now
        end = start + airtime
        self._channel_busy_until[channel] = end
        self._busy_version += 1
        # Resolve the frame's delivery class (and its airtime) once,
        # here, and schedule that path directly rather than routing
        # every completion through the ``_complete`` dispatcher.
        if getattr(frame, "broadcast", False) or not getattr(frame, "needs_ack", False):
            self.sim.schedule(end - now, self._deliver_broadcast, sender, frame, channel, airtime)
        else:
            self.sim.schedule(end - now, self._deliver_unicast, sender, frame, channel, attempt)

    def channel_busy_until(self, channel: int) -> float:
        return self._channel_busy_until.get(channel, 0.0)

    def _complete(
        self,
        sender: Radio,
        frame: Any,
        channel: int,
        attempt: int,
        unacked: Optional[bool] = None,
        airtime: Optional[float] = None,
    ) -> None:
        if unacked is None:
            unacked = getattr(frame, "broadcast", False) or not getattr(frame, "needs_ack", False)
        if unacked:
            self._deliver_broadcast(sender, frame, channel, airtime)
            return
        self._deliver_unicast(sender, frame, channel, attempt)

    @staticmethod
    def rssi_at(dist_m: float) -> float:
        """Log-distance path loss: ~-40 dBm at 10 m, -30 dB/decade."""
        return -40.0 - 30.0 * math.log10(max(dist_m, 1.0) / 10.0)

    def suggest_rate(self, sender: Radio, dst_address: str) -> float:
        """SNR-driven auto-rate: pick the data rate the link supports.

        Real senders track per-station rates from ACK feedback; the
        simulation uses the true distance as the SNR proxy. Unknown or
        out-of-range destinations get the top rate (the frame will be
        lost anyway).
        """
        target = self._first_with_address(dst_address, sender)
        if target is None:
            return DEFAULT_DATA_RATE_BPS
        dist = distance(sender.position(), target.position())
        fraction = dist / self.propagation.range_m
        for threshold, rate in RATE_LADDER:
            if fraction <= threshold:
                return rate
        return RATE_LADDER[-1][1]

    # -- interference ----------------------------------------------------

    def interference_loss(self, channel: int) -> float:
        """Extra loss from busy spectrally-overlapping channels.

        Channels not spectrally near any ever-active channel short-
        circuit to zero — exact, because a nonzero contribution needs a
        busy overlapping channel, and every channel that ever carried a
        frame marked its neighbours interference-prone. Prone channels
        fall back to a memo per ``(sim.now, busy-map version)``: a
        broadcast fan-out computes the loss once per completion instead
        of once per receiver, and any change to the busy map
        invalidates the memo, so a hit is byte-identical to
        recomputing.
        """
        if self.adjacent_channel_loss <= 0.0:
            return 0.0
        if channel not in self._interference_prone:
            busy = self._channel_busy_until
            if len(busy) == self._prone_synced_channels:
                return 0.0
            # New channels became active since the last sync: mark
            # their spectral neighbourhoods prone, then re-test.
            prone = self._interference_prone
            for active in busy:
                prone.update(near for near in range(active - 4, active + 5) if near != active)
            self._prone_synced_channels = len(busy)
            if channel not in prone:
                return 0.0
        key = (self.sim.now, self._busy_version)
        if key != self._interference_key:
            self._interference_key = key
            self._interference_memo = {}
        memo = self._interference_memo
        extra = memo.get(channel)
        if extra is None:
            extra = self._compute_interference(channel)
            memo[channel] = extra
        return extra

    def _compute_interference(self, channel: int) -> float:
        now = self.sim.now
        busy = self._channel_busy_until
        cached = self._overlap_pairs.get(channel)
        if cached is None or cached[0] != len(busy):
            # (Re)derive the channel's spectral-overlap pairs from the
            # busy map's current key set, preserving its insertion
            # order so the float additions below run in exactly the
            # order the historical per-call walk used.
            loss = self.adjacent_channel_loss
            overlap_of = INTERFERENCE_OVERLAP.get
            pairs: List[Tuple[int, float]] = []
            for other in busy:
                if other == channel:
                    continue
                overlap = overlap_of((channel, other))
                if overlap is not None:
                    pairs.append((other, loss * overlap))
            cached = (len(busy), pairs)
            self._overlap_pairs[channel] = cached
        extra = 0.0
        for other, weighted in cached[1]:
            if busy[other] > now:
                extra += weighted
        return min(extra, 0.9)

    def _loss_probability(self, channel: int, dist: float) -> float:
        return combined_loss(self.propagation, dist, self.interference_loss(channel))

    # -- delivery --------------------------------------------------------

    def _scan_entries(self, channel: int) -> List[Tuple[Radio, Optional[float], Optional[float]]]:
        """Scalar-oracle snapshot: every channel member, registration order.

        Coordinates are pre-resolved for static radios (the AP fleet);
        ``None`` marks a mobile radio whose position must be asked at
        delivery time. Membership changes invalidate the cache, and the
        delivery loop re-checks channel/deafness per visit, so iterating
        a cached snapshot is byte-identical to the historical scan.

        This is the only delivery-path method allowed to walk the
        per-channel global index (simlint SL015 exempts it by name):
        it *is* the oracle the spatial path is proven against, reached
        only with ``spatial_index=False``.
        """
        entries = self._fanout_cache.get(channel)
        if entries is None:
            entries = [
                (radio, radio._position_value.x, radio._position_value.y)
                if radio._static
                else (radio, None, None)
                for radio in self._by_channel.get(channel, ())
            ]
            self._fanout_cache[channel] = entries
        return entries

    def _local_entries(
        self, channel: int, key: Tuple[int, int]
    ) -> List[Tuple[Radio, Optional[float], Optional[float]]]:
        """Spatial snapshot: the 3×3 cell neighbourhood of cell ``key``.

        Static radios from the sender's cell and its eight neighbours
        plus every mobile radio on the channel, merged into ``reg_seq``
        order — exactly the subsequence of the scalar oracle's scan
        that can reach the RNG draw: a static radio outside the
        neighbourhood is farther than one cell edge (= the propagation
        horizon) on some axis, so the oracle's range check skips it
        without drawing. Cached per (channel, sender cell); any
        membership change on the channel invalidates. The caller
        computes ``key`` (the sender's grid cell) so the delivery path
        derives it exactly once per completion.
        """
        cache = self._local_cache.get(channel)
        if cache is None:
            cache = self._local_cache[channel] = {}
        entries = cache.get(key)
        if entries is None:
            cx, cy = key
            local: List[Radio] = []
            cells = self._grid.get(channel)
            if cells is not None:
                for gx in (cx - 1, cx, cx + 1):
                    for gy in (cy - 1, cy, cy + 1):
                        bucket = cells.get((gx, gy))
                        if bucket:
                            local.extend(bucket)
            mobile = self._mobile.get(channel)
            if mobile:
                local.extend(mobile)
            local.sort(key=_reg_seq)
            entries = [
                (radio, radio._position_value.x, radio._position_value.y)
                if radio._static
                else (radio, None, None)
                for radio in local
            ]
            cache[key] = entries
        return entries

    def _fanout_arrays(self, key: Any, entries: List) -> Any:
        """SoA form of a snapshot, rebuilt when the snapshot changes.

        The cache is validated by the snapshot list's *identity*:
        membership changes replace the list object (never mutate it),
        so ``is`` is an exact freshness test. ``None`` is a cached
        verdict too — the snapshot's static population is under the
        kernel's batch threshold and the scalar loop should run.
        """
        cached = self._soa_cache.get(key)
        if cached is not None and cached[0] is entries:
            return cached[1]
        arrays = _kernel.build_arrays(entries)
        self._soa_cache[key] = (entries, arrays)
        return arrays

    def _deliver_broadcast(
        self, sender: Radio, frame: Any, channel: int, airtime: Optional[float] = None
    ) -> None:
        now = self.sim.now
        sender_pos = sender.position()
        sender_x = sender_pos.x
        sender_y = sender_pos.y
        extra_loss = self.interference_loss(channel)
        frame_air = self.airtime(frame) if airtime is None else airtime
        if self._vector and sender._static:
            # Static sender: the fan-out's static geometry is a constant
            # of the channel's static membership — deliver from the
            # precomputed pair list, skipping the snapshot fetch.
            self._deliver_static(
                sender, frame, channel, now, sender_x, sender_y, extra_loss, frame_air,
            )
            return
        soa_key: Any
        if self._spatial:
            cell = self._cell_m
            cell_key = (int(sender_x // cell), int(sender_y // cell))
            entries = self._local_entries(channel, cell_key)
            soa_key = (channel, cell_key)
        else:
            entries = self._scan_entries(channel)
            soa_key = channel
        if not entries:
            return
        propagation = self.propagation
        range_m = propagation.range_m
        # loss_probability returns the flat floor anywhere inside the
        # fringe; inlining that branch keeps the common case call-free.
        fringe_start = propagation.fringe_start_m
        base_floor = propagation.base_loss
        base_loss_at = propagation.loss_probability
        rssi_at = self.rssi_at
        draw = self._rng.random
        trace = self.sim.trace
        if self._vector:
            if len(entries) >= _kernel.KERNEL_MIN_BATCH:
                arrays = self._fanout_arrays(soa_key, entries)
                if arrays is not None:
                    self._deliver_vector(
                        arrays, entries, sender, frame, channel, now,
                        sender_x, sender_y, extra_loss, frame_air,
                    )
                    return
        # The snapshot list is never mutated in place (handlers that
        # retune/register/unregister only *replace* it via cache
        # invalidation), so iterating it while handlers run is safe.
        # Channel/deafness are re-checked per radio at visit time,
        # exactly as the historical full scan did.
        for radio, x, y in entries:
            if radio is sender or radio.channel != channel or now < radio.deaf_until:
                continue
            if x is None:
                pos = radio.position()
                x = pos.x
                y = pos.y
            dx = sender_x - x
            # |dx| > range is a hypot-free reject: in the storefront-row
            # geometries most same-channel radios are far down the road.
            if dx > range_m or -dx > range_m:
                continue
            dist = _hypot(dx, sender_y - y)
            if dist > range_m:
                continue
            loss = (base_floor if dist <= fringe_start else base_loss_at(dist)) + extra_loss
            if draw() < (loss if loss < 1.0 else 1.0):
                radio.frames_lost += 1
                if trace is not None:
                    trace.emit(
                        tr.PHY_FRAME_DROP, now, channel=channel,
                        dst=radio.address, reason="loss",
                    )
                continue
            radio._deliver(frame, rssi_at(dist), frame_air)

    def _mobile_pairs(self, channel: int) -> List[Tuple[int, Radio]]:
        """Current mobile members of ``channel`` as ``(reg_seq, radio)``.

        Registration order: the spatial mobile set and the oracle scan
        both maintain it, so the pair-merge in ``_deliver_static`` can
        interleave these with the cached static pairs by ``reg_seq``.
        """
        if self._spatial:
            mobile = self._mobile.get(channel)
            if not mobile:
                return []
            return [(radio.reg_seq, radio) for radio in mobile]
        return [
            (radio.reg_seq, radio)
            for radio, x, _y in self._scan_entries(channel)
            if x is None
        ]

    def _sender_pairs(
        self, sender: Radio, channel: int, sender_x: float, sender_y: float
    ) -> Tuple[List, List]:
        """Precomputed fan-out geometry for a static sender.

        Returns ``(statics, mobiles)``: ``statics`` holds one
        ``(reg_seq, radio, base_loss, rssi)`` tuple per static radio
        that passes the sender's range check — the exact radios (and
        the exact path-loss/RSSI floats) the scalar loop would compute
        per frame, in registration order — and ``mobiles`` the
        ``(reg_seq, radio)`` mobile members, whose geometry is
        delivery-time state. The cache lives on the sender radio
        (``Radio._pair_state`` — a static sender's cell and channel are
        the key, and both are properties of the radio itself), with the
        two halves validated against the channel's *split* membership
        epochs (``_invalidate``): a mobile client retuning onto the
        channel rebuilds only the cheap mobile list, leaving the static
        geometry — the expensive half, and a constant while the
        channel's static population is unchanged — intact. Static
        positions are pinned at registration, and any re-registration
        bumps the static epoch (and clears the radio's state via
        ``_repin``), so surviving entries are never stale.

        Large snapshots use the kernel's batched pre-filter to find the
        static candidates; each still re-runs the exact scalar check,
        so the cached pairs are byte-for-byte what the per-frame loop
        would derive.
        """
        static_v = self._static_version.get(channel, 0)
        mobile_v = self._mobile_version.get(channel, 0)
        state = sender._pair_state
        if (
            state is not None
            and state[1] == channel
            and state[2] == static_v
            and state[0] is self
        ):
            if state[3] == mobile_v:
                return state[4], state[5]
            mobiles = self._mobile_pairs(channel)
            sender._pair_state = (self, channel, static_v, mobile_v, state[4], mobiles)
            return state[4], mobiles
        if self._spatial:
            cell = self._cell_m
            cell_key = (int(sender_x // cell), int(sender_y // cell))
            entries = self._local_entries(channel, cell_key)
            soa_key: Any = (channel, cell_key)
        else:
            entries = self._scan_entries(channel)
            soa_key = channel
        propagation = self.propagation
        range_m = propagation.range_m
        fringe_start = propagation.fringe_start_m
        base_floor = propagation.base_loss
        base_loss_at = propagation.loss_probability
        rssi_at = self.rssi_at
        statics: List[Tuple[int, Radio, float, float]] = []
        rows: Any = range(len(entries))
        if len(entries) >= _kernel.KERNEL_MIN_BATCH:
            arrays = self._fanout_arrays(soa_key, entries)
            if arrays is not None:
                rows = _kernel.candidate_rows(arrays, sender_x, sender_y, range_m)
        for row in rows:
            radio, x, y = entries[row]
            if x is None or radio is sender:
                continue
            dx = sender_x - x
            if dx > range_m or -dx > range_m:
                continue
            dist = _hypot(dx, sender_y - y)
            if dist > range_m:
                continue
            base = base_floor if dist <= fringe_start else base_loss_at(dist)
            statics.append((radio.reg_seq, radio, base, rssi_at(dist)))
        mobiles = self._mobile_pairs(channel)
        sender._pair_state = (self, channel, static_v, mobile_v, statics, mobiles)
        return statics, mobiles

    def _deliver_static(
        self,
        sender: Radio,
        frame: Any,
        channel: int,
        now: float,
        sender_x: float,
        sender_y: float,
        extra_loss: float,
        frame_air: float,
    ) -> None:
        """Broadcast delivery for a static sender via the pair cache.

        Byte-identical to the scalar loop: the cached static pairs hold
        the same path-loss and RSSI floats the per-frame loop computes
        (same expressions, same operand order), channel and deafness
        are re-checked per visit exactly as the scalar loop does, and
        mobile members — whose positions are delivery-time state — run
        the full scalar per-visit body, merged back in registration
        (``reg_seq``) order so the RNG draw sequence is unchanged.
        """
        # Inlined hit path of ``_sender_pairs`` — this runs once per
        # transmitted frame at steady state, so the call is worth
        # skipping when the radio-held state validates.
        state = sender._pair_state
        if (
            state is not None
            and state[1] == channel
            and state[2] == self._static_version.get(channel, 0)
            and state[3] == self._mobile_version.get(channel, 0)
            and state[0] is self
        ):
            statics = state[4]
            mobiles = state[5]
        else:
            statics, mobiles = self._sender_pairs(sender, channel, sender_x, sender_y)
        draw = self._rng.random
        trace = self.sim.trace
        if not mobiles:
            for _row, radio, base, rssi in statics:
                if radio.channel != channel or now < radio.deaf_until:
                    continue
                loss = base + extra_loss
                if draw() < (loss if loss < 1.0 else 1.0):
                    radio.frames_lost += 1
                    if trace is not None:
                        trace.emit(
                            tr.PHY_FRAME_DROP, now, channel=channel,
                            dst=radio.address, reason="loss",
                        )
                    continue
                radio._deliver(frame, rssi, frame_air)
            return
        propagation = self.propagation
        range_m = propagation.range_m
        fringe_start = propagation.fringe_start_m
        base_floor = propagation.base_loss
        base_loss_at = propagation.loss_probability
        rssi_at = self.rssi_at
        static_index = 0
        static_count = len(statics)
        mobile_index = 0
        mobile_count = len(mobiles)
        while static_index < static_count or mobile_index < mobile_count:
            if mobile_index >= mobile_count or (
                static_index < static_count
                and statics[static_index][0] < mobiles[mobile_index][0]
            ):
                _row, radio, base, rssi = statics[static_index]
                static_index += 1
                if radio.channel != channel or now < radio.deaf_until:
                    continue
                loss = base + extra_loss
                dist = None
            else:
                _row, radio = mobiles[mobile_index]
                mobile_index += 1
                if radio is sender or radio.channel != channel or now < radio.deaf_until:
                    continue
                pos = radio.position()
                dx = sender_x - pos.x
                if dx > range_m or -dx > range_m:
                    continue
                dist = _hypot(dx, sender_y - pos.y)
                if dist > range_m:
                    continue
                loss = (base_floor if dist <= fringe_start else base_loss_at(dist)) + extra_loss
            if draw() < (loss if loss < 1.0 else 1.0):
                radio.frames_lost += 1
                if trace is not None:
                    trace.emit(
                        tr.PHY_FRAME_DROP, now, channel=channel,
                        dst=radio.address, reason="loss",
                    )
                continue
            radio._deliver(frame, rssi if dist is None else rssi_at(dist), frame_air)

    def _deliver_vector(
        self,
        arrays: Any,
        entries: List[Tuple[Radio, Optional[float], Optional[float]]],
        sender: Radio,
        frame: Any,
        channel: int,
        now: float,
        sender_x: float,
        sender_y: float,
        extra_loss: float,
        frame_air: float,
    ) -> None:
        """Batched broadcast delivery — byte-identical to the scalar loop.

        Three ordered passes (DESIGN.md §6.3):

        1. The kernel's vectorized pre-filter yields candidate snapshot
           rows in snapshot order; each candidate re-runs the *exact*
           scalar per-visit checks (sender/channel/deafness, bbox,
           ``math.hypot`` range) — the batch only over-keeps, so the
           survivors are exactly the radios the oracle draws for.
        2. One ordered batch of RNG draws, one per survivor. Receive
           handlers never draw from the phy stream (the stream is only
           touched inside ``_deliver_*``, and ``broadcast`` merely
           schedules a completion), and channel retunes / deafness only
           happen from scheduled driver processes — never synchronously
           from ``on_receive`` — so hoisting the draws ahead of the
           deliveries reorders nothing observable.
        3. Deliveries and drop traces in the same order the scalar loop
           emits them, comparing each draw against the batched loss
           (``kernel.batch_loss``, bit-identical per lane to
           ``combined_loss`` on the same distances).
        """
        propagation = self.propagation
        range_m = propagation.range_m
        survivors: List[Tuple[Radio, float]] = []
        append = survivors.append
        for row in _kernel.candidate_rows(arrays, sender_x, sender_y, range_m):
            radio, x, y = entries[row]
            if radio is sender or radio.channel != channel or now < radio.deaf_until:
                continue
            if x is None:
                pos = radio.position()
                x = pos.x
                y = pos.y
            dx = sender_x - x
            if dx > range_m or -dx > range_m:
                continue
            dist = _hypot(dx, sender_y - y)
            if dist > range_m:
                continue
            append((radio, dist))
        if not survivors:
            return
        losses = _kernel.batch_loss(
            [dist for _, dist in survivors],
            range_m,
            propagation.base_loss,
            propagation.fringe_start_m,
            propagation.fringe_span_m,
            extra_loss,
        ).tolist()
        draw = self._rng.random
        draws = [draw() for _ in range(len(survivors))]
        rssi_at = self.rssi_at
        trace = self.sim.trace
        for (radio, dist), loss, uniform in zip(survivors, losses, draws):
            if uniform < loss:
                radio.frames_lost += 1
                if trace is not None:
                    trace.emit(
                        tr.PHY_FRAME_DROP, now, channel=channel,
                        dst=radio.address, reason="loss",
                    )
                continue
            radio._deliver(frame, rssi_at(dist), frame_air)

    def _deliver_unicast(self, sender: Radio, frame: Any, channel: int, attempt: int) -> None:
        """Unicast with link-layer ARQ: retry on loss up to the cap.

        Each retry occupies another airtime on the channel, which is
        what makes a lossy fringe expensive, not just unreliable.
        """
        target = self._first_with_address(frame.dst, sender)
        if target is None or target.channel != channel or target.deaf:
            self._report_tx_failure(sender, frame)
            return  # destination gone or off-channel
        dist = distance(sender.position(), target.position())
        if not self.propagation.in_range(dist):
            self._report_tx_failure(sender, frame)
            return
        if self._rng.random() < self._loss_probability(channel, dist):
            target.frames_lost += 1
            trace = self.sim.trace
            if trace is not None:
                trace.emit(
                    tr.PHY_FRAME_DROP, self.sim.now, channel=channel,
                    dst=target.address, reason="loss", attempt=attempt,
                )
            if attempt < self.max_arq_attempts and sender.channel == channel and not sender.deaf:
                # 802.11 retries stay within the TXOP: the retry goes
                # out immediately, ahead of anything queued behind it —
                # re-entering the FIFO would reorder the stream.
                airtime = self.airtime(frame)
                busy_until = self._channel_busy_until.get(channel, 0.0)
                self._channel_busy_until[channel] = max(busy_until, self.sim.now + airtime)
                self._busy_version += 1
                self.sim.schedule(airtime, self._deliver_unicast, sender, frame, channel, attempt + 1)
            else:
                self._report_tx_failure(sender, frame)
            return
        target._deliver(frame, self.rssi_at(dist))

    def _report_tx_failure(self, sender: Radio, frame: Any) -> None:
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.PHY_FRAME_DROP, self.sim.now, channel=sender.channel,
                dst=getattr(frame, "dst", None), reason="arq-exhausted",
            )
        if sender.on_unicast_failure is not None:
            sender.on_unicast_failure(frame)
