"""Declarative scenarios: spec → build → run.

The scenario subsystem is the only place worlds get wired. A
:class:`~repro.scenario.spec.ScenarioSpec` declares *what* to simulate
(deployment, mobility, propagation, traffic, driver fleet, failures);
:func:`~repro.scenario.build.build` assembles it;
:func:`~repro.scenario.registry.scenario` names the presets; the
``spider-repro scenario`` CLI runs ad-hoc TOML/JSON specs through the
same path. See DESIGN.md §"Scenario subsystem".
"""

from repro.scenario.build import (
    BuildError,
    World,
    build,
    make_fleet,
    run_spec,
    summarize_spec_run,
)
from repro.scenario.registry import UnknownScenarioError, names, scenario
from repro.scenario.results import RunResult, result_from_driver
from repro.scenario.spec import (
    ApSpec,
    DeploymentSpec,
    DriverSpec,
    FailureSpec,
    MobilitySpec,
    PartitionSpec,
    PhySpec,
    PropagationSpec,
    ScenarioSpec,
    SpecError,
    TrafficSpec,
)

__all__ = [
    "ApSpec",
    "BuildError",
    "DeploymentSpec",
    "DriverSpec",
    "FailureSpec",
    "MobilitySpec",
    "PartitionSpec",
    "PhySpec",
    "PropagationSpec",
    "RunResult",
    "ScenarioSpec",
    "SpecError",
    "TrafficSpec",
    "UnknownScenarioError",
    "World",
    "build",
    "make_fleet",
    "names",
    "result_from_driver",
    "run_spec",
    "scenario",
    "summarize_spec_run",
]
