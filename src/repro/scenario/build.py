"""Turn a :class:`~repro.scenario.spec.ScenarioSpec` into a wired world.

This is the single place in the codebase where a simulated world is
assembled: simulator, RNG streams, medium, mobility, AP deployment,
and — per AP — a DHCP server, a backhaul shaper, and a router, plus a
``router_lookup`` that lets drivers build TCP flows through whichever
AP they join. Experiments and the CLI both come through here, so a
spec means the same world everywhere.

Determinism contract (the identity harness in
``tests/test_scenario_identity.py`` pins this): construction order and
RNG stream names are load-bearing. APs are wired in deployment order
(``open_sites()`` for generated worlds, spec order for explicit ones);
each AP and its DHCP server share the ``ap:{name}`` stream; the
deployment generator draws from ``deployment``; Spider drivers share
the single ``spider`` stream and FatVAP drivers the ``fatvap`` stream.
Changing any of these reorders RNG draws and silently changes every
result.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.config import SpiderConfig
from repro.core.fatvap import FatVapConfig, FatVapDriver
from repro.core.spider import SpiderDriver
from repro.drivers.multicard import MultiCardDriver
from repro.drivers.stock import StockConfig, StockDriver
from repro.mac.ap import AccessPoint, ApConfig
from repro.net.backhaul import ApRouter, WiredBackhaul
from repro.net.dhcp import DhcpServer, DhcpServerConfig
from repro.net.tcp import TcpConfig
from repro.obs import trace as tr
from repro.obs.spans import SPAN_SCENARIO_BUILD, current_profiler
from repro.phy.partition import MediumPartitions, Region
from repro.phy.propagation import PropagationModel
from repro.phy.radio import Medium
from repro.scenario.results import RunResult, result_from_driver
from repro.scenario.spec import DriverSpec, PartitionSpec, ScenarioSpec, SpecError
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.world.deployment import (
    Deployment,
    DeploymentConfig,
    MetroConfig,
    generate_deployment,
    generate_metro_deployment,
)
from repro.world.geometry import Point
from repro.world.mobility import (
    LoopRouteMobility,
    MobilityModel,
    StaticMobility,
    rectangular_loop,
)


class BuildError(ValueError):
    """A spec that validates but cannot be wired into a world."""


class World:
    """A fully-connected simulated world: sim, medium, APs, routers.

    Construct via :func:`build`; direct construction is for the
    compatibility scenario classes in ``repro.experiments.common``.
    """

    def __init__(
        self,
        seed: int,
        propagation: PropagationModel,
        wired_latency: float = 0.075,
        name: str = "adhoc",
        spatial_index: bool = True,
        kernel: str = "vector",
    ):
        self.name = name
        self.seed = seed
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self._spatial_index = spatial_index
        self._kernel = kernel
        self.medium = Medium(
            self.sim, propagation, self.streams, spatial_index=spatial_index, kernel=kernel
        )
        self.wired_latency = wired_latency
        self.aps: Dict[str, AccessPoint] = {}
        self.routers: Dict[str, ApRouter] = {}
        #: Per-region mediums + edge handoff; ``None`` until the spec's
        #: ``[[partitions]]`` are enabled (legacy worlds stay on the
        #: single shared ``medium``).
        self.partitions: Optional[MediumPartitions] = None
        #: Loop worlds share one mobility model across drivers; static
        #: worlds hand each driver its own ``StaticMobility`` (matching
        #: the historical lab wiring exactly).
        self.mobility: Optional[MobilityModel] = None
        self.client_position: Optional[Point] = None
        self.deployment: Optional[Deployment] = None
        self.spec: Optional[ScenarioSpec] = None

    # -- wiring -----------------------------------------------------------

    def enable_partitions(
        self, partitions: Sequence[PartitionSpec], handoff_period_s: float = 1.0
    ) -> None:
        """Split the world into per-region mediums (before any AP wiring).

        Each declared region gets its own ``Medium`` drawing loss from
        its own ``phy:{region}`` RNG stream; the world's original
        ``medium`` serves everything outside every region. Regions are
        installed in spec order — the declaration-order-wins overlap
        rule of ``MediumPartitions.medium_for``.
        """
        if self.partitions is not None:
            raise BuildError("partitions already enabled")
        if self.aps:
            raise BuildError("enable partitions before wiring APs")
        self.partitions = MediumPartitions(self.sim, self.medium, handoff_period_s)
        for part in partitions:
            medium = Medium(
                self.sim,
                self.medium.propagation,
                self.streams,
                spatial_index=self._spatial_index,
                kernel=self._kernel,
                stream_name=f"phy:{part.name}",
            )
            self.partitions.add_region(
                Region(part.name, part.x_min, part.y_min, part.x_max, part.y_max), medium
            )

    def medium_for(self, position: Point) -> Medium:
        """The medium serving ``position`` (the shared one if unsplit)."""
        if self.partitions is not None:
            return self.partitions.medium_for(position)
        return self.medium

    def add_ap(
        self,
        name: str,
        channel: int,
        position: Point,
        backhaul_bps: float,
        beta_min: float,
        beta_max: float,
        wired_latency: Optional[float] = None,
        ap_config: Optional[ApConfig] = None,
    ) -> AccessPoint:
        """Wire one AP: radio + DHCP server + shaped backhaul + router.

        The AP and its DHCP server share the ``ap:{name}`` RNG stream —
        one stream per AP keeps per-AP behaviour independent of how
        many other APs exist.
        """
        if name in self.aps:
            raise BuildError(f"duplicate AP name {name!r}")
        if wired_latency is None:
            wired_latency = self.wired_latency
        rng = self.streams.get(f"ap:{name}")
        ap = AccessPoint(
            self.sim,
            self.medium_for(position),
            name,
            channel,
            position,
            config=ap_config or ApConfig(),
            rng=rng,
        )
        dhcp = DhcpServer(
            self.sim,
            name,
            config=DhcpServerConfig(beta_min=beta_min, beta_max=beta_max),
            rng=rng,
        )
        backhaul = WiredBackhaul(self.sim, backhaul_bps, latency_s=wired_latency)
        self.routers[name] = ApRouter(self.sim, ap, backhaul, dhcp)
        self.aps[name] = ap
        ap.start()
        return ap

    def add_lab_ap(
        self,
        name: str,
        channel: int,
        backhaul_bps: float,
        beta_min: float = 0.2,
        beta_max: float = 1.0,
        distance_m: float = 10.0,
        index: int = 0,
        ap_config: Optional[ApConfig] = None,
    ) -> AccessPoint:
        """Hand-placed indoor AP at ``(distance_m, index)`` metres."""
        position = Point(distance_m, float(index))
        return self.add_ap(
            name,
            channel,
            position,
            backhaul_bps,
            beta_min,
            beta_max,
            self.wired_latency,
            ap_config=ap_config,
        )

    def populate_loop(
        self,
        route_width: float,
        route_height: float,
        speed: float,
        deployment: DeploymentConfig,
        wired_latency: Optional[float] = None,
    ) -> None:
        """Vehicular wiring: loop mobility + generated roadside APs.

        Order is part of the determinism contract: the route and
        mobility first, then one ``deployment``-stream generation
        pass, then APs in ``open_sites()`` order.
        """
        if wired_latency is None:
            wired_latency = self.wired_latency
        route = rectangular_loop(route_width, route_height)
        self.mobility = LoopRouteMobility(route, speed)
        self.deployment = generate_deployment(
            route, deployment, self.streams.get(deployment.seed_label)
        )
        for site in self.deployment.open_sites():
            self.add_ap(
                site.name,
                site.channel,
                site.position,
                site.backhaul_bps,
                site.beta_min,
                site.beta_max,
                wired_latency,
            )

    def populate_metro(self, config: MetroConfig, wired_latency: Optional[float] = None) -> None:
        """City-scale wiring: the block-grid AP field, in site order.

        Mobility (if any) is laid over the grid by the caller first —
        same mobility-then-deployment order as ``populate_loop``. Each
        AP registers with the medium serving its position, so a
        partitioned world shards the fleet across regions here.
        """
        if wired_latency is None:
            wired_latency = self.wired_latency
        self.deployment = generate_metro_deployment(config, self.streams.get("deployment"))
        for site in self.deployment.open_sites():
            self.add_ap(
                site.name,
                site.channel,
                site.position,
                site.backhaul_bps,
                site.beta_min,
                site.beta_max,
                wired_latency,
            )

    def router_lookup(self) -> Callable[[str], Optional[ApRouter]]:
        return lambda name: self.routers.get(name)

    def static_mobility(self) -> StaticMobility:
        position = self.client_position if self.client_position is not None else Point(0.0, 0.0)
        return StaticMobility(position)

    def _driver_mobility(self) -> MobilityModel:
        if self.mobility is not None:
            return self.mobility
        return self.static_mobility()

    def _driver_medium(self) -> Medium:
        """The medium serving the driver's start position.

        Unsplit worlds always answer the shared medium; partitioned
        worlds home the client where it begins — the handoff poll
        (``MediumPartitions``) re-homes it as it crosses edges.
        """
        if self.partitions is None:
            return self.medium
        return self.partitions.medium_for(self._driver_mobility().position(0.0))

    def _manage_driver(self, driver: Any) -> Any:
        """Enroll the driver's card(s) for partition-edge handoff."""
        if self.partitions is not None:
            cards = getattr(driver, "drivers", None)
            for radio in [card.radio for card in cards] if cards else [driver.radio]:
                self.partitions.manage(radio)
        return driver

    # -- driver factories -------------------------------------------------

    def make_spider(self, config: SpiderConfig, address: str = "spider") -> SpiderDriver:
        return self._manage_driver(
            SpiderDriver(
                self.sim,
                self._driver_medium(),
                self._driver_mobility(),
                address=address,
                config=config,
                router_lookup=self.router_lookup(),
                rng=self.streams.get("spider"),
            )
        )

    def make_stock(
        self, config: Optional[StockConfig] = None, address: str = "stock"
    ) -> StockDriver:
        return self._manage_driver(
            StockDriver(
                self.sim,
                self._driver_medium(),
                self._driver_mobility(),
                address,
                config=config or StockConfig(),
                router_lookup=self.router_lookup(),
            )
        )

    def make_fatvap(
        self, config: Optional[FatVapConfig] = None, address: str = "fatvap"
    ) -> FatVapDriver:
        return self._manage_driver(
            FatVapDriver(
                self.sim,
                self._driver_medium(),
                self._driver_mobility(),
                address,
                config=config or FatVapConfig(),
                router_lookup=self.router_lookup(),
                rng=self.streams.get("fatvap"),
            )
        )

    def make_multicard(self, cards: int = 2, address: str = "multicard") -> MultiCardDriver:
        return self._manage_driver(
            MultiCardDriver(
                self.sim,
                self._driver_medium(),
                self._driver_mobility(),
                address,
                cards=cards,
                router_lookup=self.router_lookup(),
            )
        )

    def make_driver(self, spec: DriverSpec, address: str):
        """Instantiate one driver from its spec entry."""
        if spec.kind == "spider":
            return self.make_spider(_spider_config(spec.config), address=address)
        if spec.kind == "stock":
            return self.make_stock(_stock_config(spec.config), address=address)
        if spec.kind == "fatvap":
            return self.make_fatvap(_fatvap_config(spec.config), address=address)
        if spec.kind == "multicard":
            if spec.config:
                raise SpecError("multicard drivers take no config table (only 'cards')")
            return self.make_multicard(cards=spec.cards, address=address)
        raise SpecError(f"unknown driver kind {spec.kind!r}")

    # -- execution --------------------------------------------------------

    def run(self, driver, duration: float) -> RunResult:
        """Drive one client for ``duration`` sim-seconds and extract."""
        trace = self.sim.trace
        if trace is not None:
            trace.emit(
                tr.SCENARIO_RUN,
                self.sim.now,
                scenario=self.name,
                driver=driver.address,
                duration=duration,
            )
        driver.start()
        self.sim.run(until=self.sim.now + duration)
        driver.stop()
        return result_from_driver(driver, duration)


# -- spec → world -----------------------------------------------------------


def build(spec: ScenarioSpec) -> World:
    """Assemble the world a spec describes. Pure function of the spec.

    With an ambient span profiler installed, construction is recorded
    as one ``scenario.build`` span (scenario, seed, AP count).
    """
    spans = current_profiler()
    if spans is not None:
        with spans.span(SPAN_SCENARIO_BUILD, scenario=spec.name, seed=spec.seed) as span:
            world = _build(spec)
            span.add(aps=len(world.aps))
        return world
    return _build(spec)


def _build(spec: ScenarioSpec) -> World:
    spec = spec.validated()
    propagation = PropagationModel(
        range_m=spec.propagation.range_m,
        base_loss=spec.propagation.base_loss,
        edge_start=spec.propagation.edge_start,
    )
    world = World(
        spec.seed,
        propagation,
        spec.wired_latency,
        name=spec.name,
        spatial_index=spec.phy.spatial_index,
        kernel=spec.phy.kernel,
    )
    world.spec = spec
    if spec.partitions:
        world.enable_partitions(spec.partitions, spec.phy.handoff_period_s)

    if spec.mobility.kind == "static":
        world.client_position = Point(spec.mobility.x, spec.mobility.y)

    if spec.deployment.kind == "generated":
        # Spec validation guarantees loop mobility here; populate_loop
        # builds the route, the mobility, and the generated APs in the
        # historical (identity-pinned) order.
        world.populate_loop(
            spec.mobility.route_width,
            spec.mobility.route_height,
            spec.mobility.speed,
            _deployment_config(spec),
            spec.wired_latency,
        )
    elif spec.deployment.kind == "metro":
        if spec.mobility.kind == "loop":
            route = rectangular_loop(spec.mobility.route_width, spec.mobility.route_height)
            world.mobility = LoopRouteMobility(route, spec.mobility.speed)
        world.populate_metro(_metro_config(spec), spec.wired_latency)
    else:
        if spec.mobility.kind == "loop":
            route = rectangular_loop(spec.mobility.route_width, spec.mobility.route_height)
            world.mobility = LoopRouteMobility(route, spec.mobility.speed)
        for ap in spec.deployment.aps:
            world.add_ap(
                ap.name,
                ap.channel,
                Point(ap.x, ap.y),
                ap.backhaul_bps,
                ap.beta_min,
                ap.beta_max,
                spec.wired_latency,
            )

    for failure in spec.failures:
        if failure.ap not in world.aps:
            raise BuildError(
                f"failure targets unknown AP {failure.ap!r} "
                f"(world has: {', '.join(sorted(world.aps)) or 'none'})"
            )
        if failure.kind == "ap-outage":
            world.sim.schedule_at(failure.at, _ap_outage, world, failure.ap)
        else:  # dhcp-wedge, per spec validation
            world.sim.schedule_at(failure.at, _dhcp_wedge, world, failure.ap)

    trace = world.sim.trace
    if trace is not None:
        trace.emit(
            tr.SCENARIO_BUILD,
            world.sim.now,
            scenario=spec.name,
            seed=spec.seed,
            aps=len(world.aps),
            spec_digest=spec.digest(),
        )
    return world


def _deployment_config(spec: ScenarioSpec) -> DeploymentConfig:
    dep = spec.deployment
    kwargs: Dict[str, Any] = dict(
        density_per_km=dep.density_per_km,
        lateral_spread=dep.lateral_spread,
        cluster_size_mean=dep.cluster_size_mean,
        cluster_radius=dep.cluster_radius,
        backhaul_bps_min=dep.backhaul_bps_min,
        backhaul_bps_max=dep.backhaul_bps_max,
        beta_min_range=tuple(dep.beta_min_range),
        beta_max_range=tuple(dep.beta_max_range),
        open_fraction=dep.open_fraction,
    )
    if dep.channel_mix is not None:
        kwargs["channel_mix"] = dict(dep.channel_mix)
    return DeploymentConfig(**kwargs)


def _metro_config(spec: ScenarioSpec) -> MetroConfig:
    dep = spec.deployment
    kwargs: Dict[str, Any] = dict(
        blocks_x=dep.blocks_x,
        blocks_y=dep.blocks_y,
        block_m=dep.block_m,
        aps_per_block=dep.aps_per_block,
        backhaul_bps_min=dep.backhaul_bps_min,
        backhaul_bps_max=dep.backhaul_bps_max,
        beta_min_range=tuple(dep.beta_min_range),
        beta_max_range=tuple(dep.beta_max_range),
        open_fraction=dep.open_fraction,
    )
    if dep.channel_mix is not None:
        kwargs["channel_mix"] = dict(dep.channel_mix)
    return MetroConfig(**kwargs)


# -- failure injection ------------------------------------------------------


def _ap_outage(world: World, name: str) -> None:
    """Power the AP off: daemon stops, radio hears nothing ever again."""
    ap = world.aps[name]
    ap.stop()
    ap.radio.go_deaf(1e9)


def _dhcp_wedge(world: World, name: str) -> None:
    """The AP's DHCP daemon hangs: it receives but never answers."""
    world.routers[name].dhcp_server.send = lambda client, message: None


# -- driver-config construction ---------------------------------------------


def _base_config(data: Dict[str, Any]) -> Dict[str, Any]:
    data = dict(data)
    tcp = data.get("tcp")
    if isinstance(tcp, dict):
        try:
            data["tcp"] = TcpConfig(**tcp)
        except TypeError as error:
            raise SpecError(f"bad tcp config: {error}") from error
    return data


def _spider_config(data: Dict[str, Any]) -> SpiderConfig:
    data = _base_config(data)
    schedule = data.get("schedule")
    if isinstance(schedule, dict):
        # TOML table keys are strings; the scheduler wants channel ints.
        try:
            data["schedule"] = {int(ch): float(share) for ch, share in schedule.items()}
        except (TypeError, ValueError) as error:
            raise SpecError(f"bad spider schedule: {error}") from error
    try:
        return SpiderConfig(**data)
    except (TypeError, ValueError) as error:
        raise SpecError(f"bad spider config: {error}") from error


def _stock_config(data: Dict[str, Any]) -> StockConfig:
    data = _base_config(data)
    if "scan_channels" in data:
        data["scan_channels"] = tuple(data["scan_channels"])
    try:
        return StockConfig(**data)
    except (TypeError, ValueError) as error:
        raise SpecError(f"bad stock config: {error}") from error


def _fatvap_config(data: Dict[str, Any]) -> FatVapConfig:
    data = _base_config(data)
    if "channels" in data:
        data["channels"] = tuple(data["channels"])
    try:
        return FatVapConfig(**data)
    except (TypeError, ValueError) as error:
        raise SpecError(f"bad fatvap config: {error}") from error


# -- whole-spec execution ---------------------------------------------------


def make_fleet(world: World, spec: ScenarioSpec) -> List[Any]:
    """Instantiate the spec's driver fleet, in spec order.

    A ``count`` > 1 entry becomes ``address0 .. addressN-1`` replicas;
    Spider replicas share the single ``spider`` RNG stream, exactly as
    the contention experiments always have.
    """
    drivers: List[Any] = []
    for entry in spec.drivers:
        base = entry.address or entry.kind
        for index in range(entry.count):
            address = f"{base}{index}" if entry.count > 1 else base
            config = _driver_spec_with_traffic(entry, spec)
            drivers.append(world.make_driver(config, address))
    return drivers


def _driver_spec_with_traffic(entry: DriverSpec, spec: ScenarioSpec) -> DriverSpec:
    if spec.traffic.kind != "none" or entry.kind == "multicard":
        return entry
    config = dict(entry.config)
    config.setdefault("auto_flow", False)
    return DriverSpec(
        kind=entry.kind,
        address=entry.address,
        count=entry.count,
        cards=entry.cards,
        config=config,
    )


def run_spec(spec: Union[ScenarioSpec, Dict[str, Any]]) -> Dict[str, RunResult]:
    """Build, run, and extract: address → :class:`RunResult`.

    The whole fleet starts at t=0 and the world advances once for
    ``spec.duration`` — drivers contend for the medium concurrently.
    """
    if isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)
    spec = spec.validated()
    if not spec.drivers:
        raise BuildError(f"scenario {spec.name!r} declares no drivers")
    world = build(spec)
    drivers = make_fleet(world, spec)
    trace = world.sim.trace
    if trace is not None:
        for driver in drivers:
            trace.emit(
                tr.SCENARIO_RUN,
                world.sim.now,
                scenario=spec.name,
                driver=driver.address,
                duration=spec.duration,
            )
    for driver in drivers:
        driver.start()
    world.sim.run(until=world.sim.now + spec.duration)
    for driver in drivers:
        driver.stop()
    return {driver.address: result_from_driver(driver, spec.duration) for driver in drivers}


def summarize_spec_run(results: Dict[str, RunResult]) -> Dict[str, Dict[str, float]]:
    return {address: result.summary() for address, result in results.items()}


def run_shard(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Picklable shard entry for ``repro.exec``: one spec, one process.

    Shard params are ``{"spec": <canonical spec dict>}`` — the cache
    key is therefore the canonical spec serialization plus code
    version, exactly as the tentpole demands.
    """
    resolved = ScenarioSpec.from_dict(spec)
    results = run_spec(resolved)
    return {
        "scenario": resolved.name,
        "seed": resolved.seed,
        "spec_digest": resolved.digest(),
        "drivers": summarize_spec_run(results),
    }
