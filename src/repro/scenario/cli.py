"""``spider-repro scenario``: run declarative workloads from the shell.

Subcommands:

- ``list`` — the registry, one line per named scenario;
- ``show NAME|SPEC.toml`` — print the fully-resolved spec as TOML
  (what ``run`` would execute, after overrides);
- ``run NAME|SPEC.toml`` — build the world, run the declared fleet,
  print per-driver summaries;
- ``sweep NAME|SPEC.toml --seeds 1,2,3`` — the same spec across seeds.

``run`` and ``sweep`` execute through ``repro.exec``: ``--jobs N``
fans seeds out over worker processes and ``--cache-dir`` enables the
content-addressed result cache, keyed on the canonical serialization
of each resolved spec — two textually different spec files describing
the same scenario share cache entries.

Output discipline: every line whose content can vary between
otherwise-identical runs (wall-clock, cache hit counts) is prefixed
``exec:`` so identity checks can filter it (CI diffs sequential vs
``--jobs 2`` output modulo ``^exec:`` lines).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.scenario import registry
from repro.scenario.spec import ScenarioSpec, SpecError

#: CLI exit codes (mirrors repro.analysis.cli).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


def resolve_spec(ref: str, overrides: Dict[str, Any]) -> ScenarioSpec:
    """A spec from a registry name or a ``.toml``/``.json`` file path."""
    if ref.endswith((".toml", ".json")):
        spec = ScenarioSpec.load(ref)
        if overrides:
            spec = spec.with_overrides(**overrides).validated()
        return spec
    return registry.scenario(ref, **overrides)


def _overrides(args) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.duration is not None:
        overrides["duration"] = args.duration
    return overrides


def _print_result(result: Dict[str, Any]) -> None:
    print(f"scenario {result['scenario']} seed={result['seed']}")
    print(f"  spec {result['spec_digest'][:12]}")
    for address, summary in result["drivers"].items():
        fields = " ".join(f"{key}={value}" for key, value in summary.items())
        print(f"  {address:12s} {fields}")


def _execute(specs: List[ScenarioSpec], args) -> List[Dict[str, Any]]:
    """Run resolved specs through the exec layer; results in spec order."""
    from repro.exec.cache import ResultCache
    from repro.exec.shards import Shard
    from repro.exec.workers import ExecPolicy, execute_shards

    cache: Optional[ResultCache] = None
    if args.cache_dir and not args.no_cache:
        cache = ResultCache(args.cache_dir)
    shards = [
        Shard(key=f"spec={spec.digest()[:12]}", params={"spec": spec.to_dict()})
        for spec in specs
    ]
    outcomes = execute_shards(
        "repro.scenario.build",
        "run_shard",
        shards,
        policy=ExecPolicy(jobs=args.jobs),
        cache=cache,
        experiment="scenario",
    )
    wall = sum(outcome.wall_seconds for outcome in outcomes)
    cached = sum(1 for outcome in outcomes if outcome.source == "cache")
    print(f"exec: jobs={args.jobs} shards={len(outcomes)} cached={cached}/{len(outcomes)}")
    print(f"exec: wall={wall:.2f}s")
    return [outcome.result for outcome in outcomes]


def _cmd_list(args) -> int:
    for name in registry.names():
        spec = registry.scenario(name)
        doc = (registry._REGISTRY[name].__doc__ or "").strip().splitlines()
        blurb = doc[0] if doc else ""
        print(f"  {name:18s} aps={spec.deployment.kind:9s} {blurb}")
    return EXIT_OK


def _cmd_show(args) -> int:
    spec = resolve_spec(args.spec, _overrides(args))
    sys.stdout.write(spec.to_toml())
    return EXIT_OK


def _cmd_run(args) -> int:
    spec = resolve_spec(args.spec, _overrides(args))
    if not spec.drivers:
        print(
            f"error: scenario {spec.name!r} declares no drivers — add a "
            f"[[drivers]] table to the spec",
            file=sys.stderr,
        )
        return EXIT_USAGE
    results = _execute([spec], args)
    _print_result(results[0])
    return EXIT_OK


def _cmd_sweep(args) -> int:
    try:
        seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    except ValueError:
        print(f"error: bad --seeds {args.seeds!r} (want e.g. 1,2,3)", file=sys.stderr)
        return EXIT_USAGE
    if not seeds:
        print("error: --seeds is empty", file=sys.stderr)
        return EXIT_USAGE
    base = resolve_spec(args.spec, _overrides(args))
    if not base.drivers:
        print(f"error: scenario {base.name!r} declares no drivers", file=sys.stderr)
        return EXIT_USAGE
    specs = [base.with_overrides(seed=seed) for seed in seeds]
    results = _execute(specs, args)
    for result in results:
        _print_result(result)
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="spider-repro scenario",
        description="Run declarative scenario specs (registry names or TOML/JSON files).",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    sub.add_parser("list", help="list registered scenarios")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="registry name or path to a .toml/.json spec")
        p.add_argument("--seed", type=int, default=None, help="override the spec's seed")
        p.add_argument(
            "--duration", type=float, default=None, help="override the spec's duration (s)"
        )

    add_common(sub.add_parser("show", help="print the resolved spec as TOML"))

    def add_exec(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1, metavar="N", help="worker processes (default 1)"
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="PATH", help="shard-result cache location"
        )
        p.add_argument("--no-cache", action="store_true", help="disable the result cache")

    run_parser = sub.add_parser("run", help="build and run one scenario")
    add_common(run_parser)
    add_exec(run_parser)

    sweep_parser = sub.add_parser("sweep", help="run one scenario across seeds")
    add_common(sweep_parser)
    add_exec(sweep_parser)
    sweep_parser.add_argument(
        "--seeds", default="1,2,3", metavar="S1,S2,...", help="comma-separated seed list"
    )

    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 1:
        parser.error("--jobs must be >= 1")

    try:
        if args.subcommand == "list":
            return _cmd_list(args)
        if args.subcommand == "show":
            return _cmd_show(args)
        if args.subcommand == "run":
            return _cmd_run(args)
        return _cmd_sweep(args)
    except (SpecError, registry.UnknownScenarioError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
