"""Named scenario presets.

The paper's two evaluation worlds (the Amherst vehicular loop and the
indoor lab) plus a Boston channel-mix variant and three stress
variants that the hand-built experiment layer could never express
without code changes. Every entry is a *factory* returning a fresh
:class:`ScenarioSpec`, so callers can override freely without
poisoning the preset.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.scenario.spec import (
    ApSpec,
    DeploymentSpec,
    DriverSpec,
    MobilitySpec,
    PartitionSpec,
    PhySpec,
    PropagationSpec,
    ScenarioSpec,
)
from repro.world.deployment import BOSTON_CHANNEL_MIX


class UnknownScenarioError(KeyError):
    """Lookup of a scenario name that is not registered."""

    def __init__(self, name: str, known: List[str]):
        super().__init__(f"unknown scenario {name!r} (known: {', '.join(known)})")
        self.name = name
        self.known = known


_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {}


def register(name: str) -> Callable[[Callable[[], ScenarioSpec]], Callable[[], ScenarioSpec]]:
    def wrap(factory: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} registered twice")
        _REGISTRY[name] = factory
        return factory

    return wrap


def names() -> List[str]:
    return sorted(_REGISTRY)


def scenario(name: str, **overrides) -> ScenarioSpec:
    """A fresh spec for a named preset, with top-level field overrides.

    ``scenario("vehicular-amherst", seed=7)`` is the registry spelling
    of the old ``VehicularScenario(ScenarioConfig(seed=7))``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, names()) from None
    return factory().with_overrides(**overrides).validated()


#: One Spider on the paper's three orthogonal channels — the default
#: workload for CLI runs of the vehicular presets.
def _spider_fleet() -> tuple:
    return (
        DriverSpec(
            kind="spider",
            address="spider",
            config={
                # String channel keys: the canonical (TOML-able) form.
                "schedule": {"1": 1.0 / 3.0, "6": 1.0 / 3.0, "11": 1.0 / 3.0},
                "period": 0.6,
                "multi_ap": True,
            },
        ),
    )


@register("vehicular-amherst")
def vehicular_amherst() -> ScenarioSpec:
    """The paper's outdoor testbed: downtown loop, Amherst channel mix."""
    return ScenarioSpec(
        name="vehicular-amherst",
        drivers=_spider_fleet(),
    )


@register("vehicular-boston")
def vehicular_boston() -> ScenarioSpec:
    """Same loop, Cabernet's Boston channel mix (more ch-6 overlap)."""
    return ScenarioSpec(
        name="vehicular-boston",
        deployment=DeploymentSpec(channel_mix=dict(BOSTON_CHANNEL_MIX)),
        drivers=_spider_fleet(),
    )


@register("lab")
def lab() -> ScenarioSpec:
    """Indoor/static template: clean short-range channel, no APs yet.

    Experiments (and ad-hoc specs) place their own APs — either in the
    spec's ``deployment.aps`` or via ``World.add_lab_ap`` — so the
    template deliberately ships empty.
    """
    return ScenarioSpec(
        name="lab",
        propagation=PropagationSpec(range_m=50.0, base_loss=0.02, edge_start=0.95),
        mobility=MobilitySpec(kind="static", x=0.0, y=0.0),
        deployment=DeploymentSpec(kind="explicit"),
    )


@register("dense-downtown")
def dense_downtown() -> ScenarioSpec:
    """Storefront-row density at crawl speed: many overlapping cells.

    Twice the Amherst AP density, bigger clusters, slower traffic —
    the regime where multi-AP aggregation pays most and per-AP slicing
    (FatVAP-style) pays switching tax most often.
    """
    return ScenarioSpec(
        name="dense-downtown",
        mobility=MobilitySpec(kind="loop", speed=5.0),
        deployment=DeploymentSpec(
            density_per_km=14.0,
            cluster_size_mean=5.0,
            cluster_radius=35.0,
        ),
        drivers=_spider_fleet(),
    )


@register("sparse-highway")
def sparse_highway() -> ScenarioSpec:
    """Long fast loop with rare roadside APs: encounter-starved regime."""
    return ScenarioSpec(
        name="sparse-highway",
        mobility=MobilitySpec(kind="loop", speed=25.0, route_width=2400.0, route_height=400.0),
        deployment=DeploymentSpec(
            density_per_km=1.5,
            cluster_size_mean=1.5,
            lateral_spread=120.0,
        ),
        drivers=_spider_fleet(),
    )


@register("lossy-backhaul")
def lossy_backhaul() -> ScenarioSpec:
    """Amherst loop over thin DSL backhauls with doubled wire latency.

    Shifts the bottleneck from the air to the wire: tests whether the
    scheduler still wins when per-AP capacity is scarce.
    """
    return ScenarioSpec(
        name="lossy-backhaul",
        wired_latency=0.15,
        deployment=DeploymentSpec(
            backhaul_bps_min=2.0e5,
            backhaul_bps_max=1.5e6,
        ),
        drivers=_spider_fleet(),
    )


def _quadrants(width: float, height: float) -> tuple:
    """Four quadrant partitions tiling ``[0, width) × [0, height)``."""
    mid_x = width / 2.0
    mid_y = height / 2.0
    return (
        PartitionSpec("sw", 0.0, 0.0, mid_x, mid_y),
        PartitionSpec("se", mid_x, 0.0, width, mid_y),
        PartitionSpec("nw", 0.0, mid_y, mid_x, height),
        PartitionSpec("ne", mid_x, mid_y, width, height),
    )


@register("metro-core")
def metro_core() -> ScenarioSpec:
    """City-scale stress world: a 4.8 × 3.8 km block grid, ~10k APs.

    1280 city blocks at metro density (mean 8.5 APs each ⇒ ~10,900
    APs), split into four quadrant mediums with edge handoff; one
    Spider loops through all four quadrants. This is the scale the
    spatial index and the partitioned medium exist for — the default
    duration is short because 10k beaconing APs emit ~10⁵ frames per
    simulated second.
    """
    width = 40 * 120.0
    height = 32 * 120.0
    return ScenarioSpec(
        name="metro-core",
        duration=5.0,
        mobility=MobilitySpec(kind="loop", speed=10.0, route_width=3000.0, route_height=2400.0),
        deployment=DeploymentSpec(
            kind="metro",
            blocks_x=40,
            blocks_y=32,
            block_m=120.0,
            aps_per_block=8.5,
        ),
        phy=PhySpec(handoff_period_s=1.0),
        partitions=_quadrants(width, height),
        drivers=_spider_fleet(),
    )


@register("metro-core-small")
def metro_core_small() -> ScenarioSpec:
    """CI-sized metro world: same shape as metro-core, ~40 APs.

    Small enough for the digest-identity golden
    (``tests/goldens/scenario-digests.json``) to run at the standard
    90 s window, while still exercising every metro-specific code
    path: block-grid deployment, four quadrant mediums, and partition
    handoff as the client loops across all quadrant edges.
    """
    width = 6 * 120.0
    height = 4 * 120.0
    return ScenarioSpec(
        name="metro-core-small",
        mobility=MobilitySpec(kind="loop", speed=10.0, route_width=600.0, route_height=360.0),
        deployment=DeploymentSpec(
            kind="metro",
            blocks_x=6,
            blocks_y=4,
            block_m=120.0,
            aps_per_block=1.7,
        ),
        phy=PhySpec(handoff_period_s=1.0),
        partitions=_quadrants(width, height),
        drivers=_spider_fleet(),
    )


__all__ = [
    "ApSpec",
    "UnknownScenarioError",
    "names",
    "register",
    "scenario",
]
