"""Result extraction: what the evaluation metrics need from one run.

:class:`RunResult` is the lingua franca between a finished driver and
every figure/table in the evaluation. It lives in the scenario package
because extraction is the last step of *running a scenario*;
``repro.experiments.common`` re-exports it for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class RunResult:
    """Everything the evaluation metrics need from one run."""

    duration: float
    throughput_kbytes_per_s: float
    connectivity: float
    connection_durations: List[float]
    disruption_durations: List[float]
    instantaneous_kbytes: List[float]
    join_attempts: int
    join_successes: int
    dhcp_failure_rate: float
    association_times: List[float]
    join_times: List[float]

    def summary(self) -> Dict[str, float]:
        return {
            "throughput_KBps": round(self.throughput_kbytes_per_s, 1),
            "connectivity_pct": round(self.connectivity * 100.0, 1),
            "join_attempts": self.join_attempts,
            "join_successes": self.join_successes,
            "dhcp_failure_pct": round(self.dhcp_failure_rate * 100.0, 1),
        }


def result_from_driver(driver, duration: float) -> RunResult:
    """Collect a finished driver's recorder + join log into a result."""
    recorder = driver.recorder
    join_log = getattr(driver, "join_log", None)
    return RunResult(
        duration=duration,
        throughput_kbytes_per_s=recorder.average_throughput_kbytes_per_s(),
        connectivity=recorder.connectivity_fraction(),
        connection_durations=recorder.connection_durations(),
        disruption_durations=recorder.disruption_durations(),
        instantaneous_kbytes=recorder.instantaneous_bandwidths_kbytes(),
        join_attempts=join_log.attempts() if join_log else 0,
        join_successes=join_log.successes() if join_log else 0,
        dhcp_failure_rate=join_log.dhcp_failure_rate() if join_log else 0.0,
        association_times=join_log.association_times() if join_log else [],
        join_times=join_log.join_times() if join_log else [],
    )
