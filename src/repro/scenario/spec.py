"""The declarative scenario schema: ``ScenarioSpec`` and its parts.

A scenario is everything needed to reconstruct a world and a workload:
propagation, mobility, AP deployment (generated along a route or an
explicit list), per-AP backhaul/DHCP profiles, the driver fleet, the
traffic mix, and failure injection. A spec is *data* — plain values
with a canonical dict form — so it can round-trip through TOML/JSON,
key the ``repro.exec`` result cache, and travel to worker processes.

Nothing here touches the simulator; :mod:`repro.scenario.build` turns
a spec into a wired world. The named presets live in
:mod:`repro.scenario.registry`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union


class SpecError(ValueError):
    """A scenario spec that cannot be interpreted."""


@dataclass(frozen=True)
class PropagationSpec:
    """Radio propagation knobs (see ``repro.phy.propagation``)."""

    range_m: float = 100.0
    base_loss: float = 0.10
    edge_start: float = 0.50


@dataclass(frozen=True)
class PhySpec:
    """PHY-layer wiring knobs (see ``repro.phy.radio`` / ``partition``).

    ``spatial_index=False`` selects the scalar full-channel-scan oracle
    inside every ``Medium`` — slower, but the reference the grid path
    is proven digest-identical against. ``kernel`` picks the broadcast
    delivery implementation: ``"vector"`` (the default) batches the
    fan-out geometry through ``repro.phy.kernel``; ``"scalar"`` keeps
    the per-entry loop, the oracle the kernel is proven byte-identical
    against (DESIGN.md §6.3). ``handoff_period_s`` is the partition
    poll period for mobile radios (only meaningful when the spec
    declares ``[[partitions]]``).
    """

    spatial_index: bool = True
    handoff_period_s: float = 1.0
    kernel: str = "vector"


@dataclass(frozen=True)
class PartitionSpec:
    """One geographic region served by its own medium (half-open bbox)."""

    name: str
    x_min: float
    y_min: float
    x_max: float
    y_max: float


@dataclass(frozen=True)
class MobilitySpec:
    """Client motion: a rectangular vehicular loop or a static point."""

    kind: str = "loop"  # "loop" | "static"
    speed: float = 10.0  # m/s, loop only
    route_width: float = 900.0
    route_height: float = 350.0
    x: float = 0.0  # static only
    y: float = 0.0


@dataclass(frozen=True)
class ApSpec:
    """One explicitly-placed access point (lab/indoor worlds)."""

    name: str
    channel: int
    backhaul_bps: float
    beta_min: float = 0.2
    beta_max: float = 1.0
    x: float = 10.0
    y: float = 0.0


@dataclass(frozen=True)
class DeploymentSpec:
    """Where APs come from: a generated roadside scatter or a list.

    ``kind="generated"`` mirrors ``repro.world.deployment``'s Poisson
    cluster process (requires loop mobility for the route);
    ``kind="explicit"`` places exactly ``aps``; ``kind="metro"`` tiles
    a ``blocks_x × blocks_y`` city-block grid (``block_m`` per side)
    with a Poisson ``aps_per_block`` APs scattered per block — the
    city-scale shape the partitioned medium exists for.
    """

    kind: str = "generated"  # "generated" | "explicit" | "metro"
    density_per_km: float = 6.0
    #: channel → probability; ``None`` keeps the Amherst default mix.
    channel_mix: Optional[Dict[int, float]] = None
    lateral_spread: float = 80.0
    cluster_size_mean: float = 3.5
    cluster_radius: float = 50.0
    backhaul_bps_min: float = 1.0e6
    backhaul_bps_max: float = 10.0e6
    beta_min_range: Tuple[float, float] = (0.15, 0.6)
    beta_max_range: Tuple[float, float] = (1.0, 4.0)
    open_fraction: float = 1.0
    aps: Tuple[ApSpec, ...] = ()
    # metro only (omitted from the canonical form at these defaults)
    blocks_x: int = 0
    blocks_y: int = 0
    block_m: float = 120.0
    aps_per_block: float = 2.0


#: Default value per DeploymentSpec field — ``to_dict`` drops the
#: metro-only keys at these values to keep pre-metro digests stable.
_DEPLOYMENT_DEFAULTS: Dict[str, Any] = {
    f.name: f.default for f in fields(DeploymentSpec) if f.default is not None
}


@dataclass(frozen=True)
class TrafficSpec:
    """Workload carried by each joined AP.

    ``bulk-tcp`` is the paper's workload (an infinite download per
    joined AP); ``none`` disables automatic flows (latency studies).
    """

    kind: str = "bulk-tcp"  # "bulk-tcp" | "none"


@dataclass(frozen=True)
class DriverSpec:
    """One kind of client in the fleet.

    ``config`` holds the driver's own knobs verbatim (e.g.
    ``SpiderConfig`` fields; a ``schedule`` table maps channel →
    fraction). ``count`` > 1 replicates the driver with indexed
    addresses — the contention experiments' population knob.
    """

    kind: str = "spider"  # "spider" | "stock" | "fatvap" | "multicard"
    address: str = ""
    count: int = 1
    cards: int = 2  # multicard only
    config: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FailureSpec:
    """One injected fault.

    Kinds: ``ap-outage`` (the AP powers off at ``at`` seconds),
    ``dhcp-wedge`` (the AP's DHCP daemon stops answering at ``at``).
    """

    kind: str
    ap: str
    at: float = 0.0


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable description of one simulated world."""

    name: str = "adhoc"
    seed: int = 1
    duration: float = 300.0
    wired_latency: float = 0.075
    propagation: PropagationSpec = field(default_factory=PropagationSpec)
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    deployment: DeploymentSpec = field(default_factory=DeploymentSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    phy: PhySpec = field(default_factory=PhySpec)
    partitions: Tuple[PartitionSpec, ...] = ()
    drivers: Tuple[DriverSpec, ...] = ()
    failures: Tuple[FailureSpec, ...] = ()

    # -- canonical dict form --------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: tuples → lists, all dict keys → strings.

        String keys keep the dict TOML/JSON-representable (channel
        tables like ``schedule`` and ``channel_mix`` use integer keys
        internally); the readers convert back.

        Fields introduced after PR 5 are *omitted at their defaults*:
        the canonical form — and hence ``digest()``, the exec cache
        key, and every committed golden — is unchanged for any spec
        that does not use them.
        """
        data = _plain(asdict(self))
        if self.phy == PhySpec():
            del data["phy"]
        elif self.phy.kernel == "vector":
            # Default kernel — omitted so pre-kernel digests (and any
            # spec that only tweaks the other phy knobs) are unchanged.
            del data["phy"]["kernel"]
        if not self.partitions:
            del data["partitions"]
        deployment = data["deployment"]
        for metro_field in ("blocks_x", "blocks_y", "block_m", "aps_per_block"):
            if deployment[metro_field] == _DEPLOYMENT_DEFAULTS[metro_field]:
                del deployment[metro_field]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        spec = cls(
            propagation=_sub(PropagationSpec, data.pop("propagation", None)),
            mobility=_sub(MobilitySpec, data.pop("mobility", None)),
            deployment=_deployment(data.pop("deployment", None)),
            traffic=_sub(TrafficSpec, data.pop("traffic", None)),
            phy=_sub(PhySpec, data.pop("phy", None)),
            partitions=tuple(
                _sub(PartitionSpec, p, required=True) for p in _seq(data.pop("partitions", ()))
            ),
            drivers=tuple(
                _sub(DriverSpec, d, required=True) for d in _seq(data.pop("drivers", ()))
            ),
            failures=tuple(
                _sub(FailureSpec, f, required=True) for f in _seq(data.pop("failures", ()))
            ),
            **_scalars(cls, data),
        )
        return spec.validated()

    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """Top-level field overrides (``seed``, ``duration``, …)."""
        unknown = sorted(set(overrides) - {f.name for f in fields(self)})
        if unknown:
            raise SpecError(f"unknown scenario override(s): {', '.join(unknown)}")
        return replace(self, **overrides)

    def with_propagation(self, **overrides: Any) -> "ScenarioSpec":
        return replace(self, propagation=replace(self.propagation, **overrides))

    def with_mobility(self, **overrides: Any) -> "ScenarioSpec":
        return replace(self, mobility=replace(self.mobility, **overrides))

    def with_deployment(self, **overrides: Any) -> "ScenarioSpec":
        """Deployment-field overrides (the ablation sweeps' workhorse)."""
        return replace(self, deployment=replace(self.deployment, **overrides))

    def with_phy(self, **overrides: Any) -> "ScenarioSpec":
        """PHY-field overrides (e.g. ``spatial_index=False`` → oracle)."""
        return replace(self, phy=replace(self.phy, **overrides))

    def validated(self) -> "ScenarioSpec":
        if self.mobility.kind not in ("loop", "static"):
            raise SpecError(f"unknown mobility kind {self.mobility.kind!r}")
        if self.deployment.kind not in ("generated", "explicit", "metro"):
            raise SpecError(f"unknown deployment kind {self.deployment.kind!r}")
        if self.deployment.kind == "generated" and self.mobility.kind != "loop":
            raise SpecError("a generated deployment needs loop mobility (it lines the route)")
        if self.deployment.kind == "explicit" and self.deployment.channel_mix is not None:
            raise SpecError("channel_mix only applies to generated and metro deployments")
        if self.deployment.kind == "metro":
            if self.deployment.blocks_x < 1 or self.deployment.blocks_y < 1:
                raise SpecError("a metro deployment needs blocks_x >= 1 and blocks_y >= 1")
            if self.deployment.block_m <= 0:
                raise SpecError("block_m must be positive")
            if self.deployment.aps_per_block <= 0:
                raise SpecError("aps_per_block must be positive")
        if self.phy.handoff_period_s <= 0:
            raise SpecError("handoff_period_s must be positive")
        if self.phy.kernel not in ("scalar", "vector"):
            raise SpecError(f"unknown phy kernel {self.phy.kernel!r} (use 'scalar' or 'vector')")
        region_names: set = set()
        for partition in self.partitions:
            if not partition.name:
                raise SpecError("partition names must be non-empty")
            if partition.name in region_names:
                raise SpecError(f"duplicate partition name {partition.name!r}")
            region_names.add(partition.name)
            if partition.x_max <= partition.x_min or partition.y_max <= partition.y_min:
                raise SpecError(
                    f"partition {partition.name!r} has an empty bbox "
                    "(need x_max > x_min and y_max > y_min)"
                )
        if self.traffic.kind not in ("bulk-tcp", "none"):
            raise SpecError(f"unknown traffic kind {self.traffic.kind!r}")
        for driver in self.drivers:
            if driver.kind not in ("spider", "stock", "fatvap", "multicard"):
                raise SpecError(f"unknown driver kind {driver.kind!r}")
            if driver.count < 1:
                raise SpecError(f"driver count must be >= 1 (got {driver.count})")
        for failure in self.failures:
            if failure.kind not in ("ap-outage", "dhcp-wedge"):
                raise SpecError(f"unknown failure kind {failure.kind!r}")
        if self.duration <= 0:
            raise SpecError("duration must be positive")
        seen: set = set()
        for ap in self.deployment.aps:
            if ap.name in seen:
                raise SpecError(f"duplicate AP name {ap.name!r}")
            seen.add(ap.name)
        return self

    # -- serialization ---------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def to_toml(self) -> str:
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        import tomllib

        try:
            return cls.from_dict(tomllib.loads(text))
        except tomllib.TOMLDecodeError as error:
            raise SpecError(f"invalid TOML: {error}") from error

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Read a spec file; the suffix picks the format."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise SpecError(f"cannot read spec {path}: {error}") from error
        if path.suffix == ".json":
            return cls.from_json(text)
        if path.suffix == ".toml":
            return cls.from_toml(text)
        raise SpecError(f"unknown spec format {path.suffix!r} (use .toml or .json)")

    def digest(self) -> str:
        """SHA-256 of the canonical serialization — the cache identity."""
        from repro.exec.cache import canonical_text

        return hashlib.sha256(canonical_text(self.to_dict()).encode()).hexdigest()


# -- from_dict helpers ------------------------------------------------------


def _plain(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _scalars(cls, data: Dict[str, Any]) -> Dict[str, Any]:
    """The remaining top-level scalar fields, with unknown-key errors."""
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecError(
            f"unknown scenario field(s): {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(allowed))})"
        )
    return data


def _sub(cls, data: Any, required: bool = False):
    if data is None:
        if required:
            raise SpecError(f"missing {cls.__name__} table")
        return cls()
    if isinstance(data, cls):
        return data
    if not isinstance(data, Mapping):
        raise SpecError(f"{cls.__name__} must be a table, got {type(data).__name__}")
    data = dict(data)
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecError(
            f"unknown {cls.__name__} field(s): {', '.join(unknown)} "
            f"(valid: {', '.join(sorted(allowed))})"
        )
    try:
        return cls(**data)
    except TypeError as error:
        raise SpecError(f"bad {cls.__name__}: {error}") from error


def _seq(data: Any) -> Sequence:
    if isinstance(data, Sequence) and not isinstance(data, (str, bytes)):
        return data
    raise SpecError(f"expected an array of tables, got {type(data).__name__}")


def _deployment(data: Any) -> DeploymentSpec:
    if data is None:
        return DeploymentSpec()
    if isinstance(data, DeploymentSpec):
        return data
    if not isinstance(data, Mapping):
        raise SpecError(f"DeploymentSpec must be a table, got {type(data).__name__}")
    data = dict(data)
    aps = tuple(_sub(ApSpec, ap, required=True) for ap in _seq(data.pop("aps", ())))
    mix = data.pop("channel_mix", None)
    if mix is not None:
        if not isinstance(mix, Mapping):
            raise SpecError("channel_mix must be a table of channel -> probability")
        try:
            mix = {int(channel): float(weight) for channel, weight in mix.items()}
        except (TypeError, ValueError) as error:
            raise SpecError(f"bad channel_mix: {error}") from error
    for key in ("beta_min_range", "beta_max_range"):
        if key in data:
            value = data[key]
            if not (isinstance(value, Sequence) and len(value) == 2):
                raise SpecError(f"{key} must be a [low, high] pair")
            data[key] = (float(value[0]), float(value[1]))
    spec = _sub(DeploymentSpec, data)
    return replace(spec, channel_mix=mix, aps=aps)


# -- minimal TOML emission --------------------------------------------------
#
# The stdlib reads TOML (tomllib) but does not write it; specs only
# need scalars, arrays, tables, and arrays of tables, so a small
# emitter keeps the round-trip dependency-free.

_BARE_KEY = __import__("re").compile(r"^[A-Za-z0-9_-]+$")


def _toml_key(key: str) -> str:
    return key if _BARE_KEY.match(key) else json.dumps(key)


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item) for item in value) + "]"
    raise SpecError(f"cannot serialize {type(value).__name__} to TOML")


def dumps_toml(data: Mapping[str, Any], prefix: str = "") -> str:
    """Emit a nested dict as TOML (scalars, then tables, then [[arrays]])."""
    lines: List[str] = []
    tables: List[Tuple[str, Mapping]] = []
    table_arrays: List[Tuple[str, Sequence[Mapping]]] = []
    for key, value in data.items():
        if value is None:
            continue  # "unset" — the reader falls back to the default
        full = f"{prefix}{_toml_key(key)}"
        if isinstance(value, Mapping):
            tables.append((full, value))
        elif (
            isinstance(value, Sequence)
            and not isinstance(value, (str, bytes))
            and value
            and all(isinstance(item, Mapping) for item in value)
        ):
            table_arrays.append((full, value))
        else:
            lines.append(f"{_toml_key(key)} = {_toml_value(value)}")
    out = "\n".join(lines)
    for full, table in tables:
        body = dumps_toml(table, prefix=f"{full}.")
        if body.strip():
            out += f"\n\n[{full}]\n{body}"
    for full, items in table_arrays:
        for item in items:
            body = dumps_toml(item, prefix=f"{full}.")
            out += f"\n\n[[{full}]]\n{body}"
    return out.strip() + "\n" if prefix == "" else out.strip()
