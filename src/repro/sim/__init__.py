"""Discrete-event simulation substrate.

This package provides the event engine every other subsystem runs on:

- :class:`~repro.sim.engine.Simulator` — the event loop (heap of timed
  callbacks, deterministic tie-breaking, generator-based processes).
- :class:`~repro.sim.engine.Event` — a one-shot waitable condition.
- :class:`~repro.sim.engine.Timeout` — yielded by a process to sleep.
- :class:`~repro.sim.timers.Timer` — a restartable/cancellable one-shot
  timer, the building block for protocol retransmission logic.
- :class:`~repro.sim.randomness.RandomStreams` — named, independently
  seeded RNG streams so subsystems do not perturb each other's draws.
"""

from repro.sim.engine import Event, EventHandle, Process, Simulator, Timeout
from repro.sim.randomness import RandomStreams
from repro.sim.timers import Timer

__all__ = [
    "Event",
    "EventHandle",
    "Process",
    "RandomStreams",
    "Simulator",
    "Timeout",
    "Timer",
]
