"""Core discrete-event simulation engine.

The engine is a heap of ``(time, sequence, callback)`` entries. Sequence
numbers break ties so that runs are fully deterministic for a given seed.
On top of the raw callback API sits a small generator-based process layer
(in the style of SimPy): a process is a generator that yields
:class:`Timeout`, :class:`Event`, or another :class:`Process`, and is
resumed when the yielded condition fires.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for misuse of the simulation engine."""


#: Ambient observability defaults: newly constructed simulators adopt
#: these as their ``trace`` / ``metrics`` / ``spans`` handles.
#: Installed by :func:`repro.obs.report.observe` around experiment runs
#: so the CLI can observe simulators that experiments construct
#: internally.
_default_trace: Optional[Any] = None
_default_metrics: Optional[Any] = None
_default_spans: Optional[Any] = None


def set_default_observability(
    trace: Optional[Any] = None,
    metrics: Optional[Any] = None,
    spans: Optional[Any] = None,
) -> None:
    """Set (or, with no arguments, clear) the ambient trace/metrics/spans."""
    global _default_trace, _default_metrics, _default_spans
    _default_trace = trace
    _default_metrics = metrics
    _default_spans = spans


class EventHandle:
    """A cancellable reference to a scheduled callback.

    Returned by :meth:`Simulator.schedule`. Cancelling a handle is O(1):
    the heap entry is tombstoned and skipped when popped. ``cancelled``
    means "will not / did not run via this handle any more": the engine
    also sets it when the callback fires, which makes a late
    :meth:`cancel` a no-op and keeps the simulator's O(1) tombstone
    count honest without any hot-path bookkeeping.

    The heap holds plain ``(time, seq, handle)`` tuples: ``seq`` is
    unique, so heap sifting only ever compares floats and ints at C
    speed and never calls back into Python — measurably cheaper than
    making the (slotted) handle itself comparable, which cost one
    ``__lt__`` frame per comparison on million-event runs.
    """

    __slots__ = ("time", "seq", "cancelled", "_callback", "_args", "_sim")

    def __init__(
        self,
        sim: "Simulator",
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        seq: int = 0,
    ):
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._callback = callback
        self._args = args
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call repeatedly."""
        if not self.cancelled:
            self.cancelled = True
            self._sim._cancelled_pending += 1


class Event:
    """A one-shot waitable condition.

    Processes yield an ``Event`` to suspend until someone calls
    :meth:`succeed` (or :meth:`fail`). Multiple processes may wait on the
    same event; all are resumed in registration order. Callbacks may also
    be attached directly via :meth:`add_callback`.
    """

    __slots__ = ("sim", "triggered", "value", "_error", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._error is None

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered, the callback runs on the next
        engine step (never synchronously), preserving causal ordering.
        """
        if self.triggered:
            self.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for callback in self._callbacks:
            self.sim.schedule(0.0, callback, self)
        self._callbacks.clear()
        return self

    def fail(self, error: BaseException) -> "Event":
        """Trigger the event as a failure; waiting processes re-raise."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._error = error
        for callback in self._callbacks:
            self.sim.schedule(0.0, callback, self)
        self._callbacks.clear()
        return self

    @property
    def error(self) -> Optional[BaseException]:
        return self._error


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value


class Process:
    """A running generator-based process.

    A ``Process`` is itself waitable: yielding a process from another
    process suspends the parent until the child returns. The child's
    return value becomes the value sent to the parent.
    """

    __slots__ = ("sim", "generator", "done", "value", "_error", "_waiters", "_interrupted")

    def __init__(self, sim: "Simulator", generator: Generator):
        self.sim = sim
        self.generator = generator
        self.done = False
        self.value: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: List["Process"] = []
        self._interrupted: Optional[BaseException] = None
        sim.schedule(0.0, self._step, None, None)

    def interrupt(self, reason: str = "interrupted") -> None:
        """Throw :class:`Interrupted` into the process at its next resume."""
        if self.done:
            return
        self._interrupted = Interrupted(reason)
        self.sim.schedule(0.0, self._step, None, None)

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        self.done = True
        self.value = value
        self._error = error
        for waiter in self._waiters:
            if error is None:
                self.sim.schedule(0.0, waiter._step, value, None)
            else:
                self.sim.schedule(0.0, waiter._step, None, error)
        self._waiters.clear()

    def _step(self, send_value: Any, throw_error: Optional[BaseException]) -> None:
        if self.done:
            return
        try:
            if self._interrupted is not None:
                error, self._interrupted = self._interrupted, None
                yielded = self.generator.throw(error)
            elif throw_error is not None:
                yielded = self.generator.throw(throw_error)
            else:
                yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except Interrupted as error:
            self._finish(None, error)
            return

        if isinstance(yielded, Timeout):
            self.sim.schedule(yielded.delay, self._step, yielded.value, None)
        elif isinstance(yielded, Event):
            yielded.add_callback(self._on_event)
        elif isinstance(yielded, Process):
            if yielded.done:
                self.sim.schedule(0.0, self._step, yielded.value, yielded._error)
            else:
                yielded._waiters.append(self)
        else:
            raise SimulationError(
                f"process yielded unsupported value: {yielded!r} "
                "(expected Timeout, Event, or Process)"
            )

    def _on_event(self, event: Event) -> None:
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.error)


class Interrupted(Exception):
    """Raised inside a process that was interrupted."""


class Simulator:
    """The discrete-event loop.

    >>> sim = Simulator()
    >>> log = []
    >>> _ = sim.schedule(1.0, log.append, "a")
    >>> _ = sim.schedule(0.5, log.append, "b")
    >>> sim.run()
    >>> log
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._sequence = itertools.count()
        self._stopped = False
        #: Cancelled entries still sitting in the heap as tombstones.
        #: ``pending_events`` is ``len(heap) - this`` — maintained on
        #: the rare paths (cancel, tombstone pop) so the per-event
        #: schedule/fire path pays nothing for it.
        self._cancelled_pending = 0
        #: Total callbacks fired; feeds the metrics registry's
        #: events-executed / events-per-second accounting.
        self.events_executed = 0
        #: Optional observability handles (see ``repro.obs``). ``None``
        #: unless a bus/registry/profiler is attached explicitly or
        #: ambiently; instrumentation points throughout the stack guard
        #: on that.
        self.trace: Optional[Any] = _default_trace
        self.metrics: Optional[Any] = _default_metrics
        self.spans: Optional[Any] = _default_spans
        if self.trace is not None:
            self.trace.attach(self)
        if self.metrics is not None:
            self.metrics.add_source(self._metrics_source)

    def _metrics_source(self) -> dict:
        return {
            "sim.events_executed": self.events_executed,
            "sim.pending_events": self.pending_events,
            "sim.heap_depth": len(self._heap),
        }

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        seq = next(self._sequence)
        handle = EventHandle(self, time, callback, args, seq)
        heapq.heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def event(self) -> Event:
        """Create a fresh (untriggered) :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` for use inside a process."""
        return Timeout(delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a process; it begins on the next step."""
        return Process(self, generator)

    # -- execution -------------------------------------------------------

    def stop(self) -> None:
        """Stop the run loop after the current callback returns."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the single next event. Returns False if none remain.

        The single-step entry point for tests and campaign drivers; the
        run loop does not call it — ``_run_loop`` inlines the same body
        with a batched same-timestamp drain.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _, handle = pop(heap)
            if handle.cancelled:
                self._cancelled_pending -= 1
                continue
            if time < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            # Mark consumed: a later cancel() must be a no-op.
            handle.cancelled = True
            self.now = time
            self.events_executed += 1
            handle._callback(*handle._args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains, ``stop()`` is called, or ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier. The unbounded
        loop skips the per-event deadline peek entirely.

        With a span profiler installed, the whole run is wrapped in one
        ``sim.run`` span carrying the events executed and the final
        simulated clock; the guard keeps the disabled path span-free.
        """
        spans = self.spans
        if spans is not None:
            before = self.events_executed
            with spans.span("sim.run") as span:
                self._run_loop(until)
                span.add(events=self.events_executed - before, sim_t=self.now)
            return
        self._run_loop(until)

    def _run_loop(self, until: Optional[float]) -> None:
        """The inlined hot loop: batched same-timestamp dispatch.

        Discrete-event workloads are bursty in simulated time — a
        broadcast completion fans out dozens of zero-delay deliveries
        and process resumes sharing one timestamp. The loop drains
        every heap entry sharing ``now`` in one iteration: the clock
        write, the monotonicity check, and (in bounded mode) the
        deadline peek happen once per *timestamp*, not once per event,
        with the pop/tombstone/fire locals hoisted out of the drain.
        ``events_executed`` still advances per callback (metrics
        snapshots scheduled inside a batch must observe the exact
        per-event count the unbatched loop produced), and ``stop()``
        still takes effect after the current callback returns.
        """
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        while not self._stopped:
            # Advance to the next live entry (tombstone sweep).
            while heap:
                time, _, handle = heap[0]
                if handle.cancelled:
                    pop(heap)
                    self._cancelled_pending -= 1
                    continue
                break
            else:
                break
            if time < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            if until is not None and time > until:
                break
            self.now = time
            # Drain everything sharing this timestamp, including
            # zero-delay events the callbacks push while we drain.
            while heap and heap[0][0] == time:
                entry_handle = pop(heap)[2]
                if entry_handle.cancelled:
                    self._cancelled_pending -= 1
                    continue
                entry_handle.cancelled = True
                self.events_executed += 1
                entry_handle._callback(*entry_handle._args)
                if self._stopped:
                    break
        if until is not None and until > self.now:
            self.now = until

    def _next_pending_time(self) -> Optional[float]:
        heap = self._heap
        while heap:
            time, _, handle = heap[0]
            if handle.cancelled:
                heapq.heappop(heap)
                self._cancelled_pending -= 1
                continue
            return time
        return None

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) scheduled events.

        O(1): the heap length minus the tombstone count, maintained on
        cancel and tombstone-pop only — the metrics registry samples
        this on every snapshot, so it must stay off the hot path, and
        the hot schedule/fire path must not pay for it either.
        """
        return len(self._heap) - self._cancelled_pending
