"""Named, independently seeded random streams.

A single shared RNG makes simulations fragile: adding one draw in the
radio model would shift every subsequent draw in DHCP and TCP, changing
results for unrelated reasons. ``RandomStreams`` derives one
:class:`random.Random` per subsystem name from a root seed, so streams
are independent and stable as the codebase grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of named, deterministic :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("phy")
    >>> b = streams.get("phy")
    >>> a is b
    True
    >>> streams.get("dhcp") is a
    False
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, salt: int) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per run index).

        Forked roots hash in their own domain: :meth:`get` hashes
        ``{seed}:{name}`` (a decimal-digit prefix), fork hashes
        ``fork\\x1f{seed}\\x1f{salt}`` — no name can make the two
        strings coincide, so a stream literally named ``"fork:1"``
        never shares seed material with the family ``fork(1)`` derives.
        """
        digest = hashlib.sha256(f"fork\x1f{self.seed}\x1f{salt}".encode()).digest()
        return RandomStreams(seed=int.from_bytes(digest[:8], "big") & 0x7FFFFFFF)
