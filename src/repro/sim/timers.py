"""Restartable one-shot timers.

Protocol state machines (association, DHCP, TCP retransmission) are
dominated by "arm a timeout, maybe cancel it, maybe re-arm it" logic.
:class:`Timer` packages that pattern so the protocol code stays readable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, Simulator


class Timer:
    """A one-shot timer that can be started, restarted, and cancelled.

    The callback fires once per :meth:`start`; restarting an armed timer
    cancels the previous arming. The timer object is reusable.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., Any], *args: Any):
        self._sim = sim
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True while a firing is pending."""
        return self._handle is not None and not self._handle.cancelled

    @property
    def deadline(self) -> Optional[float]:
        """Absolute simulated time of the pending firing, or None."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire after ``delay`` seconds."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed. Safe to call when idle."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback(*self._args)
