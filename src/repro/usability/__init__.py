"""Usability study substrate (Sec. 4.7).

The paper compares Spider's connectivity profile against one day of
TCP flows from 161 users of a 25-node downtown mesh (128,587
connections, 13.6 M packets). We cannot have that trace; this package
generates a synthetic equivalent matched to the reported aggregate
statistics, exposing the two distributions Figs. 13/14 actually use:
TCP connection durations and inter-connection times.
"""

from repro.usability.mesh_trace import MeshTrace, MeshTraceConfig, generate_mesh_trace

__all__ = ["MeshTrace", "MeshTraceConfig", "generate_mesh_trace"]
