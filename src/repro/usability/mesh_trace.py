"""Synthetic mesh-user trace generator.

Reproduces the *distributional* content of the paper's mesh dataset:

- 161 wireless users over one day;
- 128,587 completed TCP connections (≈ 800 per user);
- 13,645,161 packets / 1.7 GB total (≈ 106 packets ≈ 13 KB per flow);
- 68% of connections to the HTTP port.

Flow durations and inter-connection times follow log-normal
distributions — the standard heavy-tailed shape of web traffic — with
parameters chosen so the per-flow packet/byte averages match the
reported aggregates and the duration mass sits in the few-second web
range that Fig. 13 shows Spider comfortably covering.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List


@dataclass
class MeshTraceConfig:
    """Calibration targets (defaults = the paper's aggregates)."""

    users: int = 161
    flows_per_user_mean: float = 800.0
    http_fraction: float = 0.68
    #: log-normal duration: median e^mu ≈ 2.7 s, heavy tail.
    duration_mu: float = 1.0
    duration_sigma: float = 1.3
    #: log-normal inter-connection gap: median ≈ 25 s.
    gap_mu: float = 3.2
    gap_sigma: float = 1.4
    packets_per_flow_mean: float = 106.0
    bytes_per_packet: float = 130.0
    seed: int = 42


@dataclass
class MeshTrace:
    """The generated trace, reduced to what the study uses."""

    durations: List[float]
    gaps: List[float]
    http_flows: int
    total_packets: int
    total_bytes: int

    @property
    def flows(self) -> int:
        return len(self.durations)

    def summary(self) -> Dict[str, float]:
        return {
            "flows": self.flows,
            "http_fraction": self.http_flows / self.flows if self.flows else 0.0,
            "total_packets": self.total_packets,
            "total_gb": self.total_bytes / 1e9,
        }


def generate_mesh_trace(config: MeshTraceConfig = MeshTraceConfig()) -> MeshTrace:
    """Draw the synthetic day of mesh traffic."""
    rng = random.Random(config.seed)
    durations: List[float] = []
    gaps: List[float] = []
    http_flows = 0
    total_packets = 0
    for _user in range(config.users):
        # Per-user flow count: Poisson-ish via Gaussian approximation.
        flows = max(1, int(rng.gauss(config.flows_per_user_mean,
                                     math.sqrt(config.flows_per_user_mean))))
        for _ in range(flows):
            durations.append(rng.lognormvariate(config.duration_mu, config.duration_sigma))
            gaps.append(rng.lognormvariate(config.gap_mu, config.gap_sigma))
            if rng.random() < config.http_fraction:
                http_flows += 1
            # Packet count per flow: geometric-ish heavy tail.
            total_packets += max(1, int(rng.expovariate(1.0 / config.packets_per_flow_mean)))
    total_bytes = int(total_packets * config.bytes_per_packet)
    return MeshTrace(
        durations=durations,
        gaps=gaps,
        http_flows=http_flows,
        total_packets=total_packets,
        total_bytes=total_bytes,
    )
