"""Physical world substrate: geometry, mobility, and AP deployments.

Replaces the paper's outdoor vehicular testbed (Amherst / Boston). The
evaluation's independent variables — node speed, AP density, channel
mix, backhaul bandwidth — are explicit parameters here.
"""

from repro.world.deployment import (
    AMHERST_CHANNEL_MIX,
    BOSTON_CHANNEL_MIX,
    ApSite,
    Deployment,
    DeploymentConfig,
    generate_deployment,
)
from repro.world.geometry import Point, distance
from repro.world.mobility import (
    ConstantVelocityMobility,
    LoopRouteMobility,
    MobilityModel,
    StaticMobility,
    WaypointMobility,
)
from repro.world.traces import (
    TraceMobility,
    TracePoint,
    load_trace_csv,
    save_trace_csv,
    synthesize_urban_trace,
)

__all__ = [
    "AMHERST_CHANNEL_MIX",
    "BOSTON_CHANNEL_MIX",
    "ApSite",
    "ConstantVelocityMobility",
    "Deployment",
    "DeploymentConfig",
    "LoopRouteMobility",
    "MobilityModel",
    "Point",
    "StaticMobility",
    "TraceMobility",
    "TracePoint",
    "WaypointMobility",
    "distance",
    "generate_deployment",
    "load_trace_csv",
    "save_trace_csv",
    "synthesize_urban_trace",
]
