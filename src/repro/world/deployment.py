"""AP deployment generation.

Generates the "organic Wi-Fi" environment the paper's cars drove
through: access points scattered near a route, each with a channel
drawn from the measured channel mix, a backhaul bandwidth, a DHCP
responsiveness profile, and an open/closed flag.

Measured channel mixes from the paper (Sec. 4.1):

- Amherst: 28% on ch 1, 33% on ch 6, 34% on ch 11 (5% elsewhere).
- Boston (from Cabernet): 83% on the three orthogonal channels,
  39% on ch 6.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.world.geometry import Point
from repro.world.mobility import WaypointMobility

# Channel → probability. Residual mass goes to the "other" channels,
# which we map onto channels 3 and 9 (overlapping, rarely used).
AMHERST_CHANNEL_MIX: Dict[int, float] = {1: 0.28, 6: 0.33, 11: 0.34, 3: 0.03, 9: 0.02}
BOSTON_CHANNEL_MIX: Dict[int, float] = {1: 0.24, 6: 0.39, 11: 0.20, 3: 0.09, 9: 0.08}


@dataclass(frozen=True)
class ApSite:
    """One generated access point site."""

    name: str
    position: Point
    channel: int
    backhaul_bps: float
    beta_min: float  # fastest AP-side join response (s)
    beta_max: float  # slowest AP-side join response (s)
    open_access: bool = True


@dataclass
class DeploymentConfig:
    """Parameters of the generated environment.

    ``density_per_km`` is open APs per kilometre of route — the knob for
    the Sec. 4.4 AP-density experiments. ``lateral_spread`` scatters APs
    off the road (houses / storefronts), which produces the realistic
    variety of encounter durations the paper reports (median 8 s,
    mean 22 s at town speeds).
    """

    density_per_km: float = 6.0
    channel_mix: Dict[int, float] = field(default_factory=lambda: dict(AMHERST_CHANNEL_MIX))
    lateral_spread: float = 80.0
    #: Mean APs per cluster. Organic deployments cluster (storefront
    #: rows, apartment blocks): clusters are where a multi-AP client
    #: aggregates several backhauls at once.
    cluster_size_mean: float = 3.5
    cluster_radius: float = 50.0
    #: Fat residential/campus backhauls (the paper's Fig. 10c shows
    #: instantaneous rates up to ~1 MB/s): fast links make off-channel
    #: absences overflow AP power-save buffers, which is what strangles
    #: fractional-channel schedules.
    backhaul_bps_min: float = 1.0e6
    backhaul_bps_max: float = 10.0e6
    #: Per-AP join responsiveness β (see DhcpServerConfig): calibrated
    #: so the median assoc+DHCP join lands at ~1.3 s with reduced
    #: timers and ~2.5 s with stock timers (paper Fig. 6).
    beta_min_range: tuple = (0.15, 0.6)
    beta_max_range: tuple = (1.0, 4.0)
    open_fraction: float = 1.0
    seed_label: str = "deployment"


@dataclass
class Deployment:
    """A generated set of AP sites plus the route they line."""

    sites: List[ApSite]
    route_length: float

    def on_channel(self, channel: int) -> List[ApSite]:
        return [site for site in self.sites if site.channel == channel]

    def channels(self) -> List[int]:
        return sorted({site.channel for site in self.sites})

    def open_sites(self) -> List[ApSite]:
        return [site for site in self.sites if site.open_access]


def _draw_channel(rng: random.Random, mix: Dict[int, float]) -> int:
    channels = list(mix.keys())
    weights = [mix[ch] for ch in channels]
    return rng.choices(channels, weights=weights, k=1)[0]


def generate_deployment(
    route_waypoints: Sequence[Point],
    config: Optional[DeploymentConfig] = None,
    rng: Optional[random.Random] = None,
) -> Deployment:
    """Scatter APs near a route according to ``config``.

    A Poisson *cluster* process: cluster centres are drawn uniformly
    along the route arc length and displaced laterally; each cluster
    holds a geometric number of APs (mean ``cluster_size_mean``) within
    ``cluster_radius`` of the centre. The total AP count is
    ``density_per_km × route_km`` (rounded), jittered by the RNG.
    Clustering matters: it creates the dense spots where a multi-AP
    client aggregates several same-channel backhauls at once.
    """
    config = config or DeploymentConfig()
    rng = rng or random.Random(0)

    route = WaypointMobility(list(route_waypoints) + [route_waypoints[0]], speed=1.0)
    route_km = route.route_length / 1000.0
    expected = config.density_per_km * route_km
    count = max(1, int(round(rng.gauss(expected, expected ** 0.5))))

    sites: List[ApSite] = []
    remaining = count
    geometric_p = 1.0 / max(config.cluster_size_mean, 1.0)
    while remaining > 0:
        offset = rng.uniform(0.0, route.route_length)
        anchor = route._point_at_offset(offset)
        center = Point(
            anchor.x + rng.uniform(-config.lateral_spread, config.lateral_spread),
            anchor.y + rng.uniform(-config.lateral_spread, config.lateral_spread),
        )
        cluster_size = min(remaining, _geometric(rng, geometric_p))
        for _ in range(cluster_size):
            index = count - remaining
            remaining -= 1
            position = Point(
                center.x + rng.uniform(-config.cluster_radius, config.cluster_radius),
                center.y + rng.uniform(-config.cluster_radius, config.cluster_radius),
            )
            beta_min = rng.uniform(*config.beta_min_range)
            beta_max = max(beta_min + 0.1, rng.uniform(*config.beta_max_range))
            sites.append(
                ApSite(
                    name=f"ap{index}",
                    position=position,
                    channel=_draw_channel(rng, config.channel_mix),
                    backhaul_bps=rng.uniform(config.backhaul_bps_min, config.backhaul_bps_max),
                    beta_min=beta_min,
                    beta_max=beta_max,
                    open_access=rng.random() < config.open_fraction,
                )
            )
    return Deployment(sites=sites, route_length=route.route_length)


def _geometric(rng: random.Random, p: float) -> int:
    """Geometric draw on {1, 2, ...} with mean 1/p."""
    draws = 1
    while rng.random() >= p and draws < 8:
        draws += 1
    return draws


@dataclass
class MetroConfig:
    """Parameters of a city-block grid deployment.

    A metro core is tiled as ``blocks_x × blocks_y`` square blocks of
    ``block_m`` per side; each block holds a Poisson-distributed
    number of APs (mean ``aps_per_block``) scattered uniformly inside
    it. Channel/backhaul/DHCP knobs mean the same as in
    :class:`DeploymentConfig` — the per-AP profile machinery is
    shared, only the placement process differs.
    """

    blocks_x: int = 10
    blocks_y: int = 10
    block_m: float = 120.0
    aps_per_block: float = 2.0
    channel_mix: Dict[int, float] = field(default_factory=lambda: dict(AMHERST_CHANNEL_MIX))
    backhaul_bps_min: float = 1.0e6
    backhaul_bps_max: float = 10.0e6
    beta_min_range: tuple = (0.15, 0.6)
    beta_max_range: tuple = (1.0, 4.0)
    open_fraction: float = 1.0


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson draw (mean is a handful, so the loop is short)."""
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def generate_metro_deployment(
    config: Optional[MetroConfig] = None,
    rng: Optional[random.Random] = None,
) -> Deployment:
    """Tile a city-block grid with Poisson-count APs per block.

    Blocks are visited row-major (y outer, x inner) and AP names are
    ``ap{index}`` in visit order, so the whole deployment — counts,
    positions, channels, profiles — is a pure function of the config
    and the RNG state, exactly like :func:`generate_deployment`.
    ``route_length`` reports the grid's east-west extent (there is no
    route; callers lay mobility over the grid separately).
    """
    config = config or MetroConfig()
    rng = rng or random.Random(0)

    block = config.block_m
    sites: List[ApSite] = []
    for block_y in range(config.blocks_y):
        for block_x in range(config.blocks_x):
            x0 = block_x * block
            y0 = block_y * block
            for _ in range(_poisson(rng, config.aps_per_block)):
                position = Point(x0 + rng.uniform(0.0, block), y0 + rng.uniform(0.0, block))
                beta_min = rng.uniform(*config.beta_min_range)
                beta_max = max(beta_min + 0.1, rng.uniform(*config.beta_max_range))
                sites.append(
                    ApSite(
                        name=f"ap{len(sites)}",
                        position=position,
                        channel=_draw_channel(rng, config.channel_mix),
                        backhaul_bps=rng.uniform(config.backhaul_bps_min, config.backhaul_bps_max),
                        beta_min=beta_min,
                        beta_max=beta_max,
                        open_access=rng.random() < config.open_fraction,
                    )
                )
    return Deployment(sites=sites, route_length=config.blocks_x * block)
