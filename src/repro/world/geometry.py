"""2-D geometry primitives used by mobility and propagation."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point in metres on the simulation plane."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        return Point(self.x * factor, self.y * factor)

    def norm(self) -> float:
        return math.hypot(self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance in metres."""
    return math.hypot(a.x - b.x, a.y - b.y)


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Point ``fraction`` of the way from ``a`` to ``b`` (0 → a, 1 → b)."""
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)
