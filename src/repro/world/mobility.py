"""Mobility models.

A mobility model maps simulated time to a position. Models are pure
functions of time (no engine callbacks), which keeps position queries
cheap and makes the radio layer's range checks exact at any instant.

The vehicular experiments use :class:`LoopRouteMobility` — a node
repeatedly following the same closed route, as the paper's cars did
("the node repeatedly following the same route", Sec. 4.1).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.world.geometry import Point, interpolate


class MobilityModel:
    """Interface: position as a function of time."""

    def position(self, time: float) -> Point:
        raise NotImplementedError

    def speed(self, time: float) -> float:
        """Instantaneous speed (m/s). Default: numeric differentiation.

        The sample interval is clamped at t=0 (positions before the
        start of time are undefined), so the divisor must be the
        *actual* interval: dividing the clamped span by ``2 * dt``
        would understate speed near t=0 by up to 2×.
        """
        dt = 1e-3
        start = max(0.0, time - dt)
        end = time + dt
        a = self.position(start)
        b = self.position(end)
        return (b - a).norm() / (end - start)


class StaticMobility(MobilityModel):
    """A node that never moves (indoor / laboratory experiments)."""

    def __init__(self, point: Point):
        self._point = point

    def position(self, time: float) -> Point:
        return self._point

    def speed(self, time: float) -> float:
        return 0.0


class ConstantVelocityMobility(MobilityModel):
    """Straight-line motion from an origin at constant velocity.

    Used by the analytical-model corroboration: a node driving past an
    AP at a fixed speed.
    """

    def __init__(self, origin: Point, velocity: Point):
        self._origin = origin
        self._velocity = velocity

    def position(self, time: float) -> Point:
        return self._origin + self._velocity.scaled(time)

    def speed(self, time: float) -> float:
        return self._velocity.norm()


class WaypointMobility(MobilityModel):
    """Piecewise-linear motion through waypoints at a constant speed."""

    def __init__(self, waypoints: Sequence[Point], speed: float):
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self._waypoints = list(waypoints)
        self._speed = speed
        self._cumulative = self._cumulative_lengths(self._waypoints)

    @staticmethod
    def _cumulative_lengths(points: List[Point]) -> List[float]:
        lengths = [0.0]
        for a, b in zip(points, points[1:]):
            lengths.append(lengths[-1] + (b - a).norm())
        return lengths

    @property
    def route_length(self) -> float:
        return self._cumulative[-1]

    def _point_at_offset(self, offset: float) -> Point:
        offset = min(max(offset, 0.0), self.route_length)
        for i in range(1, len(self._cumulative)):
            if offset <= self._cumulative[i]:
                segment = self._cumulative[i] - self._cumulative[i - 1]
                if segment == 0:
                    return self._waypoints[i]
                fraction = (offset - self._cumulative[i - 1]) / segment
                return interpolate(self._waypoints[i - 1], self._waypoints[i], fraction)
        return self._waypoints[-1]

    def position(self, time: float) -> Point:
        return self._point_at_offset(self._speed * time)

    def speed(self, time: float) -> float:
        if self._speed * time >= self.route_length:
            return 0.0
        return self._speed


class LoopRouteMobility(WaypointMobility):
    """Waypoint motion around a closed route, repeated indefinitely.

    The route is closed automatically (last waypoint connects back to
    the first). This models the paper's vehicular runs, where each
    30–60 minute experiment repeatedly drove the same downtown loop.
    """

    def __init__(self, waypoints: Sequence[Point], speed: float):
        closed = list(waypoints)
        if closed[0] != closed[-1]:
            closed.append(closed[0])
        super().__init__(closed, speed)

    def position(self, time: float) -> Point:
        offset = math.fmod(self._speed * time, self.route_length)
        return self._point_at_offset(offset)

    def speed(self, time: float) -> float:
        return self._speed


def rectangular_loop(width: float, height: float) -> List[Point]:
    """Waypoints of a rectangular downtown block loop anchored at origin."""
    return [
        Point(0.0, 0.0),
        Point(width, 0.0),
        Point(width, height),
        Point(0.0, height),
    ]
