"""Trace-driven and speed-varying mobility.

The paper's cars did not move at a constant speed — they stopped at
lights and slowed for turns. This module adds:

- :class:`TraceMobility` — replay a recorded (time, x, y) trace with
  linear interpolation (e.g. parsed from a GPS log);
- :func:`load_trace_csv` / :func:`save_trace_csv` — a tiny CSV codec
  for such traces;
- :func:`synthesize_urban_trace` — generate a realistic stop-and-go
  drive along a route: cruise segments at varying speed separated by
  stops (traffic lights) with simple accel/decel ramps.
"""

from __future__ import annotations

import csv
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence

from repro.world.geometry import Point, interpolate
from repro.world.mobility import MobilityModel, WaypointMobility


@dataclass(frozen=True)
class TracePoint:
    """One sample of a mobility trace."""

    time: float
    position: Point


class TraceMobility(MobilityModel):
    """Replay a sampled trace, interpolating between samples.

    Before the first sample the node sits at the first position; after
    the last it stays at the last (parked).
    """

    def __init__(self, points: Sequence[TracePoint]):
        if len(points) < 2:
            raise ValueError("a trace needs at least two samples")
        ordered = sorted(points, key=lambda p: p.time)
        for a, b in zip(ordered, ordered[1:]):
            if b.time <= a.time:
                raise ValueError("trace timestamps must be strictly increasing")
        self._points = ordered
        self._times = [p.time for p in ordered]

    @property
    def duration(self) -> float:
        return self._times[-1] - self._times[0]

    def position(self, time: float) -> Point:
        if time <= self._times[0]:
            return self._points[0].position
        if time >= self._times[-1]:
            return self._points[-1].position
        index = bisect_right(self._times, time) - 1
        a, b = self._points[index], self._points[index + 1]
        fraction = (time - a.time) / (b.time - a.time)
        return interpolate(a.position, b.position, fraction)


def save_trace_csv(path: str, points: Sequence[TracePoint]) -> None:
    """Write a trace as ``time,x,y`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "x", "y"])
        for point in points:
            writer.writerow([point.time, point.position.x, point.position.y])


def load_trace_csv(path: str) -> TraceMobility:
    """Read a ``time,x,y`` CSV into a :class:`TraceMobility`."""
    points: List[TracePoint] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            points.append(
                TracePoint(float(row["time"]), Point(float(row["x"]), float(row["y"])))
            )
    return TraceMobility(points)


def synthesize_urban_trace(
    route_waypoints: Sequence[Point],
    cruise_speed: float = 12.0,
    speed_jitter: float = 3.0,
    stop_every_m: float = 350.0,
    stop_duration_mean: float = 15.0,
    sample_interval: float = 1.0,
    laps: int = 1,
    seed: int = 0,
) -> List[TracePoint]:
    """Generate a stop-and-go drive along a closed route.

    The vehicle cruises at ``cruise_speed ± jitter`` between stops
    spaced roughly ``stop_every_m`` apart (traffic lights), waiting an
    exponential ``stop_duration_mean`` at each. Positions are sampled
    every ``sample_interval`` seconds of simulated driving.
    """
    rng = random.Random(seed)
    closed = list(route_waypoints)
    if closed[0] != closed[-1]:
        closed.append(closed[0])
    route = WaypointMobility(closed, speed=1.0)  # used for arc-length lookup
    total_length = route.route_length * laps

    points: List[TracePoint] = []
    time = 0.0
    offset = 0.0
    next_stop = rng.uniform(0.5, 1.5) * stop_every_m
    current_speed = max(1.0, rng.gauss(cruise_speed, speed_jitter))
    while offset < total_length:
        points.append(TracePoint(time, route._point_at_offset(offset % route.route_length)))
        if offset >= next_stop:
            # Dwell at the light, sampling the stationary position.
            wait = rng.expovariate(1.0 / stop_duration_mean)
            samples = max(1, int(wait / sample_interval))
            for _ in range(samples):
                time += sample_interval
                points.append(
                    TracePoint(time, route._point_at_offset(offset % route.route_length))
                )
            next_stop = offset + rng.uniform(0.5, 1.5) * stop_every_m
            current_speed = max(1.0, rng.gauss(cruise_speed, speed_jitter))
        time += sample_interval
        offset += current_speed * sample_interval
    points.append(TracePoint(time, route._point_at_offset(offset % route.route_length)))
    return points
