"""Controllable shard functions for ``repro.exec`` tests.

A real module (not test-local lambdas) because worker processes import
shard functions by name. Cross-process state goes through small files:
attempts are serialized by the retry loop, so a byte-append counter is
race-free for our purposes.
"""

import os
import time


def bump(counter_path: str) -> int:
    """Append one byte; returns the new count (1-based call number)."""
    with open(counter_path, "ab") as handle:
        handle.write(b"x")
    return os.path.getsize(counter_path)


def calls(counter_path: str) -> int:
    try:
        return os.path.getsize(counter_path)
    except OSError:
        return 0


def shard_value(value=0):
    """The trivial shard: returns its input."""
    return value


def count_calls(counter_path: str, value=0):
    """Counts executions (across processes) and returns ``value``."""
    bump(counter_path)
    return value


def flaky(counter_path: str, fail_times: int, value=0):
    """Raises on the first ``fail_times`` calls, then succeeds."""
    call = bump(counter_path)
    if call <= fail_times:
        raise RuntimeError(f"transient failure #{call}")
    return value


def slow_first_attempt(counter_path: str, sleep_s: float, value=0):
    """Sleeps on the first call only — models a one-off stall."""
    if bump(counter_path) == 1:
        time.sleep(sleep_s)
    return value


def slow_unless_parent(parent_pid: int, sleep_s: float, value=0):
    """Sleeps in worker processes, returns immediately in-process.

    Exercises the timeout → retries-exhausted → inline-fallback path
    without the fallback itself paying the sleep.
    """
    if os.getpid() != parent_pid:
        time.sleep(sleep_s)
    return value


def die_unless_parent(parent_pid: int, value=0):
    """Kills any worker process it runs in (pool-death simulation)."""
    if os.getpid() != parent_pid:
        os._exit(17)
    return value


def sleep_value(sleep_s: float, value=0):
    """Sleeps, then returns — a shard with real (tunable) duration."""
    time.sleep(sleep_s)
    return value


def die_first_attempt(counter_path: str, parent_pid: int, value=0):
    """Kills its worker process on the first call only (crash + retry).

    The counter file is shared across worker processes, so the retry —
    wherever it lands — sees call #2 and succeeds. Never kills the
    orchestrator process itself (``parent_pid``).
    """
    if bump(counter_path) == 1 and os.getpid() != parent_pid:
        os._exit(17)
    return value


def freeze_first_attempt(counter_path: str, parent_pid: int, value=0):
    """SIGSTOPs its own worker process on the first call only.

    A stopped worker keeps its pipes open but stops heartbeating —
    exactly the "alive but wedged" failure the heartbeat watchdog
    exists to catch (EOF detection never fires). Never freezes the
    orchestrator process itself (``parent_pid``).
    """
    import signal

    if bump(counter_path) == 1 and os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGSTOP)
    return value
