"""Unit tests for AP routing glue and the bulk-download application."""

import pytest

from repro.mac import frames
from repro.mac.ap import AccessPoint
from repro.mac.frames import FrameType
from repro.net.backhaul import ApRouter, WiredBackhaul
from repro.net.dhcp import DhcpMessage, DhcpMessageType, DhcpServer, DhcpServerConfig
from repro.net.tcp import TcpSegment
from repro.net.traffic import BulkDownload
from repro.phy.propagation import PropagationModel
from repro.phy.radio import Medium, Radio
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.world.geometry import Point
from repro.world.mobility import StaticMobility


def make_world():
    sim = Simulator()
    medium = Medium(
        sim,
        PropagationModel(range_m=100.0, base_loss=0.0, edge_start=0.99),
        RandomStreams(5),
    )
    ap = AccessPoint(sim, medium, "ap", 1, Point(10, 0))
    dhcp = DhcpServer(sim, "ap", config=DhcpServerConfig(beta_min=0.05, beta_max=0.05))
    backhaul = WiredBackhaul(sim, rate_bps=2e6, latency_s=0.02)
    router = ApRouter(sim, ap, backhaul, dhcp)
    client = Radio(medium, StaticMobility(Point(0, 0)), 1, name="cli", address="cli")
    # associate
    client.transmit(frames.mgmt_frame(FrameType.AUTH_REQUEST, "cli", "ap"))
    sim.run()
    client.transmit(frames.mgmt_frame(FrameType.ASSOC_REQUEST, "cli", "ap"))
    sim.run()
    return sim, medium, ap, router, client


def test_dhcp_uplink_reaches_server_and_reply_returns():
    sim, _, ap, router, client = make_world()
    replies = []
    client.on_receive = lambda f: replies.append(f.payload)
    discover = DhcpMessage(DhcpMessageType.DISCOVER, 7, "cli", "ap")
    client.transmit(frames.data_frame("cli", "ap", discover, discover.size_bytes))
    sim.run()
    offers = [p for p in replies if isinstance(p, DhcpMessage)]
    assert offers and offers[0].type == DhcpMessageType.OFFER
    assert offers[0].xid == 7


def test_tcp_ack_routed_to_registered_flow():
    sim, _, ap, router, client = make_world()
    acks = []
    router.register_flow(42, acks.append)
    ack = TcpSegment(42, 0, 0, is_ack=True, ack=1000)
    client.transmit(frames.data_frame("cli", "ap", ack, ack.size_bytes))
    sim.run()
    assert len(acks) == 1 and acks[0].ack == 1000


def test_unregistered_flow_ack_dropped():
    sim, _, ap, router, client = make_world()
    ack = TcpSegment(99, 0, 0, is_ack=True, ack=1)
    client.transmit(frames.data_frame("cli", "ap", ack, ack.size_bytes))
    sim.run()  # no exception, silently dropped


def test_send_down_traverses_latency_and_shaper():
    sim, _, ap, router, client = make_world()
    got = []
    client.on_receive = lambda f: got.append((sim.now, f.payload))
    segment = TcpSegment(1, 0, 1400)
    router.send_down("cli", segment)
    sim.run()
    assert got
    arrival = got[0][0]
    assert arrival > 0.02 + segment.size_bytes * 8 / 2e6  # latency + service


def test_backhaul_up_applies_latency_only():
    sim = Simulator()
    backhaul = WiredBackhaul(sim, rate_bps=1e6, latency_s=0.03)
    times = []
    backhaul.up(lambda: times.append(sim.now))
    sim.run()
    assert times == [pytest.approx(0.03)]


def test_bulk_download_moves_data():
    sim, _, ap, router, client = make_world()
    delivered = []

    def send_uplink(segment):
        return client.transmit(
            frames.data_frame("cli", "ap", segment, segment.size_bytes)
        )

    flow = BulkDownload(sim, router, "cli", send_uplink, on_deliver=delivered.append)
    client.on_receive = lambda f: (
        flow.on_downlink_segment(f.payload)
        if isinstance(f.payload, TcpSegment)
        else None
    )
    flow.start()
    sim.run(until=3.0)
    flow.stop()
    assert sum(delivered) > 100_000  # 2 Mbps backhaul for ~3 s


def test_bulk_download_stop_unregisters():
    sim, _, ap, router, client = make_world()
    flow = BulkDownload(sim, router, "cli", lambda s: True)
    flow.start()
    flow.stop()
    assert router._ack_sinks.get(flow.flow_id) is None
