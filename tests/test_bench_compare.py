"""benchmarks/compare.py: the CI wall-time gate's threshold math,
warn-only degradations, and malformed-artifact tolerance.

compare.py is a standalone script (not part of the ``repro`` package),
so it is loaded here by file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_COMPARE = Path(__file__).parent.parent / "benchmarks" / "compare.py"


@pytest.fixture(scope="module")
def compare():
    spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _summary(path, benches):
    path.write_text(json.dumps({"benchmarks": benches, "created_utc": "20260808T000000Z"}))
    return path


def _bench(test, wall):
    return {"test": test, "wall_seconds": wall}


class TestLoadRecords:
    def test_well_formed(self, compare, tmp_path):
        path = _summary(tmp_path / "BENCH_ok.json", [_bench("t::a", 1.5), _bench("t::b", 0.25)])
        assert compare._load_records(path) == {"t::a": 1.5, "t::b": 0.25}

    def test_malformed_entries_skipped_with_warning(self, compare, tmp_path, capsys):
        path = _summary(
            tmp_path / "BENCH_bad.json",
            [
                _bench("t::good", 1.0),
                {"test": "t::no_wall"},
                {"wall_seconds": 2.0},
                {"test": "t::bad_wall", "wall_seconds": "NaNope"},
                {"test": "", "wall_seconds": 1.0},
                {"test": 42, "wall_seconds": 1.0},
                None,
            ],
        )
        records = compare._load_records(path)
        assert records == {"t::good": 1.0}
        assert "skipped 6 malformed" in capsys.readouterr().out

    def test_benchmarks_key_not_a_list(self, compare, tmp_path):
        path = tmp_path / "BENCH_weird.json"
        path.write_text(json.dumps({"benchmarks": {"t": 1.0}}))
        assert compare._load_records(path) == {}


class TestThresholdGate:
    def test_within_threshold_passes(self, compare, tmp_path, capsys):
        baseline = _summary(tmp_path / "baseline.json", [_bench("t::x", 1.0)])
        fresh = _summary(tmp_path / "BENCH_f.json", [_bench("t::x", 1.25)])
        code = compare.main([str(fresh), "--baseline", str(baseline), "--threshold", "0.30"])
        assert code == 0
        assert "no wall-time regressions" in capsys.readouterr().out

    def test_regression_beyond_threshold_fails(self, compare, tmp_path, capsys):
        baseline = _summary(tmp_path / "baseline.json", [_bench("t::x", 1.0)])
        fresh = _summary(tmp_path / "BENCH_f.json", [_bench("t::x", 1.31)])
        code = compare.main([str(fresh), "--baseline", str(baseline), "--threshold", "0.30"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "+31%" in out

    def test_one_sided_tests_reported_not_failed(self, compare, tmp_path, capsys):
        baseline = _summary(tmp_path / "baseline.json", [_bench("t::old", 1.0)])
        fresh = _summary(tmp_path / "BENCH_f.json", [_bench("t::new", 1.0)])
        code = compare.main([str(fresh), "--baseline", str(baseline)])
        assert code == 0
        out = capsys.readouterr().out
        assert "MISSING" in out
        assert "NEW" in out

    def test_zero_baseline_wall_never_divides(self, compare, tmp_path):
        baseline = _summary(tmp_path / "baseline.json", [_bench("t::z", 0.0)])
        fresh = _summary(tmp_path / "BENCH_f.json", [_bench("t::z", 9.0)])
        assert compare.main([str(fresh), "--baseline", str(baseline)]) == 0


class TestDegradedInputs:
    def test_missing_baseline_warns_and_passes(self, compare, tmp_path, capsys):
        fresh = _summary(tmp_path / "BENCH_f.json", [_bench("t::x", 1.0)])
        code = compare.main([str(fresh), "--baseline", str(tmp_path / "absent.json")])
        assert code == 0
        assert "warn only" in capsys.readouterr().out

    def test_missing_fresh_summary_fails(self, compare, tmp_path, capsys):
        code = compare.main([str(tmp_path / "nope.json")])
        assert code == 1
        assert "no fresh BENCH_*.json" in capsys.readouterr().out

    def test_malformed_fresh_still_gates_remaining_benches(self, compare, tmp_path):
        baseline = _summary(tmp_path / "baseline.json", [_bench("t::x", 1.0)])
        fresh = _summary(
            tmp_path / "BENCH_f.json",
            [_bench("t::x", 2.0), {"test": "t::broken"}],
        )
        assert compare.main([str(fresh), "--baseline", str(baseline)]) == 1
