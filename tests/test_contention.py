"""Tests for the multi-client contention experiment."""

from repro.experiments import contention


def test_single_client_near_bottleneck():
    row = contention.run_population(1, duration=25.0)
    assert row["aggregate_kBps"] > 600.0  # of the 1000 KB/s bottleneck
    assert row["per_client_kBps"] == row["aggregate_kBps"]


def test_two_clients_share_but_do_not_mint_bandwidth():
    result = contention.run(populations=(1, 2), duration=25.0)
    one, two = result["rows"]
    assert two["aggregate_kBps"] <= result["bottleneck_kBps"] * 1.05
    assert two["per_client_kBps"] < one["per_client_kBps"]


def test_all_clients_manage_to_join():
    row = contention.run_population(3, duration=25.0)
    assert all(j >= 1 for j in row["joined_interfaces"])


def test_report_shape():
    result = contention.run(populations=(1,), duration=10.0)
    assert result["experiment"] == "contention"
    assert {"clients", "aggregate_kBps", "per_client_kBps",
            "min_client_kBps", "joined_interfaces"} <= set(result["rows"][0])
