"""Unit tests for the DHCP client and server."""

from repro.net.dhcp import (
    DhcpClient,
    DhcpClientConfig,
    DhcpClientState,
    DhcpMessage,
    DhcpMessageType,
    DhcpServer,
    DhcpServerConfig,
    Lease,
)
from repro.sim.engine import Simulator


class Loopback:
    """Wires a client and server together with configurable delivery."""

    def __init__(self, sim, server_config=None, client_config=None):
        self.sim = sim
        self.client_reachable = True
        self.server_reachable = True
        self.server = DhcpServer(
            sim, "ap", config=server_config or DhcpServerConfig(beta_min=0.1, beta_max=0.1),
            send=self._to_client,
        )
        self.bound = []
        self.failed = []
        self.client = DhcpClient(
            sim, "cli", "ap",
            config=client_config or DhcpClientConfig(retry_timeout=0.2, attempt_window=3.0),
            transmit=self._to_server,
            on_bound=lambda c, lease: self.bound.append(lease),
            on_failed=lambda c: self.failed.append(self.sim.now),
        )

    def _to_server(self, message):
        if not self.server_reachable:
            return False
        self.sim.schedule(0.01, self.server.handle, "cli", message)
        return True

    def _to_client(self, client, message):
        if self.client_reachable:
            self.sim.schedule(0.01, self.client.handle, message)


def test_full_exchange_binds():
    sim = Simulator()
    loop = Loopback(sim)
    loop.client.start()
    sim.run(until=5.0)
    assert loop.client.bound
    assert len(loop.bound) == 1
    assert loop.bound[0].ip.startswith("10.0.")


def test_acquisition_time_positive():
    sim = Simulator()
    loop = Loopback(sim)
    loop.client.start()
    sim.run(until=5.0)
    assert loop.client.acquisition_time > 0.0


def test_same_client_gets_same_ip_on_rebind():
    sim = Simulator()
    loop = Loopback(sim)
    loop.client.start()
    sim.run(until=5.0)
    first_ip = loop.bound[0].ip
    loop.client.state = DhcpClientState.INIT
    loop.client.start()
    sim.run(until=10.0)
    assert loop.bound[1].ip == first_ip


def test_window_expiry_fails():
    sim = Simulator()
    loop = Loopback(sim)
    loop.server_reachable = False
    loop.client.start()
    sim.run(until=5.0)
    assert loop.failed
    assert not loop.client.bound


def test_idle_backoff_then_retry():
    sim = Simulator()
    loop = Loopback(
        sim,
        client_config=DhcpClientConfig(
            retry_timeout=0.2, attempt_window=1.0, idle_backoff=10.0
        ),
    )
    loop.server_reachable = False
    loop.client.start()
    sim.run(until=2.0)
    assert loop.client.state == DhcpClientState.IDLE_BACKOFF
    loop.server_reachable = True
    sim.run(until=20.0)
    assert loop.client.bound


def test_restart_immediately_skips_backoff():
    sim = Simulator()
    loop = Loopback(
        sim,
        client_config=DhcpClientConfig(
            retry_timeout=0.2, attempt_window=1.0, idle_backoff=60.0,
            restart_immediately=True,
        ),
    )
    loop.server_reachable = False
    loop.client.start()
    sim.run(until=1.5)
    loop.server_reachable = True
    sim.run(until=4.0)  # well under the 60 s backoff
    assert loop.client.bound
    assert loop.failed  # the first window still counted as a failure


def test_retries_counted_only_when_sent():
    sim = Simulator()
    loop = Loopback(sim)
    loop.server_reachable = False

    original = loop._to_server

    def refuse(message):
        return False  # off-channel: not handed to the radio

    loop.client.transmit = refuse
    loop.client.start()
    sim.run(until=1.0)
    assert loop.client.attempts == 0


def test_lost_offer_recovered_by_retry():
    sim = Simulator()
    loop = Loopback(sim)
    drops = {"n": 2}

    original = loop._to_client

    def lossy(client, message):
        if drops["n"] > 0:
            drops["n"] -= 1
            return
        original(client, message)

    loop.server.send = lossy
    loop.client.start()
    sim.run(until=5.0)
    assert loop.client.bound


def test_stale_xid_ignored():
    sim = Simulator()
    loop = Loopback(sim)
    loop.client.start()
    stale = DhcpMessage(DhcpMessageType.OFFER, xid=-1, client="cli", server="ap", ip="10.9.9.9")
    loop.client.handle(stale)
    assert loop.client.state == DhcpClientState.SELECTING


def test_nak_fails_exchange():
    sim = Simulator()
    loop = Loopback(sim)
    loop.client.start()
    sim.run(until=0.05)
    nak = DhcpMessage(DhcpMessageType.NAK, loop.client.xid, "cli", "ap")
    loop.client.handle(nak)
    assert loop.failed


def test_bind_cached_skips_exchange():
    sim = Simulator()
    loop = Loopback(sim)
    lease = Lease(ip="10.0.0.7", server="ap", obtained_at=0.0)
    loop.client.bind_cached(lease)
    assert loop.client.bound
    assert loop.bound == [lease]
    assert loop.client.attempts == 0


def test_lease_expiry():
    lease = Lease(ip="10.0.0.7", server="ap", obtained_at=0.0, duration=100.0)
    assert not lease.expired(50.0)
    assert lease.expired(101.0)


def test_abort_cancels_timers():
    sim = Simulator()
    loop = Loopback(sim)
    loop.server_reachable = False
    loop.client.start()
    loop.client.abort()
    sim.run(until=10.0)
    assert not loop.failed  # window timer cancelled


def test_nudge_resends_now():
    sim = Simulator()
    sent = []
    client = DhcpClient(
        sim, "cli", "ap",
        config=DhcpClientConfig(retry_timeout=10.0),
        transmit=lambda m: sent.append(m) or True,
    )
    client.start()
    client.nudge()
    assert len(sent) == 2  # initial + nudged, no timer wait


def test_nudge_noop_when_bound():
    sim = Simulator()
    sent = []
    client = DhcpClient(
        sim, "cli", "ap", transmit=lambda m: sent.append(m) or True
    )
    client.bind_cached(Lease(ip="1.2.3.4", server="ap", obtained_at=0.0))
    client.nudge()
    assert sent == []


def test_server_pool_exhaustion_silences_offers():
    sim = Simulator()
    server = DhcpServer(
        sim, "ap", config=DhcpServerConfig(beta_min=0.0, beta_max=0.0, pool_size=1),
        send=lambda c, m: None,
    )
    server.handle("a", DhcpMessage(DhcpMessageType.DISCOVER, 1, "a", "ap"))
    sim.run()
    assert server.offers_made == 1
    server.handle("b", DhcpMessage(DhcpMessageType.DISCOVER, 2, "b", "ap"))
    sim.run()
    assert server.offers_made == 1  # pool exhausted: silence


def test_server_response_delay_in_beta_range():
    sim = Simulator()
    import random

    server = DhcpServer(
        sim, "ap",
        config=DhcpServerConfig(beta_min=1.0, beta_max=2.0),
        rng=random.Random(1),
    )
    arrivals = []
    server.send = lambda c, m: arrivals.append(sim.now)
    server.handle("cli", DhcpMessage(DhcpMessageType.DISCOVER, 1, "cli", "ap"))
    sim.run()
    assert arrivals and 0.5 <= arrivals[0] <= 1.0  # β/2 per message


def test_message_timeout_counted_on_overdue_retransmit():
    sim = Simulator()
    loop = Loopback(sim)
    loop.server_reachable = False  # requests vanish

    def silent_send(message):
        return True  # handed to the radio, never answered

    loop.client.transmit = silent_send
    loop.client.start()
    sim.run(until=1.0)  # several 0.2 s retry timers fire
    assert loop.client.total_transmissions >= 4
    assert loop.client.message_timeouts >= 3


def test_answered_requests_not_counted_as_timeouts():
    sim = Simulator()
    loop = Loopback(sim)
    loop.client.start()
    sim.run(until=5.0)
    assert loop.client.bound
    assert loop.client.message_timeouts == 0


def test_early_nudge_not_a_timeout():
    sim = Simulator()
    sent = []
    from repro.net.dhcp import DhcpClient, DhcpClientConfig

    client = DhcpClient(
        sim, "cli", "ap",
        config=DhcpClientConfig(retry_timeout=1.0),
        transmit=lambda m: sent.append(m) or True,
    )
    client.start()
    client.nudge()  # immediately: reply may still be in flight
    assert client.total_transmissions == 2
    assert client.message_timeouts == 0


def test_request_for_wrong_ip_naked():
    sim = Simulator()
    replies = []
    server = DhcpServer(
        sim, "ap", config=DhcpServerConfig(beta_min=0.0, beta_max=0.0),
        send=lambda c, m: replies.append(m),
    )
    server.handle("cli", DhcpMessage(DhcpMessageType.DISCOVER, 1, "cli", "ap"))
    sim.run()
    server.handle("cli", DhcpMessage(DhcpMessageType.REQUEST, 1, "cli", "ap", ip="10.254.0.9"))
    sim.run()
    assert replies[-1].type == DhcpMessageType.NAK
