"""Tests for shared driver machinery (scanner, virtual interfaces)."""

from repro.core.config import SpiderConfig
from repro.drivers.base import DriverConfig, Scanner
from repro.experiments.common import LabScenario
from repro.sim.engine import Simulator

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


class TestScanner:
    def test_observe_and_query(self):
        sim = Simulator()
        scanner = Scanner(sim)
        scanner.observe("ap", 6, -50.0)
        current = scanner.current()
        assert len(current) == 1
        assert current[0].channel == 6

    def test_channel_filter(self):
        sim = Simulator()
        scanner = Scanner(sim)
        scanner.observe("a", 1, -50.0)
        scanner.observe("b", 6, -50.0)
        assert [o.name for o in scanner.current(channel=6)] == ["b"]

    def test_observations_age_out(self):
        sim = Simulator()
        scanner = Scanner(sim, horizon=5.0)
        scanner.observe("ap", 1, -50.0)
        sim.run(until=10.0)
        assert scanner.current() == []

    def test_reobservation_refreshes(self):
        sim = Simulator()
        scanner = Scanner(sim, horizon=5.0)
        scanner.observe("ap", 1, -50.0)
        sim.run(until=4.0)
        scanner.observe("ap", 1, -60.0)
        sim.run(until=8.0)
        assert len(scanner.current()) == 1

    def test_forget(self):
        sim = Simulator()
        scanner = Scanner(sim)
        scanner.observe("ap", 1, -50.0)
        scanner.forget("ap")
        assert scanner.current() == []
        assert scanner.last_seen("ap") is None

    def test_last_seen(self):
        sim = Simulator()
        scanner = Scanner(sim)
        sim.schedule(2.0, scanner.observe, "ap", 1, -50.0)
        sim.run()
        assert scanner.last_seen("ap") == 2.0


class TestDriverConfig:
    def test_association_config_carries_link_timeout(self):
        config = DriverConfig(link_timeout=0.123)
        assert config.association_config().link_timeout == 0.123

    def test_dhcp_config_carries_timers(self):
        config = DriverConfig(
            dhcp_retry_timeout=0.2,
            dhcp_attempt_window=1.5,
            dhcp_idle_backoff=30.0,
            dhcp_restart_immediately=True,
        )
        dhcp = config.dhcp_config()
        assert dhcp.retry_timeout == 0.2
        assert dhcp.attempt_window == 1.5
        assert dhcp.idle_backoff == 30.0
        assert dhcp.restart_immediately is True


class TestInterfaceLifecycle:
    def _connected_lab(self):
        lab = LabScenario(seed=61)
        lab.add_lab_ap("a", 1, 2e6)
        spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
        spider.start()
        lab.sim.run(until=10.0)
        assert spider.connected_interfaces()
        return lab, spider

    def test_join_records_full_timeline(self):
        lab, spider = self._connected_lab()
        record = spider.join_log.records[0]
        assert record.associated_at is not None
        assert record.bound_at is not None
        assert record.bound_at >= record.associated_at >= record.started_at

    def test_teardown_stops_flow(self):
        lab, spider = self._connected_lab()
        iface = spider.interfaces["a"]
        flow = iface.flow
        spider._teardown_interface(iface)
        assert not flow.sender.running
        assert "a" not in spider.interfaces

    def test_silence_reaps_connection(self):
        lab, spider = self._connected_lab()
        lab.aps["a"].stop()  # beacons stop
        lab.aps["a"].radio.go_deaf(1e9)  # and the radio goes dark
        lab.sim.run(until=lab.sim.now + 10.0)
        assert "a" not in spider.interfaces

    def test_driver_stop_tears_everything_down(self):
        lab, spider = self._connected_lab()
        spider.stop()
        assert spider.interfaces == {}

    def test_duplicate_join_rejected(self):
        lab, spider = self._connected_lab()
        observation = spider.scanner.current(channel=1)[0]
        assert spider.join(observation) is None
