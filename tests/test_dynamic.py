"""Tests for dynamic channel selection (the paper's future work)."""

import pytest

from repro.core.dynamic import DynamicChannelSpider, DynamicConfig
from repro.experiments.common import LabScenario, ScenarioConfig, VehicularScenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def make_dynamic(world, mobility, **config_kwargs):
    return DynamicChannelSpider(
        world.sim,
        world.medium,
        mobility,
        "spider",
        config=DynamicConfig(**{**REDUCED, **config_kwargs}),
        router_lookup=world.router_lookup(),
    )


def test_settles_on_the_dense_channel():
    lab = LabScenario(seed=81)
    lab.add_lab_ap("a6", 6, 4e6, index=0)
    lab.add_lab_ap("b6", 6, 4e6, index=2)
    lab.add_lab_ap("c1", 1, 1e6, index=4)
    spider = make_dynamic(lab, lab.static_mobility())
    spider.start()
    lab.sim.run(until=40.0)
    choices = [channel for _t, channel in spider.channel_decisions]
    assert choices and all(c == 6 for c in choices[1:])
    spider.stop()


def test_decisions_recorded_with_timestamps():
    lab = LabScenario(seed=82)
    lab.add_lab_ap("a", 1, 2e6)
    spider = make_dynamic(lab, lab.static_mobility(), dwell_duration=3.0)
    spider.start()
    lab.sim.run(until=20.0)
    times = [t for t, _c in spider.channel_decisions]
    assert len(times) >= 3
    assert all(b > a for a, b in zip(times, times[1:]))
    spider.stop()


def test_aggregates_on_chosen_channel():
    lab = LabScenario(seed=83)
    lab.add_lab_ap("a", 11, 2e6, index=0)
    lab.add_lab_ap("b", 11, 2e6, index=2)
    spider = make_dynamic(lab, lab.static_mobility())
    spider.start()
    lab.sim.run(until=40.0)
    # Both same-channel APs joined, bandwidth aggregated.
    assert len(spider.connected_interfaces()) == 2
    assert spider.recorder.total_bytes > 1_000_000
    spider.stop()


def test_empty_world_keeps_surveying():
    lab = LabScenario(seed=84)
    spider = make_dynamic(lab, lab.static_mobility(), dwell_duration=2.0)
    spider.start()
    lab.sim.run(until=15.0)
    assert len(spider.channel_decisions) >= 3
    spider.stop()


@pytest.mark.slow
def test_vehicular_dynamic_tracks_best_channel():
    scenario = VehicularScenario(ScenarioConfig(seed=85))
    spider = make_dynamic(scenario, scenario.mobility, dwell_duration=6.0)
    spider.start()
    scenario.sim.run(until=240.0)
    chosen = {channel for _t, channel in spider.channel_decisions}
    assert chosen <= {1, 6, 11}
    assert len(spider.channel_decisions) >= 10
    assert spider.recorder.total_bytes > 0
    spider.stop()
