"""Tests for the radio energy model."""

import pytest

from repro.core.config import SpiderConfig
from repro.experiments.common import LabScenario
from repro.metrics.energy import EnergyMeter, EnergyReport

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


class TestEnergyReport:
    def test_total_is_sum_of_states(self):
        report = EnergyReport(elapsed=10.0, tx_j=1.0, rx_j=2.0, idle_j=3.0, reset_j=0.5)
        assert report.total_j == pytest.approx(6.5)

    def test_average_power(self):
        report = EnergyReport(elapsed=10.0, tx_j=5.0, rx_j=0.0, idle_j=5.0, reset_j=0.0)
        assert report.average_power_w == pytest.approx(1.0)

    def test_joules_per_megabyte(self):
        report = EnergyReport(elapsed=1.0, tx_j=2.0, rx_j=0.0, idle_j=0.0, reset_j=0.0)
        assert report.joules_per_megabyte(2_000_000) == pytest.approx(1.0)
        assert report.joules_per_megabyte(0) == float("inf")

    def test_zero_elapsed(self):
        report = EnergyReport(0.0, 0.0, 0.0, 0.0, 0.0)
        assert report.average_power_w == 0.0


class TestMeterOnRealRuns:
    def _metered_run(self, schedule, period=0.4, duration=30.0, aps=1):
        lab = LabScenario(seed=95)
        for i in range(aps):
            lab.add_lab_ap(f"ap{i}", 1, 2e6, index=2 * i)
        spider = lab.make_spider(SpiderConfig(schedule=schedule, period=period, **REDUCED))
        spider.start()
        meter = EnergyMeter(spider.radio)
        lab.sim.run(until=duration)
        report = meter.report()
        delivered = spider.recorder.total_bytes
        spider.stop()
        return report, delivered

    def test_states_account_for_all_elapsed_time(self):
        report, _ = self._metered_run({1: 1.0})
        state_time = (
            report.tx_j / 1.30 + report.rx_j / 0.95
            + report.idle_j / 0.85 + report.reset_j / 0.30
        )
        assert state_time == pytest.approx(report.elapsed, rel=0.02)

    def test_idle_listening_dominates(self):
        """The classic Wi-Fi energy result."""
        report, _ = self._metered_run({1: 1.0})
        assert report.idle_j > report.tx_j
        assert report.idle_j > report.rx_j

    def test_switching_schedule_accrues_reset_energy(self):
        switching, _ = self._metered_run({1: 0.5, 11: 0.5})
        dedicated, _ = self._metered_run({1: 1.0})
        assert switching.reset_j > dedicated.reset_j

    def test_aggregating_driver_more_efficient_per_byte(self):
        """More APs on one channel → more bytes for ~the same power."""
        one_ap, delivered_one = self._metered_run({1: 1.0}, aps=1)
        two_ap, delivered_two = self._metered_run({1: 1.0}, aps=2)
        assert (
            two_ap.joules_per_megabyte(delivered_two)
            < one_ap.joules_per_megabyte(delivered_one)
        )

    def test_meter_window_starts_at_construction(self):
        lab = LabScenario(seed=96)
        lab.add_lab_ap("a", 1, 2e6)
        spider = lab.make_spider(SpiderConfig(schedule={1: 1.0}, **REDUCED))
        spider.start()
        lab.sim.run(until=10.0)
        meter = EnergyMeter(spider.radio)  # late attach
        lab.sim.run(until=15.0)
        report = meter.report()
        spider.stop()
        assert report.elapsed == pytest.approx(5.0)
