"""Tests for ``repro.exec``: determinism, caching, fault tolerance.

The stub shard functions live in ``tests/exec_stub.py`` so worker
processes can import them by module path.
"""

import json
import os

import pytest

from repro.exec import (
    ExecPolicy,
    ResultCache,
    Shard,
    ShardError,
    build_plan,
    canonical_text,
    execute_experiment,
    execute_shards,
    run_campaign,
)
from repro.exec.workers import SOURCE_CACHE, SOURCE_INLINE, SOURCE_POOL
from repro.experiments import fig6_dhcp, runner

STUB = "tests.exec_stub"

#: Fast policy for fault-path tests: no real backoff sleeps.
def quick_policy(**kwargs):
    defaults = dict(jobs=1, backoff_base=0.0)
    defaults.update(kwargs)
    return ExecPolicy(**defaults)


# -- determinism ---------------------------------------------------------


class TestDeterminism:
    def test_parallel_fig6_fast_identical_to_sequential(self):
        """The acceptance check: --jobs N output == sequential output."""
        fast = runner.REGISTRY["fig6"]["fast"]
        sequential = fig6_dhcp.run(**fast)
        execution = execute_experiment("fig6", fast=True, jobs=4)
        assert execution.plan.sharded
        assert execution.shards_total == 4  # 4 cases x 1 fast seed
        assert execution.result == sequential

    def test_pool_results_arrive_in_shard_order(self):
        shards = [Shard(key=f"s{i}", params={"value": i}) for i in range(8)]
        outcomes = execute_shards(STUB, "shard_value", shards, quick_policy(jobs=4))
        assert [outcome.result for outcome in outcomes] == list(range(8))
        assert all(outcome.source == SOURCE_POOL for outcome in outcomes)

    def test_whole_run_fallback_for_unsharded_experiment(self):
        execution = execute_experiment("fig3", fast=True, jobs=2)
        assert not execution.plan.sharded
        assert execution.shards_total == 1
        assert execution.outcomes[0].source == SOURCE_INLINE  # single shard: no pool
        assert execution.result["experiment"] == "fig3"

    def test_sharded_modules_expose_the_protocol(self):
        import importlib

        from repro.exec.shards import supports_sharding

        for name in ("fig5", "fig6", "fig12", "tab2", "tab3", "model-gap"):
            module = importlib.import_module(runner.REGISTRY[name]["module"])
            assert supports_sharding(module), name


# -- result cache --------------------------------------------------------


class TestResultCache:
    def shards(self, counter, n=3, base=0):
        return [
            Shard(key=f"s{i}", params={"counter_path": str(counter), "value": base + i})
            for i in range(n)
        ]

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", code_version="v1")
        counter = tmp_path / "calls"
        cold = execute_shards(
            STUB, "count_calls", self.shards(counter), quick_policy(), cache, "stub"
        )
        assert [outcome.source for outcome in cold] == [SOURCE_INLINE] * 3
        from tests.exec_stub import calls

        assert calls(str(counter)) == 3

        warm = execute_shards(
            STUB, "count_calls", self.shards(counter), quick_policy(), cache, "stub"
        )
        assert [outcome.source for outcome in warm] == [SOURCE_CACHE] * 3
        assert [outcome.result for outcome in warm] == [outcome.result for outcome in cold]
        assert calls(str(counter)) == 3  # nothing re-executed
        assert cache.hits == 3 and cache.stores == 3

    def test_cache_invalidates_on_param_change(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", code_version="v1")
        counter = tmp_path / "calls"
        execute_shards(STUB, "count_calls", self.shards(counter), quick_policy(), cache, "stub")
        changed = execute_shards(
            STUB, "count_calls", self.shards(counter, base=100), quick_policy(), cache, "stub"
        )
        assert all(outcome.source == SOURCE_INLINE for outcome in changed)

    def test_cache_invalidates_on_code_version_change(self, tmp_path):
        counter = tmp_path / "calls"
        execute_shards(
            STUB,
            "count_calls",
            self.shards(counter),
            quick_policy(),
            ResultCache(tmp_path / "cache", code_version="sha-a"),
            "stub",
        )
        recheck = execute_shards(
            STUB,
            "count_calls",
            self.shards(counter),
            quick_policy(),
            ResultCache(tmp_path / "cache", code_version="sha-b"),
            "stub",
        )
        assert all(outcome.source == SOURCE_INLINE for outcome in recheck)

    def test_cache_isolates_experiments(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", code_version="v1")
        shard = Shard(key="s", params={"value": 1})
        execute_shards(STUB, "shard_value", [shard], quick_policy(), cache, "exp-a")
        miss = execute_shards(STUB, "shard_value", [shard], quick_policy(), cache, "exp-b")
        assert miss[0].source == SOURCE_INLINE

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", code_version="v1")
        shard = Shard(key="s", params={"value": 1})
        path = cache.put("stub", shard.key, shard.params, 42)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get("stub", shard.key, shard.params)
        assert not hit
        assert not path.exists()  # dropped, will be rewritten

    def test_canonical_text_order_independent(self):
        assert canonical_text({"b": (1, 2), "a": 1}) == canonical_text({"a": 1, "b": [1, 2]})
        assert canonical_text({"a": 1}) != canonical_text({"a": 2})

    def test_experiment_level_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", code_version="v1")
        cold = execute_experiment("model-gap", fast=True, jobs=1, cache=cache)
        warm = execute_experiment("model-gap", fast=True, jobs=1, cache=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.shards_total == 4
        assert warm.result == cold.result


# -- fault tolerance -----------------------------------------------------


class TestFaultTolerance:
    def test_inline_retry_after_transient_failure(self, tmp_path):
        shard = Shard(key="s", params={"counter_path": str(tmp_path / "c"), "fail_times": 2})
        outcomes = execute_shards(STUB, "flaky", [shard], quick_policy(max_retries=2))
        assert outcomes[0].attempts == 3
        assert outcomes[0].source == SOURCE_INLINE

    def test_inline_retries_exhausted_raises_shard_error(self, tmp_path):
        shard = Shard(key="s", params={"counter_path": str(tmp_path / "c"), "fail_times": 99})
        with pytest.raises(ShardError, match="shard 's'"):
            execute_shards(STUB, "flaky", [shard], quick_policy(max_retries=1))

    def test_pool_retry_after_transient_failure(self, tmp_path):
        shards = [
            Shard(key=f"s{i}", params={"counter_path": str(tmp_path / f"c{i}"), "fail_times": 1})
            for i in range(2)
        ]
        outcomes = execute_shards(STUB, "flaky", shards, quick_policy(jobs=2, max_retries=2))
        assert all(outcome.result == 0 for outcome in outcomes)
        assert all(outcome.attempts == 2 for outcome in outcomes)

    def test_shard_timeout_then_pool_retry_succeeds(self, tmp_path):
        # One shard stalls on its first attempt; the other worker stays
        # free so the retry can land on it and still finish in the pool.
        shards = [
            Shard(
                key="slow",
                params={"counter_path": str(tmp_path / "slow"), "sleep_s": 5.0, "value": 0},
            ),
            Shard(
                key="fast",
                params={"counter_path": str(tmp_path / "fast"), "sleep_s": 0.0, "value": 1},
            ),
        ]
        outcomes = execute_shards(
            STUB,
            "slow_first_attempt",
            shards,
            quick_policy(jobs=2, shard_timeout=0.5, max_retries=2),
        )
        assert [outcome.result for outcome in outcomes] == [0, 1]
        assert outcomes[0].attempts >= 2
        assert all(outcome.source == SOURCE_POOL for outcome in outcomes)

    def test_timeout_retries_exhausted_falls_back_inline(self, tmp_path):
        shards = [
            Shard(key=f"s{i}", params={"parent_pid": os.getpid(), "sleep_s": 3.0, "value": i})
            for i in range(2)
        ]
        outcomes = execute_shards(
            STUB,
            "slow_unless_parent",
            shards,
            quick_policy(jobs=2, shard_timeout=0.3, max_retries=0),
        )
        assert [outcome.result for outcome in outcomes] == [0, 1]
        assert all(outcome.source == SOURCE_INLINE for outcome in outcomes)

    def test_pool_death_degrades_to_sequential(self):
        shards = [
            Shard(key=f"s{i}", params={"parent_pid": os.getpid(), "value": i}) for i in range(3)
        ]
        outcomes = execute_shards(
            STUB, "die_unless_parent", shards, quick_policy(jobs=2, max_retries=1)
        )
        assert [outcome.result for outcome in outcomes] == [0, 1, 2]
        assert all(outcome.source == SOURCE_INLINE for outcome in outcomes)


# -- campaign + CLI ------------------------------------------------------


class TestCampaignAndCli:
    def test_run_campaign_aggregates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", code_version="v1")
        lines = []
        reports = []
        campaign = run_campaign(
            ["fig3", "model-gap"],
            fast=True,
            jobs=2,
            cache=cache,
            progress=lines.append,
            on_experiment=lambda execution: reports.append(execution.name),
        )
        assert reports == ["fig3", "model-gap"]
        assert campaign.shards_total == 5  # 1 whole-run + 4 fractions
        assert campaign.cache_stats["stores"] == 5
        assert any("model-gap shard fraction=" in line for line in lines)

        from repro.exec import campaign_manifest

        manifest = campaign_manifest(campaign, fast=True, started_at=0.0)
        assert manifest["kind"] == "campaign"
        assert manifest["shards_total"] == 5
        assert [entry["experiment"] for entry in manifest["experiments"]] == [
            "fig3",
            "model-gap",
        ]

    def test_cli_run_jobs_reports_cache_hits(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert runner.main(["run", "fig3", "--fast", "--jobs", "2"]) == 0
        assert "cached=0/1" in capsys.readouterr().out
        assert runner.main(["run", "fig3", "--fast", "--jobs", "2"]) == 0
        assert "cached=1/1" in capsys.readouterr().out
        assert (tmp_path / runner.DEFAULT_CACHE_DIR).is_dir()

    def test_cli_no_cache_never_writes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert runner.main(["run", "fig3", "--fast", "--jobs", "2", "--no-cache"]) == 0
        assert "cached=0/1" in capsys.readouterr().out
        assert not (tmp_path / runner.DEFAULT_CACHE_DIR).exists()

    def test_cli_campaign_writes_manifest(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            runner.main(
                ["campaign", "fig3", "--fast", "--jobs", "1", "--manifest", "m.json"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "campaign: 1 experiments" in out
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["kind"] == "campaign"
        assert manifest["experiments"][0]["experiment"] == "fig3"

    def test_cli_rejects_bad_jobs(self):
        with pytest.raises(SystemExit):
            runner.main(["run", "fig3", "--jobs", "0"])

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            execute_experiment("fig99")

    def test_override_validation_applies(self):
        with pytest.raises(TypeError, match="fig3"):
            execute_experiment("fig3", overrides={"nope": 1})

    def test_build_plan_rejects_empty_shards(self):
        class Empty:
            __name__ = "empty"

            @staticmethod
            def shards(**kwargs):
                return []

            @staticmethod
            def run_shard(**kwargs):
                return None

            @staticmethod
            def merge(results, **kwargs):
                return {}

        with pytest.raises(ValueError, match="no shards"):
            build_plan("empty", Empty, {})
