"""Tests for ``repro.exec.backend``: the ABC contract and all three
implementations, with emphasis on the failure paths the orchestrator's
retry/degradation logic depends on.

The SSH backend is exercised against ``localhost``, where the command
prefix is empty and the "remote" worker is a plain subprocess speaking
the same stdio RPC — no sshd involved.
"""

import os
import time

import pytest

from repro.exec import ExecPolicy, execute_shards
from repro.exec.backend import (
    BackendBroken,
    HostSpec,
    LocalPoolBackend,
    QueueDirBackend,
    RemoteShardError,
    SubprocessSSHBackend,
    WorkerTimeout,
    make_backend,
    parse_backend_spec,
)
from repro.exec.backend.base import SettableFuture, ShardRequest
from repro.exec.backend.queue_worker import CLAIMED, PENDING, claim_one, drain, write_atomic
from repro.exec.shards import Shard
from repro.exec.workers import SOURCE_INLINE

STUB = "tests.exec_stub"


def quick_policy(**kwargs):
    defaults = dict(jobs=2, backoff_base=0.0)
    defaults.update(kwargs)
    return ExecPolicy(**defaults)


def request(key="s", **params):
    return ShardRequest(
        experiment="stub", module_name=STUB, func_name="shard_value", key=key, params=params
    )


def value_shards(n):
    return [Shard(key=f"s{i}", params={"value": i}) for i in range(n)]


# -- spec parsing / factory ----------------------------------------------


class TestBackendSpec:
    def test_parse_kinds(self):
        assert parse_backend_spec("local") == ("local", "", {})
        assert parse_backend_spec("local:4") == ("local", "4", {})
        assert parse_backend_spec("ssh:a*2,b") == ("ssh", "a*2,b", {})
        kind, arg, options = parse_backend_spec("queuedir:/tmp/q?workers=3&poll=0.1")
        assert (kind, arg) == ("queuedir", "/tmp/q")
        assert options == {"workers": "3", "poll": "0.1"}

    def test_none_and_bare_local_mean_builtin_path(self):
        assert make_backend(None, jobs=4) is None
        assert make_backend("local", jobs=4) is None

    def test_local_n_builds_pool(self):
        backend = make_backend("local:2")
        try:
            assert isinstance(backend, LocalPoolBackend)
            assert backend.capacity() == 2
        finally:
            backend.shutdown()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("slurm:cluster")

    def test_unknown_option_rejected_before_construction(self):
        with pytest.raises(ValueError, match="nope"):
            make_backend("queuedir:/tmp/q?nope=1")

    def test_ssh_spec_hosts_and_slots(self):
        backend = make_backend("ssh:localhost*2?heartbeat=5&blacklist-after=2")
        try:
            assert isinstance(backend, SubprocessSSHBackend)
            assert backend.capacity() == 2
            assert backend.heartbeat_timeout == 5.0
            assert backend.blacklist_after == 2
        finally:
            backend.shutdown()


# -- the generic orchestrator over a scriptable fake ----------------------


class _ScriptedFuture:
    def __init__(self, outcome):
        self.outcome = outcome

    def result(self, timeout=None):
        if isinstance(self.outcome, BaseException):
            raise self.outcome
        return {"result": self.outcome, "worker_seconds": 0.001, "worker": "fake/1"}


class _ScriptedBackend:
    """Backend whose submit() pops scripted outcomes per shard key."""

    name = "fake"
    bus = None

    def __init__(self, script):
        self.script = {key: list(outcomes) for key, outcomes in script.items()}
        self.submits = []

    def submit(self, req):
        self.submits.append(req.key)
        outcomes = self.script[req.key]
        outcome = outcomes.pop(0) if len(outcomes) > 1 else outcomes[0]
        if isinstance(outcome, BackendBroken):
            raise outcome
        return _ScriptedFuture(outcome)

    def capacity(self):
        return 2

    def health(self):
        return {"backend": self.name}

    def shutdown(self, wait=False):
        pass


class TestOrchestratorOverABC:
    def test_worker_timeout_resubmits_then_succeeds(self):
        backend = _ScriptedBackend({"s0": [WorkerTimeout("worker died"), 42]})
        outcomes = execute_shards(
            STUB,
            "shard_value",
            [Shard(key="s0", params={"value": 42})],
            quick_policy(max_retries=2),
            backend=backend,
        )
        assert outcomes[0].result == 42
        assert outcomes[0].attempts == 2
        assert outcomes[0].source == "fake"
        assert backend.submits == ["s0", "s0"]

    def test_backend_broken_mid_run_degrades_remaining_inline(self):
        backend = _ScriptedBackend(
            {"s0": [0], "s1": [BackendBroken("gone")], "s2": [BackendBroken("gone")]}
        )
        outcomes = execute_shards(
            STUB, "shard_value", value_shards(3), quick_policy(max_retries=1), backend=backend
        )
        assert [o.result for o in outcomes] == [0, 1, 2]
        assert outcomes[0].source == "fake"
        assert [o.source for o in outcomes[1:]] == [SOURCE_INLINE] * 2

    def test_retries_exhausted_gets_final_inline_attempt(self):
        backend = _ScriptedBackend({"s0": [RemoteShardError("shard blew up")]})
        outcomes = execute_shards(
            STUB,
            "shard_value",
            [Shard(key="s0", params={"value": 7})],
            quick_policy(max_retries=1),
            backend=backend,
        )
        assert outcomes[0].result == 7
        assert outcomes[0].source == SOURCE_INLINE
        assert outcomes[0].attempts == 3  # 2 backend attempts + 1 inline

    def test_zero_capacity_backend_is_bypassed(self):
        backend = _ScriptedBackend({})
        backend.capacity = lambda: 0
        outcomes = execute_shards(
            STUB, "shard_value", value_shards(2), quick_policy(), backend=backend
        )
        assert [o.source for o in outcomes] == [SOURCE_INLINE] * 2
        assert backend.submits == []


# -- LocalPoolBackend -----------------------------------------------------


class TestLocalPoolBackend:
    def test_abc_round_trip(self):
        backend = LocalPoolBackend(max_workers=2)
        try:
            payload = backend.submit(request(value=5)).result(timeout=30)
            assert payload["result"] == 5
            assert payload["worker"] == "pool"
            assert payload["worker_seconds"] > 0
        finally:
            backend.shutdown()

    def test_pool_death_raises_backend_broken(self):
        backend = LocalPoolBackend(max_workers=1)
        try:
            dead = ShardRequest(
                experiment="stub",
                module_name=STUB,
                func_name="die_unless_parent",
                key="die",
                params={"parent_pid": 0},
            )
            with pytest.raises(BackendBroken):
                backend.submit(dead).result(timeout=30)
        finally:
            backend.shutdown()

    def test_explicit_pool_death_degrades_through_orchestrator(self):
        backend = LocalPoolBackend(max_workers=2)
        try:
            shards = [
                Shard(key=f"s{i}", params={"parent_pid": os.getpid(), "value": i})
                for i in range(3)
            ]
            outcomes = execute_shards(
                STUB,
                "die_unless_parent",
                shards,
                quick_policy(max_retries=1),
                backend=backend,
            )
            assert [o.result for o in outcomes] == [0, 1, 2]
            assert all(o.source == SOURCE_INLINE for o in outcomes)
        finally:
            backend.shutdown()


# -- SubprocessSSHBackend (localhost = plain subprocess) -------------------


class TestSubprocessSSHBackend:
    def backend(self, **kwargs):
        defaults = dict(
            hosts=[HostSpec("localhost", slots=2)],
            heartbeat_timeout=10.0,
            hb_interval=0.1,
            blacklist_after=3,
        )
        defaults.update(kwargs)
        return SubprocessSSHBackend(**defaults)

    def test_round_trip_in_shard_order(self):
        backend = self.backend()
        try:
            outcomes = execute_shards(
                STUB,
                "shard_value",
                value_shards(4),
                quick_policy(shard_timeout=60),
                backend=backend,
            )
            assert [o.result for o in outcomes] == [0, 1, 2, 3]
            assert all(o.source == "ssh" for o in outcomes)
            assert all(o.worker.startswith("localhost/") for o in outcomes)
        finally:
            backend.shutdown()

    def test_clean_shard_failure_does_not_count_against_host(self, tmp_path):
        backend = self.backend()
        try:
            shard = Shard(
                key="flaky", params={"counter_path": str(tmp_path / "c"), "fail_times": 1}
            )
            outcomes = execute_shards(
                STUB,
                "flaky",
                [shard],
                quick_policy(max_retries=2, shard_timeout=60),
                backend=backend,
            )
            assert outcomes[0].result == 0
            assert outcomes[0].attempts == 2
            health = backend.health()
            assert health["hosts"][0]["failures"] == 0
            assert not health["hosts"][0]["blacklisted"]
        finally:
            backend.shutdown()

    def test_worker_death_resubmits_and_counts_host_failure(self, tmp_path):
        backend = self.backend()
        try:
            shard = Shard(
                key="crash",
                params={"counter_path": str(tmp_path / "c"), "parent_pid": os.getpid()},
            )
            outcomes = execute_shards(
                STUB,
                "die_first_attempt",
                [shard],
                quick_policy(max_retries=2, shard_timeout=60),
                backend=backend,
            )
            assert outcomes[0].result == 0
            assert outcomes[0].attempts >= 2
            assert outcomes[0].source == "ssh"
            assert backend.health()["hosts"][0]["failures"] >= 1
        finally:
            backend.shutdown()

    def test_heartbeat_timeout_declares_wedged_worker_dead(self, tmp_path):
        backend = self.backend(heartbeat_timeout=1.0)
        try:
            shard = Shard(
                key="frozen",
                params={"counter_path": str(tmp_path / "c"), "parent_pid": os.getpid()},
            )
            started = time.monotonic()
            outcomes = execute_shards(
                STUB,
                "freeze_first_attempt",
                [shard],
                quick_policy(max_retries=2, shard_timeout=60),
                backend=backend,
            )
            assert outcomes[0].result == 0
            assert outcomes[0].attempts >= 2
            # The watchdog fired on the heartbeat deadline, not on the
            # 60 s caller timeout.
            assert time.monotonic() - started < 30
            assert backend.health()["hosts"][0]["failures"] >= 1
        finally:
            backend.shutdown()

    def test_blacklist_after_repeated_failures_then_inline_degradation(self, tmp_path):
        backend = self.backend(blacklist_after=2, hosts=[HostSpec("localhost", slots=1)])
        try:
            shards = [
                Shard(key=f"s{i}", params={"parent_pid": os.getpid(), "value": i})
                for i in range(3)
            ]
            outcomes = execute_shards(
                STUB,
                "die_unless_parent",
                shards,
                quick_policy(max_retries=3, shard_timeout=60),
                backend=backend,
            )
            # Everything still completes — inline, once the only host is
            # blacklisted and the backend declares itself broken.
            assert [o.result for o in outcomes] == [0, 1, 2]
            assert outcomes[-1].source == SOURCE_INLINE
            health = backend.health()
            assert health["hosts"][0]["blacklisted"]
            assert health["capacity"] == 0
        finally:
            backend.shutdown()

    def test_submit_after_blacklist_raises_backend_broken(self):
        backend = self.backend(blacklist_after=1, hosts=[HostSpec("localhost", slots=1)])
        try:
            dead = ShardRequest(
                experiment="stub",
                module_name=STUB,
                func_name="die_unless_parent",
                key="die",
                params={"parent_pid": 0},
            )
            with pytest.raises((WorkerTimeout, BackendBroken)):
                backend.submit(dead).result(timeout=30)
            with pytest.raises(BackendBroken):
                backend.submit(request())
        finally:
            backend.shutdown()


# -- QueueDirBackend ------------------------------------------------------


class TestQueueDirBackend:
    def test_round_trip_with_spawned_workers(self, tmp_path):
        backend = QueueDirBackend(tmp_path / "spool", workers=2)
        try:
            outcomes = execute_shards(
                STUB,
                "shard_value",
                value_shards(4),
                quick_policy(shard_timeout=60),
                backend=backend,
            )
            assert [o.result for o in outcomes] == [0, 1, 2, 3]
            assert all(o.source == "queue" for o in outcomes)
            assert all(o.worker.startswith("queue-worker/") for o in outcomes)
        finally:
            backend.shutdown()

    def test_external_worker_drains_spool(self, tmp_path):
        spool = tmp_path / "spool"
        backend = QueueDirBackend(spool, workers=0)
        try:
            future = backend.submit(request(value=9))
            assert drain(spool, poll=0.01, max_tasks=1) == 1
            assert future.result(timeout=5)["result"] == 9
        finally:
            backend.shutdown()

    def test_claim_is_exactly_once(self, tmp_path):
        spool = tmp_path / "spool"
        for i in range(3):
            write_atomic(spool / PENDING / f"t{i}.task", {"id": f"t{i}"})
        claims = [claim_one(spool), claim_one(spool), claim_one(spool)]
        assert claim_one(spool) is None
        assert len({c.name for c in claims}) == 3
        assert all(c.parent.name == CLAIMED for c in claims)

    def test_failed_shard_raises_remote_error_with_traceback(self, tmp_path):
        spool = tmp_path / "spool"
        backend = QueueDirBackend(spool, workers=0)
        try:
            req = ShardRequest(
                experiment="stub",
                module_name=STUB,
                func_name="flaky",
                key="flaky",
                params={"counter_path": str(tmp_path / "c"), "fail_times": 99},
            )
            future = backend.submit(req)
            drain(spool, poll=0.01, max_tasks=1)
            with pytest.raises(RemoteShardError, match="flaky") as info:
                future.result(timeout=5)
            assert "transient failure" in info.value.remote_traceback
        finally:
            backend.shutdown()

    def test_workers_keep_dying_degrades_inline(self, tmp_path):
        backend = QueueDirBackend(tmp_path / "spool", workers=1, poll_interval=0.01)
        try:
            shards = [
                Shard(key=f"s{i}", params={"parent_pid": os.getpid(), "value": i})
                for i in range(2)
            ]
            outcomes = execute_shards(
                STUB,
                "die_unless_parent",
                shards,
                quick_policy(max_retries=2, shard_timeout=60),
                backend=backend,
            )
            assert [o.result for o in outcomes] == [0, 1]
            assert all(o.source == SOURCE_INLINE for o in outcomes)
        finally:
            backend.shutdown()

    def test_stop_marker_cleared_on_reuse(self, tmp_path):
        spool = tmp_path / "spool"
        first = QueueDirBackend(spool, workers=0)
        first.shutdown()
        assert (spool / "stop").exists()
        second = QueueDirBackend(spool, workers=0)
        try:
            assert not (spool / "stop").exists()  # resume restarts service
        finally:
            second.shutdown()


# -- SettableFuture -------------------------------------------------------


class TestSettableFuture:
    def test_timeout(self):
        with pytest.raises(Exception):
            SettableFuture().result(timeout=0.05)

    def test_watchdog_runs_each_slice_and_may_fail_the_wait(self):
        future = SettableFuture()
        calls = []

        def watchdog():
            calls.append(1)
            if len(calls) >= 3:
                future.set_exception(WorkerTimeout("watchdog gave up"))

        future._watchdog = watchdog
        with pytest.raises(WorkerTimeout):
            future.result(timeout=10)
        assert len(calls) == 3

    def test_first_exception_wins(self):
        future = SettableFuture()
        future.set_exception(WorkerTimeout("first"))
        future.set_exception(WorkerTimeout("second"))
        with pytest.raises(WorkerTimeout, match="first"):
            future.result(timeout=1)
