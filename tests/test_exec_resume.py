"""Resumable campaigns: journal round-trips, kill-mid-run fault
injection (``die_after``), and the headline acceptance check — a
killed-then-resumed campaign skips completed shards via the cache and
produces byte-identical results to an uninterrupted run, on every
backend."""

import json

import pytest

from repro.exec import (
    CampaignAborted,
    CampaignJournal,
    JournalError,
    QueueDirBackend,
    ResultCache,
    SubprocessSSHBackend,
    load_journal,
    run_campaign,
)
from repro.exec.backend.ssh import HostSpec
from repro.exec.cache import canonical_text


class TestJournal:
    def test_write_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.begin(
                ["fig3", "model-gap"],
                fast=True,
                backend="queue:/spool",
                cache_dir="/cache",
                code_version="abc123",
            )
            journal.plan("fig3", ["only"])
            journal.plan("model-gap", ["s0", "s1"])
            journal.outcome("fig3", "only", "inline", 1, 0.5)
            journal.outcome("model-gap", "s0", "pool", 2, 1.25)
        state = load_journal(path)
        assert state.names == ["fig3", "model-gap"]
        assert state.fast is True
        assert state.backend == "queue:/spool"
        assert state.cache_dir == "/cache"
        assert state.code_version == "abc123"
        assert state.plans == {"fig3": ["only"], "model-gap": ["s0", "s1"]}
        assert state.completed == {"fig3": {"only"}, "model-gap": {"s0"}}
        assert state.planned_shards == 3
        assert state.completed_shards == 2
        assert state.ended is False
        assert "2 of 3 shard(s) done" in state.summary_line()
        assert "interrupted" in state.summary_line()

    def test_end_record_marks_complete(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.begin(["fig3"], fast=True, backend=None, cache_dir=None, code_version="v")
            journal.plan("fig3", ["only"])
            journal.outcome("fig3", "only", "inline", 1, 0.5)
            journal.end(1, 0, 0.5)
        state = load_journal(path)
        assert state.ended is True
        assert "complete" in state.summary_line()

    def test_torn_tail_is_tolerated(self, tmp_path):
        """A kill mid-append leaves a truncated last line, not a corrupt
        journal: everything before it must still parse."""
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.begin(["fig3"], fast=False, backend=None, cache_dir=None, code_version="v")
            journal.plan("fig3", ["only"])
            journal.outcome("fig3", "only", "inline", 1, 0.5)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "outcome", "experiment": "fig3", "key": "on')
        state = load_journal(path)
        assert state.completed == {"fig3": {"only"}}
        assert state.ended is False

    def test_resume_records_are_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.begin(["fig3"], fast=False, backend=None, cache_dir=None, code_version="v")
            journal.resume(0, 1)
            journal.resume(0, 1)
        state = load_journal(path)
        assert state.resumes == 2
        assert "2 prior resume(s)" in state.summary_line()

    def test_not_a_journal_raises(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("just some text\n")
        with pytest.raises(JournalError):
            load_journal(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError):
            load_journal(tmp_path / "absent.jsonl")


def _backend_none(tmp_path):
    return None


def _backend_ssh(tmp_path):
    return SubprocessSSHBackend([HostSpec("localhost", slots=2)], hb_interval=0.1)


def _backend_queue(tmp_path):
    return QueueDirBackend(tmp_path / "spool", workers=2)


@pytest.mark.parametrize(
    "make_backend",
    [_backend_none, _backend_ssh, _backend_queue],
    ids=["default-pool", "ssh-localhost", "queuedir"],
)
class TestKillResumeByteIdentity:
    """The acceptance criterion, per backend: kill a campaign mid-run,
    resume it against the same cache, and the merged result must be
    byte-identical to an uninterrupted run — with the completed prefix
    served from cache, never re-executed."""

    NAMES = ["model-gap"]  # 4 shards under --fast

    def test_kill_then_resume(self, tmp_path, make_backend):
        clean = run_campaign(self.NAMES, fast=True, jobs=1)
        reference = canonical_text(clean.executions[0].result)

        cache = ResultCache(tmp_path / "cache", code_version="test")
        journal_path = tmp_path / "j.jsonl"
        backend = make_backend(tmp_path)
        try:
            with CampaignJournal(journal_path) as journal:
                journal.begin(self.NAMES, True, None, str(cache.root), "test")
                with pytest.raises(CampaignAborted):
                    run_campaign(
                        self.NAMES,
                        fast=True,
                        jobs=2,
                        cache=cache,
                        backend=backend,
                        journal=journal,
                        die_after=2,
                    )
        finally:
            if backend is not None:
                backend.shutdown()

        state = load_journal(journal_path)
        assert state.ended is False
        assert state.planned_shards == 4
        assert 2 <= state.completed_shards < 4

        resumed_cache = ResultCache(tmp_path / "cache", code_version="test")
        backend = make_backend(tmp_path)
        try:
            with CampaignJournal(journal_path) as journal:
                journal.resume(state.completed_shards, state.planned_shards)
                resumed = run_campaign(
                    self.NAMES,
                    fast=True,
                    jobs=2,
                    cache=resumed_cache,
                    backend=backend,
                    journal=journal,
                )
        finally:
            if backend is not None:
                backend.shutdown()

        # Every shard the killed run completed comes back from cache...
        assert resumed.cache_hits >= 2
        telemetry = resumed.executions[0].telemetry()
        assert telemetry["cached"] == resumed.cache_hits
        # ...and the merged output is byte-identical to the clean run.
        assert canonical_text(resumed.executions[0].result) == reference

        state = load_journal(journal_path)
        assert state.ended is True
        assert state.completed_shards == 4
        assert state.resumes == 1


class TestEta:
    def test_eta_unknown_until_first_executed_shard(self, tmp_path):
        """Cache hits land in microseconds; extrapolating an ETA from
        them was the old ``eta=0s`` bug. A cached prefix must show
        ``eta=?`` until a shard actually executes."""
        cache = ResultCache(tmp_path / "cache", code_version="test")
        run_campaign(["model-gap"], fast=True, jobs=1, cache=cache)

        lines = []
        run_campaign(["model-gap"], fast=True, jobs=1, cache=cache, progress=lines.append)
        shard_lines = [line for line in lines if "-> cache" in line]
        assert len(shard_lines) == 4
        # All but the last shard line carry an ETA marker (remaining>0),
        # and every one of them is the honest "unknown", never 0s.
        assert all("eta=?" in line for line in shard_lines[:-1])
        assert not any("eta=0s" in line for line in lines)

    def test_eta_appears_once_shards_execute(self, tmp_path):
        lines = []
        run_campaign(["model-gap"], fast=True, jobs=1, progress=lines.append)
        assert any("eta=" in line and "eta=?" not in line for line in lines)


class TestRunnerResumeCli:
    """End-to-end over the CLI: --journal/--die-after abort with exit
    code 3, --resume replays with cache hits and finishes with 0."""

    def test_die_after_then_resume(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import runner

        monkeypatch.chdir(tmp_path)
        code = runner.main(
            [
                "campaign",
                "model-gap",
                "--fast",
                "--jobs",
                "1",
                "--cache-dir",
                "cache",
                "--journal",
                "j.jsonl",
                "--die-after",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "aborted after 2" in captured.err
        assert "--resume" in captured.err

        code = runner.main(
            ["campaign", "--resume", "j.jsonl", "--manifest", "m.json"]
        )
        captured = capsys.readouterr()
        assert code == 0
        # Resume printed the journal's state before re-running.
        assert "2 of 4 shard(s) done" in captured.out
        assert "interrupted" in captured.out
        # The completed prefix was served from cache (never re-executed)
        # and showed the honest unknown-ETA marker while it drained.
        assert "eta=?" in captured.out
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["telemetry"]["shards"] == 4
        assert manifest["telemetry"]["cached"] == 2

        state = load_journal(tmp_path / "j.jsonl")
        assert state.ended is True
        assert state.resumes == 1
        assert state.completed_shards == 4

    def test_resume_rejects_no_cache(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import runner

        monkeypatch.chdir(tmp_path)
        (tmp_path / "j.jsonl").write_text("")
        code = runner.main(["campaign", "--resume", "j.jsonl", "--no-cache"])
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_resume_with_unreadable_journal_fails(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import runner

        monkeypatch.chdir(tmp_path)
        (tmp_path / "j.jsonl").write_text("not a journal\n")
        code = runner.main(["campaign", "--resume", "j.jsonl"])
        assert code == 2
        assert "journal" in capsys.readouterr().err
