"""Integration tests: every experiment runs (scaled down) and the
paper's qualitative shapes hold."""

import pytest

from repro.experiments import (
    ablations,
    fig10_cdfs,
    fig11_join_timeout,
    fig12_join_policies,
    fig13_usability,
    fig14_usability,
    fig2_join_model,
    fig3_beta_sensitivity,
    fig4_dividing_speed,
    fig5_association,
    fig6_dhcp,
    fig7_tcp_fraction,
    fig8_tcp_dwell,
    fig9_micro,
    runner,
    tab1_switch_latency,
    tab2_throughput_connectivity,
    tab3_dhcp_failures,
    tab4_channels,
)


@pytest.mark.slow
class TestModelExperiments:
    def test_fig2_model_matches_simulation(self):
        result = fig2_join_model.run(
            fractions=[0.1, 0.3, 0.5, 1.0], runs=20, trials_per_run=50
        )
        assert fig2_join_model.max_model_sim_gap(result) < 0.08
        for series in result["series"]:
            assert series["model"][-1] > 0.95  # near-certain at f=1

    def test_fig3_success_falls_with_beta_max(self):
        result = fig3_beta_sensitivity.run(beta_maxes=[1.0, 5.0, 10.0])
        for series in result["series"]:
            assert series["values"][0] >= series["values"][-1] - 1e-9
        assert fig3_beta_sensitivity.switch_delay_effect(result) < 0.15

    def test_fig4_dividing_speed_below_ten(self):
        result = fig4_dividing_speed.run(grid_step=0.05)
        for scenario in result["scenarios"]:
            assert scenario["dividing_speed"] is not None
            assert scenario["dividing_speed"] <= 10.0
            # ch2 bandwidth decreases with speed and hits zero.
            ch2 = scenario["ch2_bps"]
            assert ch2[0] > 0
            assert ch2[-1] == 0.0


@pytest.mark.slow
class TestJoinExperiments:
    def test_fig5_association_robust_to_switching(self):
        result = fig5_association.run(
            fractions=(0.25, 1.0), seeds=(1, 2), duration=180.0
        )
        by_fraction = {s["fraction"]: s for s in result["series"]}
        assert len(by_fraction[1.0]["association_times"]) > 3
        # Dedicated channel associates fast; f=.25 still succeeds often.
        assert by_fraction[1.0]["median"] < 0.5
        assert len(by_fraction[0.25]["association_times"]) > 0

    def test_fig6_reduced_timers_speed_up_joins(self):
        result = fig6_dhcp.run(
            cases=((1.0, 0.1, "100% - 100ms"), (1.0, 1.0, "100% - default")),
            seeds=(1,),
            duration=150.0,
        )
        fast, slow = result["series"]
        assert fast["median"] < slow["median"]

    def test_fig11_single_channel_joins_faster_than_three(self):
        result = fig11_join_timeout.run(
            seeds=(1, 2),
            duration=240.0,
            cases=(("200ms, channel 1", 1.0, 0.2), ("200ms, 3 channels", 1 / 3, 0.2)),
        )
        single, triple = result["series"]
        # Fractional-channel joins are strictly rarer and slower; on a
        # short run they may not complete at all (which proves the
        # point even more strongly).
        if triple["join_times"]:
            assert single["median"] < triple["median"]
        assert len(triple["join_times"]) <= len(single["join_times"])

    def test_fig12_policies_produce_joins(self):
        result = fig12_join_policies.run(
            seeds=(1,),
            duration=120.0,
            cases=(
                ("1 iface, ch1, default TO", (1,), 1, 1.0, 1.0),
                ("7 ifaces, ch1, reduced", (1,), 7, 0.1, 0.2),
            ),
        )
        for series in result["series"]:
            assert series["join_times"], series["label"]

    def test_tab3_reduced_timers_fail_more_than_default(self):
        result = tab3_dhcp_failures.run(
            seeds=(1,),
            duration=150.0,
            cases=(
                ("ch1, ll=100ms, dhcp=200ms", (1,), 0.1, 0.2, 28.2),
                ("ch1, default timers", (1,), 1.0, 1.0, 13.5),
            ),
        )
        reduced, default = result["rows"]
        assert reduced["mean_pct"] > default["mean_pct"]


@pytest.mark.slow
class TestTcpExperiments:
    def test_fig7_monotonic(self):
        result = fig7_tcp_fraction.run(fractions=(0.2, 0.6, 1.0), duration=30.0)
        values = result["throughput_kbps"]
        assert values[0] < values[-1]
        assert fig7_tcp_fraction.is_roughly_monotonic(result)

    def test_fig8_non_monotonic(self):
        result = fig8_tcp_dwell.run(dwells=(0.025, 0.05, 0.2, 0.4), duration=30.0)
        assert fig8_tcp_dwell.is_non_monotonic(result)


@pytest.mark.slow
class TestSystemExperiments:
    def test_tab1_latency_grows_with_interfaces(self):
        result = tab1_switch_latency.run(max_interfaces=2, duration=10.0)
        rows = result["rows"]
        assert rows[0]["mean_ms"] < rows[2]["mean_ms"]
        assert 3.0 < rows[0]["mean_ms"] < 8.0

    def test_fig9_spider_single_channel_matches_two_cards(self):
        # Long enough for the second (staggered) stock card's default
        # timers to join and contribute a representative share.
        result = fig9_micro.run(backhauls=(2e6,), duration=45.0)
        by_config = {s["config"]: s["throughput_kBps"][0] for s in result["series"]}
        one = by_config["one-card-stock"]
        two = by_config["two-cards-stock"]
        spider = by_config["spider-100-0-0"]
        assert two > one * 1.4
        assert spider > one * 1.5
        assert abs(spider - two) / two < 0.4

    def test_tab2_headline_shapes(self):
        result = tab2_throughput_connectivity.run(
            duration=300.0,
            configs=("ch1-multi-ap", "ch1-single-ap", "3ch-multi-ap"),
        )
        rows = {r["config"]: r for r in result["rows"]}
        # Single-channel multi-AP wins throughput...
        assert rows["ch1-multi-ap"]["throughput_kBps"] > rows["ch1-single-ap"]["throughput_kBps"]
        assert rows["ch1-multi-ap"]["throughput_kBps"] > rows["3ch-multi-ap"]["throughput_kBps"]

    def test_tab4_single_channel_max_throughput(self):
        result = tab4_channels.run(duration=300.0)
        rows = result["rows"]
        assert rows[0]["throughput_kBps"] == max(r["throughput_kBps"] for r in rows)

    def test_fig10_single_channel_dominates_instantaneous_bw(self):
        result = fig10_cdfs.run(duration=300.0, configs=("ch1-multi-ap", "3ch-multi-ap"))
        by_config = {s["config"]: s for s in result["series"]}
        assert (
            by_config["ch1-multi-ap"]["bw_p60"]
            > by_config["3ch-multi-ap"]["bw_p60"]
        )


@pytest.mark.slow
class TestUsabilityExperiments:
    def test_fig13_spider_covers_user_flows(self):
        result = fig13_usability.run(duration=240.0, configs=("ch1-multi-ap",))
        assert result["coverage"]["ch1-multi-ap"] > 0.8

    def test_fig14_has_all_series(self):
        result = fig14_usability.run(duration=240.0, configs=("3ch-multi-ap",))
        labels = [s["label"] for s in result["series"]]
        assert "user inter-connection" in labels
        assert len(result["series"]) == 2


class TestRunnerCli:
    def test_registry_covers_all_artifacts(self):
        expected = {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "fig14",
            "tab1", "tab2", "tab3", "tab4", "ablations", "model-gap",
            "contention",
        }
        assert set(runner.REGISTRY) == expected

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            runner.run_experiment("fig99")

    def test_unknown_override_raises_with_experiment_name(self):
        with pytest.raises(TypeError, match=r"fig3.*beta_maxs"):
            runner.run_experiment("fig3", beta_maxs=[1.0])

    def test_override_error_lists_valid_parameters(self):
        with pytest.raises(TypeError, match="beta_maxes"):
            runner.run_experiment("fig3", not_a_parameter=1)

    def test_valid_override_accepted(self):
        result = runner.run_experiment("fig3", beta_maxes=[1.0, 5.0])
        assert result["experiment"] == "fig3"

    def test_list_command(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "tab2" in out

    def test_run_command_fast(self, capsys):
        assert runner.main(["run", "fig3", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "beta_max" in out
