"""Tests for the shared scenario machinery."""

import pytest

from repro.core.config import SpiderConfig
from repro.experiments.common import (
    LabScenario,
    RunResult,
    ScenarioConfig,
    VehicularScenario,
)

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


class TestLabScenario:
    def test_ap_wiring_complete(self):
        lab = LabScenario(seed=1)
        lab.add_lab_ap("a", 1, 2e6)
        assert "a" in lab.aps
        router = lab.router_lookup()("a")
        assert router is not None
        assert router.dhcp_server is not None

    def test_unknown_ap_lookup_returns_none(self):
        lab = LabScenario(seed=1)
        assert lab.router_lookup()("ghost") is None

    def test_run_produces_result(self):
        lab = LabScenario(seed=1)
        lab.add_lab_ap("a", 1, 2e6)
        spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
        result = lab.run(spider, 20.0)
        assert isinstance(result, RunResult)
        assert result.throughput_kbytes_per_s > 0
        assert 0 <= result.connectivity <= 1
        assert result.join_successes >= 1

    def test_summary_keys(self):
        lab = LabScenario(seed=1)
        lab.add_lab_ap("a", 1, 2e6)
        spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
        summary = lab.run(spider, 10.0).summary()
        assert {"throughput_KBps", "connectivity_pct", "join_attempts",
                "join_successes", "dhcp_failure_pct"} <= set(summary)


class TestVehicularScenario:
    def test_world_built_from_deployment(self):
        scenario = VehicularScenario(ScenarioConfig(seed=2))
        assert len(scenario.aps) == len(scenario.deployment.open_sites())
        assert scenario.mobility.speed(0.0) == 10.0

    def test_seed_changes_world(self):
        a = VehicularScenario(ScenarioConfig(seed=2))
        b = VehicularScenario(ScenarioConfig(seed=3))
        assert {s.name for s in a.deployment.sites} != set()
        positions_a = [s.position for s in a.deployment.sites]
        positions_b = [s.position for s in b.deployment.sites]
        assert positions_a != positions_b

    def test_same_seed_reproduces_world(self):
        a = VehicularScenario(ScenarioConfig(seed=4))
        b = VehicularScenario(ScenarioConfig(seed=4))
        assert [s.position for s in a.deployment.sites] == [
            s.position for s in b.deployment.sites
        ]

    @pytest.mark.slow
    def test_same_seed_same_config_reproduces_run(self):
        def run_once():
            scenario = VehicularScenario(ScenarioConfig(seed=5))
            spider = scenario.make_spider(
                SpiderConfig.single_channel_multi_ap(1, **REDUCED)
            )
            return scenario.run(spider, 120.0)

        first = run_once()
        second = run_once()
        assert first.throughput_kbytes_per_s == second.throughput_kbytes_per_s
        assert first.connectivity == second.connectivity

    @pytest.mark.slow
    def test_speed_affects_outcomes(self):
        slow_sc = VehicularScenario(ScenarioConfig(seed=6, speed=5.0))
        slow = slow_sc.run(
            slow_sc.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED)),
            180.0,
        )
        fast_sc = VehicularScenario(ScenarioConfig(seed=6, speed=20.0))
        fast = fast_sc.run(
            fast_sc.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED)),
            180.0,
        )
        # Same world; a slower node holds connections longer.
        assert max(slow.connection_durations, default=0) >= max(
            fast.connection_durations, default=0
        )
