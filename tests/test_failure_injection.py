"""Failure-injection tests: the stack degrades gracefully, not wrongly."""

from repro.core.config import SpiderConfig
from repro.experiments.common import LabScenario
from repro.mac.ap import ApConfig
from repro.net.dhcp import DhcpServerConfig
from repro.phy.propagation import PropagationModel
from repro.world.geometry import Point

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def test_ap_dying_mid_connection_is_reaped_and_flow_stops():
    lab = LabScenario(seed=71)
    lab.add_lab_ap("a", 1, 2e6)
    spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
    spider.start()
    lab.sim.run(until=10.0)
    assert spider.connected_interfaces()
    flow = spider.interfaces["a"].flow

    lab.aps["a"].stop()
    lab.aps["a"].radio.go_deaf(1e9)  # power cut
    lab.sim.run(until=25.0)
    assert "a" not in spider.interfaces
    assert not flow.sender.running


def test_dhcp_server_silent_never_connects_but_does_not_crash():
    lab = LabScenario(seed=72)
    ap = lab.add_lab_ap("a", 1, 2e6)
    lab.routers["a"].dhcp_server.send = lambda c, m: None  # daemon wedged
    spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
    spider.start()
    lab.sim.run(until=30.0)
    assert not spider.connected_interfaces()
    assert spider.recorder.total_bytes == 0
    # The association itself still completed; only DHCP is stuck.
    assert "spider" in ap.associated


def test_dhcp_pool_exhaustion_blocks_new_clients():
    lab = LabScenario(seed=73)
    lab.add_lab_ap("a", 1, 2e6)
    lab.routers["a"].dhcp_server.config = DhcpServerConfig(
        beta_min=0.1, beta_max=0.2, pool_size=0
    )
    spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
    spider.start()
    lab.sim.run(until=20.0)
    assert not spider.connected_interfaces()


def test_tiny_psm_buffer_degrades_but_survives():
    lab = LabScenario(seed=74)
    lab.add_ap(
        "a", 1, Point(10.0, 0.0), 4e6, 0.2, 1.0,
        lab.wired_latency, ap_config=ApConfig(psm_buffer_frames=2),
    )
    spider = lab.make_spider(
        SpiderConfig(schedule={1: 0.5, 11: 0.5}, period=0.4, **REDUCED)
    )
    result = lab.run(spider, 30.0)
    assert lab.aps["a"].psm_drops > 0  # losses really happened
    assert result.throughput_kbytes_per_s > 0  # TCP recovered anyway


def test_extreme_loss_environment_no_crash():
    lab = LabScenario(
        seed=75,
        propagation=PropagationModel(range_m=50.0, base_loss=0.6, edge_start=0.9),
    )
    lab.add_lab_ap("a", 1, 2e6)
    spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
    result = lab.run(spider, 30.0)
    assert result.duration == 30.0  # ran to completion


def test_backhaul_congestion_drops_recovered_by_tcp():
    lab = LabScenario(seed=76)
    lab.add_lab_ap("a", 1, 1e6)
    lab.routers["a"].backhaul.shaper.queue_limit_bytes = 8_000  # ~5 segments
    spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
    result = lab.run(spider, 30.0)
    assert lab.routers["a"].backhaul.shaper.dropped > 0
    # TCP still makes sustained progress despite the shallow buffer
    # (125 KB/s is the shaped ceiling; the sawtooth lands well below).
    assert result.throughput_kbytes_per_s > 25.0


def test_driver_stop_is_idempotent():
    lab = LabScenario(seed=77)
    lab.add_lab_ap("a", 1, 2e6)
    spider = lab.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
    spider.start()
    lab.sim.run(until=5.0)
    spider.stop()
    spider.stop()
    assert spider.interfaces == {}


def test_no_aps_at_all():
    lab = LabScenario(seed=78)
    spider = lab.make_spider(SpiderConfig.multi_channel_multi_ap(period=0.6, **REDUCED))
    result = lab.run(spider, 20.0)
    assert result.throughput_kbytes_per_s == 0.0
    assert result.join_attempts == 0
