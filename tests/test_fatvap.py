"""Tests for the FatVAP-style AP-slicing baseline."""

from repro.core.config import SpiderConfig
from repro.core.fatvap import FatVapConfig
from repro.experiments.common import LabScenario

REDUCED = dict(link_timeout=0.1, dhcp_retry_timeout=0.2)


def lab_with(aps, seed=51, backhaul_bps=2e6):
    lab = LabScenario(seed=seed)
    for index, (name, channel) in enumerate(aps):
        lab.add_lab_ap(name, channel, backhaul_bps, index=index)
    return lab


def test_connects_to_multiple_aps():
    lab = lab_with([("a", 1), ("b", 1)])
    fatvap = lab.make_fatvap(FatVapConfig(channels=(1,), **REDUCED))
    fatvap.start()
    lab.sim.run(until=30.0)
    assert len(fatvap.connected_interfaces()) == 2


def test_moves_data():
    lab = lab_with([("a", 1), ("b", 1)])
    fatvap = lab.make_fatvap(FatVapConfig(channels=(1,), **REDUCED))
    result = lab.run(fatvap, 30.0)
    assert result.throughput_kbytes_per_s > 50.0


def test_slices_across_channels():
    lab = lab_with([("a", 1), ("b", 11)])
    fatvap = lab.make_fatvap(FatVapConfig(channels=(1, 11), **REDUCED))
    fatvap.start()
    visited = set()
    for i in range(1, 400):
        lab.sim.run(until=i * 0.02)
        visited.add(fatvap.radio.channel)
    assert visited == {1, 11}


def test_spider_beats_fatvap_on_shared_channel():
    """The architectural point: two same-channel APs cost FatVAP PSM
    round-trips and per-slot buffering while Spider talks to both
    continuously. With fat backhauls (8 Mbps each) the slots overflow
    the APs' power-save buffers, so the difference is visible; at low
    rates the buffers hide it and the two tie at the backhaul cap."""
    lab_f = lab_with([("a", 1), ("b", 1)], seed=52, backhaul_bps=8e6)
    fatvap = lab_f.make_fatvap(FatVapConfig(channels=(1,), period=0.2, **REDUCED))
    fat_result = lab_f.run(fatvap, 40.0)

    lab_s = lab_with([("a", 1), ("b", 1)], seed=52, backhaul_bps=8e6)
    spider = lab_s.make_spider(SpiderConfig.single_channel_multi_ap(1, **REDUCED))
    spider_result = lab_s.run(spider, 40.0)

    assert spider_result.throughput_kbytes_per_s > fat_result.throughput_kbytes_per_s
