"""Unit tests for 802.11 frame construction."""

import pytest

from repro.mac import frames
from repro.mac.frames import BROADCAST, FrameType
from repro.phy.channels import DEFAULT_DATA_RATE_BPS, MANAGEMENT_RATE_BPS


def test_mgmt_frame_uses_basic_rate():
    frame = frames.mgmt_frame(FrameType.AUTH_REQUEST, "a", "b")
    assert frame.rate_bps == MANAGEMENT_RATE_BPS


def test_mgmt_frame_sizes_fixed_per_type():
    probe = frames.mgmt_frame(FrameType.PROBE_REQUEST, "a", BROADCAST)
    beacon = frames.beacon("a")
    assert probe.size_bytes == 68
    assert beacon.size_bytes == 110


def test_mgmt_frame_rejects_data_type():
    with pytest.raises(ValueError):
        frames.mgmt_frame(FrameType.DATA, "a", "b")


def test_broadcast_frames_do_not_need_ack():
    assert frames.beacon("a").needs_ack is False
    unicast = frames.mgmt_frame(FrameType.AUTH_REQUEST, "a", "b")
    assert unicast.needs_ack is True


def test_broadcast_property():
    assert frames.beacon("a").broadcast
    assert not frames.mgmt_frame(FrameType.AUTH_REQUEST, "a", "b").broadcast


def test_null_data_carries_pm_bit():
    sleeping = frames.null_data("cli", "ap", pm=True)
    awake = frames.null_data("cli", "ap", pm=False)
    assert sleeping.pm and not awake.pm
    assert sleeping.type == FrameType.NULL_DATA


def test_ps_poll():
    frame = frames.ps_poll("cli", "ap")
    assert frame.type == FrameType.PS_POLL
    assert frame.size_bytes == 20


def test_data_frame_size_adds_header():
    frame = frames.data_frame("a", "b", "payload", 1400)
    assert frame.size_bytes == 1400 + frames.DATA_HEADER_BYTES
    assert frame.rate_bps == DEFAULT_DATA_RATE_BPS


def test_data_frame_rejects_negative_payload():
    with pytest.raises(ValueError):
        frames.data_frame("a", "b", None, -1)


def test_data_frames_bufferable_by_default():
    assert frames.data_frame("a", "b", None, 100).bufferable is True


def test_sequence_numbers_unique():
    a = frames.beacon("x")
    b = frames.beacon("x")
    assert a.seq != b.seq
