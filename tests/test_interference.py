"""Tests for adjacent-channel interference in the medium."""

from repro.mac import frames
from repro.phy.propagation import PropagationModel
from repro.phy.radio import Medium, Radio
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.world.geometry import Point
from repro.world.mobility import StaticMobility


def make_medium(adjacent_loss=0.25):
    sim = Simulator()
    medium = Medium(
        sim,
        PropagationModel(range_m=100.0, base_loss=0.0, edge_start=0.99),
        RandomStreams(9),
        adjacent_channel_loss=adjacent_loss,
    )
    return sim, medium


def radio(medium, x, channel, name):
    return Radio(medium, StaticMobility(Point(x, 0)), channel, name=name, address=name)


def test_no_interference_when_spectrum_quiet():
    sim, medium = make_medium()
    assert medium.interference_loss(1) == 0.0


def test_busy_overlapping_channel_raises_loss():
    sim, medium = make_medium()
    medium._channel_busy_until[3] = 1.0  # channel 3 active now
    assert medium.interference_loss(1) > 0.0


def test_orthogonal_channels_do_not_interfere():
    sim, medium = make_medium()
    medium._channel_busy_until[6] = 1.0
    assert medium.interference_loss(1) == 0.0
    medium._channel_busy_until[11] = 1.0
    assert medium.interference_loss(6) == 0.0


def test_interference_scales_with_overlap():
    sim, medium = make_medium()
    medium._channel_busy_until[2] = 1.0
    near = medium.interference_loss(1)
    sim2, medium2 = make_medium()
    medium2._channel_busy_until[4] = 1.0
    far = medium2.interference_loss(1)
    assert near > far > 0.0


def test_stale_busy_windows_ignored():
    sim, medium = make_medium()
    medium._channel_busy_until[3] = 1.0
    sim.run(until=2.0)  # the transmission ended long ago
    assert medium.interference_loss(1) == 0.0


def test_interference_capped():
    sim, medium = make_medium(adjacent_loss=0.5)
    for channel in (2, 3, 4, 5):
        medium._channel_busy_until[channel] = 10.0
    assert medium.interference_loss(1) <= 0.9


def test_disabled_by_zero_parameter():
    sim, medium = make_medium(adjacent_loss=0.0)
    medium._channel_busy_until[3] = 10.0
    assert medium.interference_loss(1) == 0.0


def test_end_to_end_losses_rise_near_busy_overlap():
    """Broadcast delivery rate drops while channel 3 is saturated."""

    def deliveries(with_interferer):
        sim, medium = make_medium(adjacent_loss=0.4)
        a = radio(medium, 0, 1, "a")
        b = radio(medium, 10, 1, "b")
        got = []
        b.on_receive = got.append
        if with_interferer:
            jam_tx = radio(medium, 5, 3, "jam")
            # Saturate channel 3 with back-to-back large frames.
            for _ in range(2000):
                jam_tx.transmit(frames.data_frame("jam", "nobody", None, 1400))
        for i in range(300):
            sim.schedule(i * 0.01, a.transmit, frames.beacon("a"))
        sim.run()
        return len(got)

    clean = deliveries(with_interferer=False)
    jammed = deliveries(with_interferer=True)
    assert jammed < clean * 0.9
