"""Unit tests for Spider's join-history AP selection state."""

import math

from repro.core.join_history import ApStats, JoinHistory


def test_unknown_ap_gets_optimistic_prior():
    history = JoinHistory()
    assert history.score("new-ap", now=0.0) > 0.0


def test_success_improves_score_over_prior():
    history = JoinHistory()
    prior = history.score("ap", now=0.0)
    history.record_success("ap", join_time=0.5)
    assert history.score("ap", now=0.0) > prior


def test_fast_joiner_beats_slow_joiner():
    history = JoinHistory()
    history.record_success("fast", join_time=0.5)
    history.record_success("slow", join_time=5.0)
    assert history.score("fast", now=0.0) > history.score("slow", now=0.0)


def test_reliable_beats_flaky():
    history = JoinHistory(failure_backoff=0.0)
    for _ in range(4):
        history.record_success("reliable", join_time=1.0)
    history.record_success("flaky", join_time=1.0)
    for _ in range(3):
        history.record_failure("flaky", now=0.0)
    assert history.score("reliable", now=10.0) > history.score("flaky", now=10.0)


def test_failure_blacklists_temporarily():
    history = JoinHistory(failure_backoff=10.0)
    history.record_failure("ap", now=100.0)
    assert history.blacklisted("ap", now=105.0)
    assert not history.blacklisted("ap", now=111.0)


def test_blacklisted_scores_neg_infinity():
    history = JoinHistory(failure_backoff=10.0)
    history.record_failure("ap", now=0.0)
    assert history.score("ap", now=5.0) == -math.inf


def test_ema_tracks_recent_join_times():
    stats = ApStats()
    stats.record_success(10.0)
    for _ in range(20):
        stats.record_success(1.0)
    assert stats.ema_join_time < 1.5


def test_success_rate_prior_is_one():
    assert ApStats().success_rate == 1.0


def test_success_rate_counts_failures():
    stats = ApStats()
    stats.record_success(1.0)
    stats.record_failure(now=0.0)
    assert stats.success_rate == 0.5


def test_known_aps_snapshot():
    history = JoinHistory()
    history.record_success("a", 1.0)
    history.record_failure("b", now=0.0)
    known = history.known_aps()
    assert set(known) == {"a", "b"}


def test_stats_created_lazily_and_cached():
    history = JoinHistory()
    first = history.stats("ap")
    assert history.stats("ap") is first
